#!/usr/bin/env python3
"""Quickstart: offload one application end to end.

Builds a simulated world (a phone on 4G, a serverless cloud), profiles the
photo-backup application, computes a partition and memory allocation, and
runs a small overnight workload — printing what the framework decided and
what it cost.

Run:  python examples/quickstart.py
"""

from repro import (
    DeadlineBatcher,
    Environment,
    Job,
    OffloadController,
    photo_backup_app,
)


def main() -> None:
    # 1. The simulated world: UE + 4G uplink + serverless platform.
    env = Environment.build(seed=42, connectivity="4g")

    # 2. The application: a DAG of components with pinned endpoints.
    app = photo_backup_app()
    print(f"Application {app.name!r}: {len(app)} components, "
          f"{len(app.flows)} data flows")
    print(f"  pinned to device: {app.pinned_names()}")

    # 3. The controller wires demand estimation, partitioning, allocation
    #    and delay-tolerant scheduling together.
    controller = OffloadController(
        env, app, scheduler=DeadlineBatcher(window_s=300.0)
    )

    # 4. Determine computational demands (contribution C1).
    controller.profile_offline()

    # 5. Partition the code and allocate serverless memory (C3 + C2).
    partition = controller.plan(input_mb=4.0)
    print(f"\nPartition: cloud = {sorted(partition.cloud)}")
    print("Memory allocation:")
    for name, decision in sorted(controller.allocation.items()):
        print(f"  {name:18s} {decision.memory_mb:7.0f} MB  "
              f"expect {decision.expected_duration_s:6.2f} s  "
              f"${decision.expected_cost_usd:.2e}/invocation")

    # 6. An overnight batch: ten 4 MB photos, one every 2 minutes, each
    #    with an hour of slack — the non-time-critical regime.
    jobs = [
        Job(app, input_mb=4.0, released_at=120.0 * i, deadline=120.0 * i + 3600.0)
        for i in range(10)
    ]
    report = controller.run_workload(jobs)

    print(f"\nCompleted {report.jobs_completed} jobs, "
          f"deadline misses: {report.deadline_miss_rate:.0%}")
    print(f"  mean response     {report.mean_response_s:8.1f} s "
          f"(batched — nobody is waiting)")
    print(f"  UE energy         {report.total_ue_energy_j:8.1f} J")
    print(f"  cloud bill        ${report.total_cloud_cost_usd:.4f}")
    print(f"  cold-start ratio  {env.platform.cold_start_fraction():.0%}")


if __name__ == "__main__":
    main()
