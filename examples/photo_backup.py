#!/usr/bin/env python3
"""Scenario: overnight photo backup — policy comparison.

A phone accumulates photos during the day and backs them up overnight.
Nobody waits for the result, so every job carries hours of slack.  The
script compares four placement/scheduling policies on the same workload
and seed:

* local-only            — everything on the phone;
* full-offload, eager   — ship everything to the cloud immediately;
* optimised, eager      — min-cut partition, immediate dispatch;
* optimised, batched    — min-cut partition + deadline batching (the
                          paper's non-time-critical configuration).

Run:  python examples/photo_backup.py
"""

from repro import (
    DeadlineBatcher,
    EagerScheduler,
    Environment,
    Job,
    ObjectiveWeights,
    OffloadController,
    photo_backup_app,
)
from repro.baselines import full_offload_controller, local_only_controller
from repro.metrics import Table
from repro.sim.rng import RngStream
from repro.traces import DiurnalArrivals

SEED = 7
N_PHOTOS = 30
SLACK_S = 4 * 3600.0  # four hours to finish each backup


def make_jobs(app, rng_seed: int):
    """Photos arrive on a diurnal curve (people shoot in the evening)."""
    arrivals = DiurnalArrivals(
        base_rate=N_PHOTOS / 36_000.0,  # spread over ~10 simulated hours
        amplitude=0.7,
        rng=RngStream(rng_seed),
        period=86_400.0,
    )
    jobs = []
    rng = RngStream(rng_seed + 1)
    for released_at in arrivals.times(horizon=36_000.0):
        size_mb = rng.lognormal_bounded(4.0, 0.5, low=0.5, high=20.0)
        jobs.append(
            Job(app, input_mb=size_mb, released_at=released_at,
                deadline=released_at + SLACK_S)
        )
        if len(jobs) >= N_PHOTOS:
            break
    return jobs


def run_policy(name, make_controller):
    env = Environment.build(seed=SEED, connectivity="4g")
    controller = make_controller(env)
    if controller.partition is None:
        controller.profile_offline()
        controller.plan(input_mb=4.0)
    report = controller.run_workload(make_jobs(controller.app, SEED))
    return {
        "policy": name,
        "jobs": report.jobs_completed,
        "miss %": 100 * report.deadline_miss_rate,
        "mean resp s": report.mean_response_s,
        "UE energy J": report.total_ue_energy_j,
        "cloud $": report.total_cloud_cost_usd,
        "cold %": 100 * env.platform.cold_start_fraction(),
    }


def main() -> None:
    weights = ObjectiveWeights.non_time_critical()
    rows = [
        run_policy(
            "local-only",
            lambda env: local_only_controller(env, photo_backup_app()),
        ),
        run_policy(
            "full-offload/eager",
            lambda env: full_offload_controller(env, photo_backup_app()),
        ),
        run_policy(
            "optimised/eager",
            lambda env: OffloadController(
                env, photo_backup_app(), scheduler=EagerScheduler(),
                weights=weights,
            ),
        ),
        run_policy(
            "optimised/batched",
            lambda env: OffloadController(
                env, photo_backup_app(),
                scheduler=DeadlineBatcher(window_s=1800.0),
                weights=weights,
            ),
        ),
    ]

    table = Table(
        ["policy", "jobs", "miss %", "mean resp s", "UE energy J",
         "cloud $", "cold %"],
        title=f"Overnight photo backup — {N_PHOTOS} photos, "
              f"{SLACK_S / 3600:.0f} h slack, 4G uplink",
        precision=2,
    )
    for row in rows:
        table.add_row(**row)
    print(table)

    local = rows[0]
    batched = rows[-1]
    saving = 100 * (1 - batched["UE energy J"] / local["UE energy J"])
    print(f"\nThe batched offloader spends {saving:.0f}% less phone energy "
          f"than local-only while missing no deadlines.")


if __name__ == "__main__":
    main()
