#!/usr/bin/env python3
"""Scenario: a day on one battery charge.

A phone at 2% battery still owes its owner the daily OCR batch.  Three
configurations process the same backlog:

* **naive** — run everything locally at full speed, immediately;
* **offload** — the optimiser's partition, dispatched eagerly;
* **frugal** — the full non-time-critical treatment: battery-aware
  deferral until the evening charge, DVFS for the local residue, batched
  dispatch.

The punchline is the battery level at the end of the day — the frugal
configuration finishes the same work with most of the charge intact
(and the naive one may not finish at all).

Run:  python examples/low_battery_day.py
"""

from repro import (
    DeadlineBatcher,
    Environment,
    Job,
    OffloadController,
)
from repro.apps import document_ocr_app
from repro.baselines import local_only_controller
from repro.core.scheduler import BatteryAwareScheduler
from repro.device.ue import DeviceSpec
from repro.metrics import Table

N_DOCS = 8
INPUT_MB = 6.0
SLACK_S = 10 * 3600.0  # due by end of day
BATTERY_J = 800.0  # ~2% of a phone battery
CHARGE_AT_S = 4 * 3600.0  # plugged in during the late afternoon


def make_jobs(app):
    return [
        Job(app, input_mb=INPUT_MB, released_at=600.0 * i,
            deadline=600.0 * i + SLACK_S)
        for i in range(N_DOCS)
    ]


def run(name, build_controller, recharge=False):
    env = Environment.build(
        seed=23, connectivity="4g",
        device=DeviceSpec(battery_capacity_j=BATTERY_J),
    )
    controller = build_controller(env)
    if controller.partition is None:
        controller.profile_offline()
        controller.plan(input_mb=INPUT_MB)
    if recharge:
        def charger(sim):
            yield sim.timeout(CHARGE_AT_S)
            env.ue.recharge()

        env.sim.spawn(charger(env.sim))
    report = controller.run_workload(make_jobs(controller.app))
    return {
        "config": name,
        "docs done": report.jobs_completed,
        "failed": len(report.failures),
        "miss %": 100 * report.deadline_miss_rate,
        "battery left %": 100 * env.ue.battery_fraction,
        "cloud $": report.total_cloud_cost_usd,
    }


def main() -> None:
    rows = [
        run("naive local", lambda env: local_only_controller(
            env, document_ocr_app())),
        run("offload eager", lambda env: OffloadController(
            env, document_ocr_app())),
        run(
            "frugal (battery-aware+dvfs+batch)",
            lambda env: OffloadController(
                env,
                document_ocr_app(),
                scheduler=BatteryAwareScheduler(
                    battery_fraction_fn=lambda: env.ue.battery_fraction,
                    inner=DeadlineBatcher(window_s=1800.0),
                    threshold=0.25,
                ),
                dvfs=True,
            ),
            recharge=True,
        ),
    ]
    table = Table(
        ["config", "docs done", "failed", "miss %", "battery left %",
         "cloud $"],
        title=f"A day on {BATTERY_J / 40_000:.0%} battery — "
              f"{N_DOCS} documents of {INPUT_MB:.0f} MB, due in "
              f"{SLACK_S / 3600:.0f} h",
        precision=2,
    )
    for row in rows:
        table.add_row(**row)
    print(table)

    naive = rows[0]
    frugal = rows[-1]
    if naive["failed"]:
        print(f"\nThe naive configuration died mid-backlog "
              f"({naive['failed']} documents lost to a flat battery).")
    print(
        f"\nThe frugal configuration held dispatches until the "
        f"{CHARGE_AT_S / 3600:.0f}-hour charge, then processed the whole "
        f"backlog — finishing with {frugal['battery left %']:.0f}% battery "
        f"and every deadline met."
    )


if __name__ == "__main__":
    main()
