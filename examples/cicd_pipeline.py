#!/usr/bin/env python3
"""Scenario: offloading inside a CI/CD pipeline.

Three commits flow through the deployment pipeline:

1. the initial revision — profiled, partitioned, sized, canaried, promoted;
2. a performance regression (the ``train`` stage becomes 8x heavier) —
   the canary detects the cost/latency jump and the revision is abandoned;
3. an honest optimisation — promoted, becoming the new baseline.

This is contribution C4: offloading decisions are recomputed *per
revision* by the pipeline, not hand-maintained.

Run:  python examples/cicd_pipeline.py
"""

from dataclasses import replace

from repro import Environment
from repro.apps import ml_training_app
from repro.cicd import SourceRepository
from repro.core.pipeline import OffloadPipeline, PipelineConfig


def show(run) -> None:
    flag = "PROMOTED" if run.promoted else "ABANDONED"
    print(f"\nrevision {run.revision}  ->  {flag}")
    for stage in run.stages:
        print(f"  {stage.name:14s} {stage.duration_s:9.1f} s  {stage.detail[:58]}")
    if run.partition is not None:
        print(f"  plan: cloud={sorted(run.partition.cloud)}")
        sizes = {n: f"{d.memory_mb:.0f}MB" for n, d in sorted(run.allocation.items())}
        print(f"        memory={sizes}")


def main() -> None:
    env = Environment.build(seed=5, connectivity="broadband")
    app = ml_training_app()
    repo = SourceRepository("ml-trainer", app, message="initial release")
    pipeline = OffloadPipeline(
        env,
        repo,
        config=PipelineConfig(canary_jobs=3, regression_threshold=0.30),
    )

    print("=== commit 1: initial release ===")
    show(pipeline.run_to_completion())

    print("\n=== commit 2: accidental 8x slowdown in `train` ===")
    train = app.component("train")
    regressed = app.with_component(
        replace(train, work_gcycles=train.work_gcycles * 8,
                work_gcycles_per_mb=train.work_gcycles_per_mb * 8)
    )
    repo.commit(regressed, "rewrite training loop (oops)")
    show(pipeline.run_to_completion())
    print(f"  production stays at revision {pipeline.production_revision}")

    print("\n=== commit 3: honest 20% optimisation of `featurize` ===")
    featurize = app.component("featurize")
    optimised = app.with_component(
        replace(featurize, work_gcycles=featurize.work_gcycles * 0.8,
                work_gcycles_per_mb=featurize.work_gcycles_per_mb * 0.8)
    )
    repo.commit(optimised, "vectorise featurizer")
    show(pipeline.run_to_completion())
    print(f"  production now at revision {pipeline.production_revision}")


if __name__ == "__main__":
    main()
