#!/usr/bin/env python3
"""Scenario: a fleet of phones on mixed connectivity.

Sixty devices — a third each on 3G, 4G and WiFi — run the nightly
analytics job over a two-hour window, all offloading onto one shared set
of serverless functions.  The script shows the fleet effects:

* per-device plans differ with connectivity (3G devices keep more local);
* shared warm pools: later devices almost never pay cold starts;
* one shared demand model keeps learning from every device's runs;
* transient platform failures are absorbed by retries, invisibly.

Run:  python examples/fleet_nightly.py
"""

from collections import Counter

from repro import Job
from repro.apps import nightly_analytics_app
from repro.fleet import FleetController, FleetEnvironment
from repro.metrics import Table
from repro.serverless.platform import PlatformConfig

N_DEVICES = 60
WINDOW_S = 2 * 3600.0
INPUT_MB = 5.0
SLACK_S = 3600.0


def main() -> None:
    env = FleetEnvironment.build(
        n_devices=N_DEVICES,
        seed=17,
        connectivity=["3g", "4g", "wifi"],
        platform_config=PlatformConfig(
            keep_alive_s=300.0, failure_probability=0.03
        ),
    )
    fleet = FleetController(env, nightly_analytics_app())
    fleet.profile_offline()
    fleet.plan(input_mb=INPUT_MB)

    # How plans differ by connectivity.
    plan_sizes = Counter()
    for index, controller in enumerate(fleet.controllers):
        connectivity = ["3g", "4g", "wifi"][index % 3]
        plan_sizes[(connectivity, len(controller.partition.cloud))] += 1
    print("Cloud components per device, by connectivity:")
    for (connectivity, n_cloud), count in sorted(plan_sizes.items()):
        print(f"  {connectivity:5s} -> {n_cloud} components offloaded "
              f"({count} devices)")

    jobs = {
        index: [
            Job(
                fleet.app,
                input_mb=INPUT_MB,
                released_at=WINDOW_S * index / N_DEVICES,
                deadline=WINDOW_S * index / N_DEVICES + SLACK_S,
            )
        ]
        for index in range(N_DEVICES)
    }
    report = fleet.run(jobs)

    table = Table(
        ["metric", "value"],
        title=f"\nFleet run — {N_DEVICES} devices, one job each",
        precision=3,
    )
    table.add_row("jobs completed", report.jobs_completed)
    table.add_row("deadline miss %", 100 * report.deadline_miss_rate)
    table.add_row("mean response s", report.mean_response_s)
    table.add_row("fleet energy J", report.total_ue_energy_j)
    table.add_row("cloud bill $", report.total_cloud_cost_usd)
    table.add_row("cold-start %", 100 * env.platform.cold_start_fraction())
    table.add_row(
        "transient failures absorbed",
        env.metrics.snapshot().get("faas.failures", 0.0),
    )
    print(table)

    observations = fleet.demand.estimators["aggregate"].observation_count
    print(f"\nThe shared demand model has absorbed {observations} "
          f"observations of `aggregate` across the whole fleet.")


if __name__ == "__main__":
    main()
