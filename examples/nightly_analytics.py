#!/usr/bin/env python3
"""Scenario: nightly analytics with cost-window scheduling.

The analytics job runs once per device per day and must be ready by
morning — twelve hours of slack.  The uplink is congested at peak hours,
so *when* the job ships matters: the cost-window scheduler scans the
slack interval for the moment the (simulated) congestion price is lowest
and defers dispatch to it.

Run:  python examples/nightly_analytics.py
"""

import math

from repro import (
    CostWindowScheduler,
    EagerScheduler,
    Environment,
    Job,
    ObjectiveWeights,
    OffloadController,
    nightly_analytics_app,
)
from repro.metrics import Table

SEED = 21
DAY_S = 86_400.0
N_DEVICES = 12
SLACK_S = 12 * 3600.0


def congestion_price(t: float) -> float:
    """A diurnal congestion signal: expensive at 20:00, cheapest at 04:00.

    Time zero is 18:00 (evening), when devices finish collecting the
    day's logs and release their jobs.
    """
    hours = (18.0 + t / 3600.0) % 24.0
    return 1.0 + 0.8 * math.cos((hours - 20.0) / 24.0 * 2 * math.pi)


def make_jobs(app):
    jobs = []
    for device in range(N_DEVICES):
        released = device * 300.0  # devices finish collection minutes apart
        jobs.append(
            Job(app, input_mb=8.0, released_at=released,
                deadline=released + SLACK_S)
        )
    return jobs


def run(scheduler_name, scheduler_factory):
    env = Environment.build(seed=SEED, connectivity="4g")
    controller = OffloadController(
        env,
        nightly_analytics_app(),
        scheduler=scheduler_factory(),
        weights=ObjectiveWeights.non_time_critical(),
    )
    controller.profile_offline()
    controller.plan(input_mb=8.0)
    report = controller.run_workload(make_jobs(controller.app))
    dispatch_hours = [
        (18.0 + r.started_at / 3600.0) % 24.0 for r in report.results
    ]
    return {
        "scheduler": scheduler_name,
        "jobs": report.jobs_completed,
        "miss %": 100 * report.deadline_miss_rate,
        "median dispatch h": sorted(dispatch_hours)[len(dispatch_hours) // 2],
        "mean price paid": sum(
            congestion_price(r.started_at) for r in report.results
        ) / max(len(report.results), 1),
        "cloud $": report.total_cloud_cost_usd,
    }


def main() -> None:
    rows = [
        run("eager (dispatch at 18:xx)", EagerScheduler),
        run(
            "cost-window (seek cheap hour)",
            lambda: CostWindowScheduler(congestion_price, resolution_s=900.0),
        ),
    ]
    table = Table(
        ["scheduler", "jobs", "miss %", "median dispatch h",
         "mean price paid", "cloud $"],
        title=f"Nightly analytics — {N_DEVICES} devices, "
              f"{SLACK_S / 3600:.0f} h slack",
        precision=2,
    )
    for row in rows:
        table.add_row(**row)
    print(table)

    eager, windowed = rows
    saving = 100 * (1 - windowed["mean price paid"] / eager["mean price paid"])
    print(
        f"\nThe cost-window scheduler shifts dispatches from "
        f"{eager['median dispatch h']:.0f}:00 to around "
        f"{windowed['median dispatch h']:.0f}:00 and pays "
        f"{saving:.0f}% less congestion price, with zero missed deadlines —"
        f"\nslack is a resource, and non-time-critical jobs have plenty."
    )


if __name__ == "__main__":
    main()
