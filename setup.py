"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this file enables the legacy ``setup.py develop`` path via
``pip install -e . --no-build-isolation``.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
