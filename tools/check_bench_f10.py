"""Gate the F10 sharded-fleet bench: byte identity always, scaling
where the host can show it.

CI runs ``benchmarks/bench_f10_sharding.py`` (short mode on the shared
runners) and calls this with the freshly written ``BENCH_F10.json``.
Two rules:

* ``byte_identical`` must be true — the merged fleet report diverging
  across shard counts is a correctness bug on any machine, so it fails
  the build unconditionally.
* ``speedup_4w >= --threshold`` (default 3.0) is enforced only when the
  JSON records a full-mode run on a host with at least 4 cores.  On
  fewer cores (or in short mode, where the workload is too small to
  amortise pool startup) the scaling number is physically meaningless
  and is reported for context only.

Usage::

    python tools/check_bench_f10.py /tmp/bench-json/BENCH_F10.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="BENCH_F10.json from the run under test")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="min 4-worker speedup on >=4-core full-mode "
                             "runs (default 3.0)")
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    cores = int(fresh.get("cores", 1))
    mode = fresh.get("mode", "short")
    speedup = float(fresh.get("speedup_4w", 0.0))

    for workers, ues_per_s in sorted(
        fresh.get("ues_per_wall_s", {}).items(), key=lambda kv: int(kv[0])
    ):
        print(f"  {workers:>2} workers: {ues_per_s:10.0f} UEs/wall-s")
    print(f"  4-worker speedup {speedup:.2f}x "
          f"({mode} mode, {cores} cores, {fresh.get('ues', '?')} UEs)")

    if not fresh.get("byte_identical", False):
        print(
            "FAIL: merged fleet report is NOT byte-identical across shard "
            "counts — sharding changed the simulation's results",
            file=sys.stderr,
        )
        return 1

    if cores >= 4 and mode == "full":
        if speedup < args.threshold:
            print(
                f"FAIL: 4-worker speedup {speedup:.2f}x is below the "
                f"{args.threshold:.1f}x floor on a {cores}-core full-mode "
                "run — shard fan-out has stopped scaling",
                file=sys.stderr,
            )
            return 1
        print(f"OK: byte-identical merge, speedup {speedup:.2f}x >= "
              f"{args.threshold:.1f}x")
        return 0

    print(
        f"OK: byte-identical merge; scaling gate skipped "
        f"({cores} cores, {mode} mode — needs >=4 cores and full mode)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
