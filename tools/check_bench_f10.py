"""Gate the F10 sharded-fleet bench: byte identity always, scaling
where the host can show it.

Thin wrapper over the unified checker (``tools/check_bench.py`` /
:mod:`repro.perf.check`), preserving the historical interface and
rules:

* ``byte_identical`` must be true — the merged fleet report diverging
  across shard counts is a correctness bug on any machine, so it fails
  the build unconditionally;
* ``speedup_4w >= --threshold`` (default 3.0) is enforced only when the
  JSON records a full-mode run on a host with at least 4 cores; on
  fewer cores (or in short mode) the scaling number is physically
  meaningless and the check self-disarms.

Usage::

    python tools/check_bench_f10.py /tmp/bench-json/BENCH_F10.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="BENCH_F10.json from the run under test")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="min 4-worker speedup on >=4-core full-mode "
                             "runs (default 3.0)")
    args = parser.parse_args(argv)

    from repro.perf.check import main as check_main

    return check_main([
        str(args.fresh),
        "--bench", "F10",
        "--threshold", str(args.threshold),
        "--no-trend",
    ])


if __name__ == "__main__":
    sys.exit(main())
