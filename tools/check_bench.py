"""The benchmark regression gate: one checker for the whole suite.

CI runs ``repro bench run --short --out bench.json`` and calls this with
the resulting ``repro.bench/1`` document (a legacy single-bench
``BENCH_<name>.json`` summary also works).  Every registered benchmark's
metrics are judged by their registered direction-aware specs — ratio
floors against the committed ``benchmarks/BENCH_<name>.json`` baselines,
absolute floors/ceilings, byte-identity flags, exact digest matches —
and the trend sentinel forecasts the benchmark history ledger to flag
slow drifts before any single run trips a hard gate.

This file is a path-bootstrap shim; the evaluator lives in
:mod:`repro.perf.check`.  ``check_bench_o2.py`` and
``check_bench_f10.py`` are thin wrappers over the same evaluator,
preserving their historical interfaces.

Usage::

    python tools/check_bench.py /tmp/bench.json
    python tools/check_bench.py /tmp/bench.json --bench O2 --threshold 0.3
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.check import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
