#!/usr/bin/env python
"""Build the optional compiled kernel core (repro.sim._ckernel).

Compiles ``src/repro/sim/_ckernel.c`` into an extension module next to
its source using the active interpreter's sysconfig paths and a plain C
compiler — no pip, wheel, or build isolation required.  The pure-Python
kernel remains fully functional without it; ``REPRO_SIM_CORE=compiled``
activates the result (see ``repro/sim/_core.py``).

Usage::

    python tools/build_core.py           # build (no-op if up to date)
    python tools/build_core.py --force   # rebuild unconditionally
    python tools/build_core.py --check   # exit 0 iff the built core imports
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "sim" / "_ckernel.c"


def output_path() -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return SOURCE.parent / f"_ckernel{suffix}"


def build(force: bool = False) -> int:
    target = output_path()
    if (
        not force
        and target.exists()
        and target.stat().st_mtime >= SOURCE.stat().st_mtime
    ):
        print(f"up to date: {target}")
        return 0
    compiler = sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_path("include")
    command = [
        *compiler.split(),
        "-shared",
        "-fPIC",
        "-O2",
        "-fno-strict-aliasing",
        f"-I{include}",
        str(SOURCE),
        "-o",
        str(target),
    ]
    print(" ".join(command))
    result = subprocess.run(command)
    if result.returncode != 0:
        return result.returncode
    return check()


def check() -> int:
    probe = subprocess.run(
        [sys.executable, "-c", "from repro.sim import _ckernel; "
         "print('compiled core ok:', _ckernel.__file__)"],
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    return probe.returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--force", action="store_true",
                        help="rebuild even if the output is newer")
    parser.add_argument("--check", action="store_true",
                        help="only verify the built core imports")
    args = parser.parse_args()
    if args.check:
        return check()
    return build(force=args.force)


if __name__ == "__main__":
    raise SystemExit(main())
