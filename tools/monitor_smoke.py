#!/usr/bin/env python
"""Monitoring-plane smoke check (CI gate).

Runs the pinned golden scenario twice under the monitoring plane:

* **fault-free** — the alert log must be empty (a quiet system must
  not page);
* **chaos** — the golden fault schedule plus an uplink outage; the
  link-outage and cold-start-spike SLOs must both fire.

Also asserts the alert log is byte-identical across repeated chaos
runs (the determinism contract), then writes the chaos run's full
alert report as JSON for artifact upload.  Exits non-zero on any
violated expectation.

Usage::

    PYTHONPATH=src python tools/monitor_smoke.py [report.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.testing.golden import run_monitored_scenario  # noqa: E402

#: SLOs the chaos run must fire to prove the detectors work.
EXPECTED_CHAOS_SLOS = ("cold-start-spike", "link-outage")


def main(argv: list) -> int:
    out_path = Path(argv[0]) if argv else Path("/tmp/alert_report.json")
    failures = []

    quiet = run_monitored_scenario(with_faults=False)
    if quiet["alert_log"] != "":
        failures.append(
            f"fault-free run fired alerts:\n{quiet['alert_log']}"
        )
    print(
        f"fault-free: jobs={quiet['jobs_completed']} "
        f"alerts={len(quiet['fired_slos'])} (want 0)"
    )

    chaos = run_monitored_scenario(with_faults=True)
    for slo in EXPECTED_CHAOS_SLOS:
        if slo not in chaos["fired_slos"]:
            failures.append(
                f"chaos run did not fire {slo!r}; "
                f"fired={chaos['fired_slos']}"
            )
    print(
        f"chaos: jobs={chaos['jobs_completed']} "
        f"fired={sorted(chaos['fired_slos'])}"
    )

    rerun = run_monitored_scenario(with_faults=True)
    if rerun["alert_log"] != chaos["alert_log"]:
        failures.append("chaos alert log is not byte-identical across runs")

    report = chaos["plane"].engine.report(chaos["sim_end_s"])
    out_path.write_text(
        json.dumps(report, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    print(f"alert report written to {out_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("monitor smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
