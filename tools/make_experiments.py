#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every benchmark.

Usage:  python tools/make_experiments.py [output-path] [--workers N]

Each experiment's table (and ASCII figure, where one exists) is captured
from the same `run_*` functions the pytest-benchmark harness uses, so
the document always matches `pytest benchmarks/ --benchmark-only`
exactly.  The verdict prose lives here; when a model change shifts the
numbers, update the prose alongside it.

The sections are independent simulations, so they fan out across worker
processes through :mod:`repro.sweep` (all cores by default); the merge is
ordered by section, never by completion, so the document is identical for
any worker count.
"""

from __future__ import annotations

import argparse
import io
import contextlib
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))
sys.path.insert(0, str(REPO / "tools"))

HEADER = """# EXPERIMENTS — paper vs. measured

**Source-text caveat.** The available text of the paper (a
doctoral-symposium abstract; see DESIGN.md) contains **no numbered tables
or figures**, so there are no published absolute numbers to match.  The
experiment suite below was *defined by this reproduction* (DESIGN.md,
"Experiment index") to operationalise each claim in the abstract;
"claim" lines therefore cite the abstract's qualitative statements and
the standard results of the surrounding literature the abstract builds
on (MAUI-style partitioning, Lambda-style memory/pricing behaviour,
serverless-vs-edge economics).  Every number below regenerates
deterministically via `pytest benchmarks/ --benchmark-only`, any single
`python benchmarks/bench_<id>_*.py`, or `python tools/make_experiments.py`.

Shape verdicts: ✅ = the qualitative claim reproduces.

---
"""

FOOTER = """---

## Reproducing

```bash
python setup.py develop          # offline env: pip lacks the wheel pkg
pytest tests/                    # 720+ unit/integration/property tests
pytest benchmarks/ --benchmark-only   # all 26 experiments + shape asserts
python benchmarks/bench_f1_bandwidth.py   # any single experiment
python tools/make_experiments.py          # regenerate this document
```

All experiments are deterministic (fixed seeds, derandomised property
tests, integer-exact min-cut); every table except the F6, O1 and O2
wall-clock columns regenerates bit-identically.
"""


def build_sections():
    """(id, title, claim, runner, verdict) for every experiment."""
    from bench_t1_allocation import run_t1
    from bench_t2_partitioning import run_t2
    from bench_t3_energy import run_t3
    from bench_t4_cicd import run_t4_gate, run_t4_overhead
    from bench_t5_fidelity import run_t5
    from bench_f1_bandwidth import figure_f1, run_f1
    from bench_f2_coldstart import run_f2
    from bench_f3_deadline import run_f3
    from bench_f4_batching import run_f4
    from bench_f5_edge_vs_cloud import run_f5a, run_f5b
    from bench_f6_scalability import run_components_axis, run_jobs_axis
    from bench_f7_fleet import figure_f7, run_f7
    from bench_f8_ntc_stack import run_f8
    from bench_f10_sharding import run_f10
    from bench_f11_fleet_obs import run_f11
    from bench_f9_pareto import run_f9
    from bench_a1_partitioner_ablation import run_a1
    from bench_a2_demand_ablation import run_a2
    from bench_a3_allocation_ablation import run_a3
    from bench_a4_coldstart_mitigation import run_a4
    from bench_a5_retry_ablation import run_a5
    from bench_a6_orchestration import run_a6
    from bench_a7_dvfs import figure_a7, run_a7
    from bench_a8_makespan import run_a8
    from bench_a9_safety_factor import run_a9
    from bench_a10_observed_signals import run_a10
    from bench_r1_chaos import run_r1
    from bench_o1_overhead import run_o1
    from bench_o2_kernel import run_o2
    from bench_o3_dispatch import run_o3

    def single(fn):
        return lambda: print(fn())

    def with_figure(run, figure):
        def runner():
            table = run()
            print(table)
            print()
            print(figure(table))

        return runner

    def pair(first, second):
        return lambda: (print(first()), print(), print(second()))

    return [
        (
            "T1", "Serverless memory-size allocation (C2)",
            "Picking the memory size is a real optimisation: cost is flat "
            "while CPU-bound duration shrinks up to one full vCPU, then "
            "cost rises; an SLO forces larger sizes.",
            single(run_t1),
            "**Verdict ✅** — the allocator lands on the 1769 MB (1 vCPU) "
            "knee for serial code (5.8–14x faster than fixed-128 MB at "
            "equal cost within 2%), extends the band only for parallel "
            "functions (2048–3072 MB), and never pays for 10 GB unforced — "
            "fixed-max costs 3–6x more.  SLO-bound rows pick the cheapest "
            "feasible tier.",
        ),
        (
            "T2", "Partitioning quality (C3)",
            "Whole-graph optimisation of the UE/cloud cut beats trivial "
            "and per-component policies; the min-cut formulation is exact.",
            single(run_t2),
            "**Verdict ✅** — min-cut = exhaustive optimum on every app; "
            "greedy matches; local-only pays 1.8–2.1x the optimal "
            "objective, random 1.3–1.8x, myopic up to 1.2x.",
        ),
        (
            "T3", "UE energy savings",
            "Offloading saves device energy once the uplink is good "
            "enough; a weak uplink erodes the saving.",
            single(run_t3),
            "**Verdict ✅** — savings grow monotonically with "
            "connectivity: 35% on 3G, 86% on 4G, 95–96% on WiFi/5G, never "
            "negative.  (Radio energy counts only the access hop's active "
            "time — the UE's own transmitter.)",
        ),
        (
            "T4", "CI/CD pipeline integration (C4)",
            "Offloading can be integrated into a modern deployment "
            "process; profiling/partitioning/allocation run per revision "
            "and a canary gates promotion.",
            pair(run_t4_overhead, run_t4_gate),
            "**Verdict ✅** — the offload stages add 1.9–4.3x pipeline "
            "duration (dominated by CI profiling of the heavy ML app), "
            "bounded and mostly parallelisable; the canary gate stops a "
            "6x demand regression (response +442%) from reaching "
            "production and passes an honest improvement.",
        ),
        (
            "T5", "Planning fidelity",
            "The planning model every decision rests on must predict what "
            "the execution engine then does.",
            single(run_t5),
            "**Verdict ✅** — on warm-start noise-free runs the planner "
            "predicts cloud cost exactly, UE energy within 1.6%, and "
            "makespan within 4.2% (the residual is per-request protocol "
            "overhead and WAN store-and-forward, both deliberately "
            "conservative in execution).",
        ),
        (
            "F1", "Offload benefit vs bandwidth (crossover)",
            "Local wins on slow uplinks, offloading wins on fast ones; an "
            "adaptive controller tracks the winner.",
            with_figure(run_f1, figure_f1),
            "**Verdict ✅** — crossover between 2 and 5 Mbit/s: "
            "full-offload is ~21x worse than local at 0.1 Mbit/s and "
            "~2.2x better at 100 Mbit/s; the controller matches the "
            "winner at both extremes and beats both in the middle by "
            "offloading partially (1–2 components).  The analytic "
            "calculator (`repro.analysis.crossover_bandwidth`) puts the "
            "break-even at ~1.7 Mbit/s under balanced weights, consistent "
            "with the measured curve.",
        ),
        (
            "F2", "Cold-start impact",
            "The cold-start fraction collapses once the inter-arrival "
            "time falls below the keep-alive; tail latency rides the "
            "cold-start cliff for sparse traffic.",
            single(run_f2),
            "**Verdict ✅** — cold % falls 93→2 (keep-alive 120 s) and "
            "62→1 (900 s) across the rate sweep; p50 shows the 0.6 s cold "
            "penalty only at sparse rates while p99 keeps it everywhere "
            "(Poisson clustering).",
        ),
        (
            "F3", "Deadline misses vs slack (C5)",
            "Non-time-critical jobs can be deferred without endangering "
            "deadlines.",
            single(run_f3),
            "**Verdict ✅** — all schedulers miss 100% on impossible "
            "deadlines (slack 0.5x service time) and 0% from 1x up; the "
            "batcher's deferral (response up to 10x higher) never causes "
            "a single miss — slack absorbs it by construction of the "
            "latest-safe-start clamp.",
        ),
        (
            "F4", "Batching window vs cost",
            "Aligning dispatches amortises cold starts; the window trades "
            "response time, not deadline safety.",
            single(run_f4),
            "**Verdict ✅** — cold starts fall 94% → 25% as the window "
            "grows to 3 h; response time rises proportionally; zero "
            "misses throughout.  (Per-job dollar cost moves little "
            "because compute dominates this bill; the cold-start "
            "*latency* overhead is the quantity batching removes.)",
        ),
        (
            "F5", "Cloud serverless vs edge (the paper's core argument)",
            "Edge computing buys response time at an infrastructure cost; "
            'use cases that "do not benefit from lower response time … '
            'can remain in the cloud".',
            pair(run_f5a, run_f5b),
            "**Verdict ✅** — the edge is faster (worst-case response "
            "31 s vs 41 s: that 10 s is exactly what tight deadlines "
            "would buy) at near-equal per-job UE energy, but a "
            "provisioned edge node costs 444x more per job at 0.5 jobs/h "
            "and is still ~1.8x more expensive at 128 jobs/h (22% "
            "utilisation).  With slack, the latency advantage is "
            "worthless and serverless wins the economics outright.  The "
            "analytic breakeven (`repro.analysis.edge_breakeven_rate`) "
            "sits above 128 jobs/h for this app, matching the sweep.",
        ),
        (
            "F6", "Scalability",
            "The simulation and the planners must scale to fleet-sized "
            "studies.",
            pair(run_jobs_axis, run_components_axis),
            "**Verdict ✅** — the event kernel is linear in jobs "
            "(~1 ms/job, flat); min-cut plans a 96-component graph in "
            "<10 ms where exhaustive enumeration is already infeasible at "
            "24; greedy stays optimal on pipelines but costs O(n²) "
            "evaluations.  (Wall-clock columns vary run to run; "
            "everything else is deterministic.)",
        ),
        (
            "F7", "Fleet density economics",
            "At fleet scale, one user's invocation keeps the functions "
            "warm for the next — density substitutes for provisioning.",
            with_figure(run_f7, figure_f7),
            "**Verdict ✅** — the cold-start fraction collapses "
            "100% → 1% as the fleet grows from 2 to 96 devices on a "
            "fixed window, with per-job cost flat (±2%) and the aggregate "
            "bill exactly linear — pay-per-use with a communal warm pool.",
        ),
        (
            "F10", "Sharded fleet scaling",
            "Fleet studies beyond one core: partition the zone topology "
            "across worker processes without changing a single byte of "
            "the result.",
            single(run_f10),
            "**Verdict ✅** — the merged fleet report is byte-identical "
            "at 1, 2, and 4 shards (the exactness condition: no link "
            "crosses a shard boundary), and shard fan-out scales "
            "UEs-simulated-per-wall-second with worker processes on "
            "multi-core hosts.  (The speedup column is only meaningful "
            "on ≥4 cores; single-core CI shows pool overhead instead.)",
        ),
        (
            "F11", "Fleet observability under chaos",
            "Monitoring a sharded fleet must not reintroduce layout "
            "sensitivity: merged SLO rollups and the alert log are the "
            "same bytes no matter how the fleet was partitioned.",
            single(run_f11),
            "**Verdict ✅** — the merged health document is byte-identical "
            "at 1, 2, and 4 shards with the R1-style uplink-outage "
            "schedule active; the outage pages the uplink-stall SLO "
            "(FIRING then CLEARED on the merged stream) while the "
            "fault-free fleet stays all-ok with an empty alert log, and "
            "the monitor shard's overhead stays a small constant factor "
            "of the unmonitored run.",
        ),
        (
            "F8", "The non-time-critical stack (capstone)",
            '"Non-time-critical" unlocks a *stack* of levers, each '
            "spending slack to buy a different resource.",
            single(run_f8),
            "**Verdict ✅** — batching halves cold starts (100% → 47%), "
            "DVFS trims the local residue, and the cost-window scheduler "
            "halves the congestion price paid (1.90 → 0.94) by shifting "
            "dispatches ~6 h — all at zero deadline misses.  UE energy "
            "barely moves down the ladder because the dominant energy "
            "decision, offloading itself, is already made at step 2 on "
            "this uplink: the paper's thesis in one table.",
        ),
        (
            "F9", "The partition trade space (Pareto frontier)",
            "The weighted objective collapses three axes; the frontier "
            "shows what got collapsed.",
            single(run_f9),
            "**Verdict ✅** — of 32 feasible partitions, 12 survive on "
            "the makespan/cost frontier (20 on the full 3-axis one); "
            "local-only anchors the zero-cost corner, and both weight "
            "presets pick the same 3-axis-efficient full offload — equal "
            "makespan to the 2-axis leader with 21% less UE energy for "
            "+7% cloud cost.  Near the crossover bandwidth the trade "
            "space is genuinely multi-dimensional; the weights are how a "
            "deployment states its policy.",
        ),
        (
            "A1", "Ablation: partitioning algorithms",
            None,
            single(run_a1),
            "**Verdict ✅** — min-cut exact on 144/144 instances, tree-DP "
            "exact on every tree (72/72); greedy's worst gap 0%; the "
            "myopic per-component rule loses up to 68% — whole-graph "
            "optimisation is what C3 buys.",
        ),
        (
            "A2", "Ablation: demand estimators",
            None,
            single(run_a2),
            "**Verdict ✅** — regression wins where demand scales with "
            "input size (5% vs 35–81%), EWMA wins under drift (3.5% vs "
            "39% for the mean), the mean-family wins on stationary noise; "
            "no single size-blind estimator is safe, justifying the "
            "per-component regression default.",
        ),
        (
            "A3", "Ablation: allocation search",
            None,
            single(run_a3),
            "**Verdict ✅** — the convexity-aware walk returns the exact "
            "scan result on every workload with ~25% fewer probes; coarse "
            "probe-and-refine saves ~35% with zero regret on these shapes "
            "(its regret is bounded, not zero, in general).",
        ),
        (
            "A4", "Ablation: cold-start mitigation",
            None,
            single(run_a4),
            "**Verdict ✅** — every mitigation beats the 75%-cold "
            "baseline: a longer keep-alive gets 6.7% for free, "
            "client-side batching gets 12% at the cost of ~28 min median "
            "deferral, and one pre-warmed sandbox gets 1.3% — but its "
            "provisioned bill ($0.46) exceeds the entire invocation bill "
            "($0.004) by 100x at this sparsity.  For non-time-critical "
            "traffic, batching is the right tool.",
        ),
        (
            "A5", "Ablation: retry budget vs transient failures",
            None,
            single(run_a5),
            "**Verdict ✅** — a single attempt loses jobs at the failure "
            "rate (9% / 29%); two attempts recover most; four attempts "
            "push success to ≥99.5%.  Wasted (billed-but-failed) spend "
            "tracks the failure rate, not the budget — retries only run "
            "when needed.",
        ),
        (
            "A6", "Ablation: UE-coordinated vs workflow-orchestrated execution",
            None,
            single(run_a6),
            "**Verdict ✅** — handing the cloud phase to a server-side "
            "workflow lets the UE deep-sleep instead of idling: 9–36% "
            "less device energy per job, growing with the cloud phase's "
            "length (ml_training at 32 MB saves 13 J/job), for a per-job "
            "orchestration fee that stays under 5% of the compute bill.",
        ),
        (
            "A7", "Ablation: DVFS under slack",
            None,
            with_figure(run_a7, figure_a7),
            "**Verdict ✅** — the controller walks the frequency ladder "
            "down (1.0 → 0.8 → 0.4) exactly as fast as deadlines allow; "
            "at generous slack the local compute energy falls 84% (the "
            "f² bound for f = 0.4 is 16%), with zero misses throughout.  "
            "DVFS leans on demand accuracy: the bench profiles first, and "
            "without profiling the first job's misprediction can cause a "
            "miss — quantified in the test suite.",
        ),
        (
            "A8", "Ablation: serialized proxy vs direct makespan",
            None,
            single(run_a8),
            "**Verdict ✅** — the separable proxy the exact partitioners "
            "optimise deviates from the true makespan optimum on 8–12 of "
            "25 fan-out instances, but never by more than 0.35%; "
            "annealing seeded from the min-cut solution recovers the "
            "exact optimum on every instance.  The proxy is a sound "
            "default; the annealer is there for makespan-critical wide "
            "graphs.",
        ),
        (
            "A9", "Ablation: the deadline safety factor",
            None,
            single(run_a9),
            "**Verdict ✅** — the factor is the miss-vs-deferral dial: "
            "at 1.0 the batcher gambles the noise margin and loses 30% of "
            "deadlines; 1.25 already cuts that to 5%, and ≥2.0 is fully "
            "safe under ±35% demand noise at the price of dispatching "
            "~40% earlier (less slack harvested).  The 1.5 default "
            "balances the two.",
        ),
        (
            "A10", "Ablation: oracle profiling vs observed-signal demand",
            "The controller should not need the simulator's oracle: "
            "demand learned from measured execution durations (inverted "
            "through the billing-tier duration model) and link rates from "
            "monitored goodput must converge to the oracle's plan "
            "quality in-flight.",
            single(run_a10),
            "**Verdict ✅** — the observed-signal mode plans blind "
            "(451% demand error from the unprofiled prior, "
            "`profile_offline` a no-op by contract) and converges to "
            "1.3% after ten jobs of monitored history — the oracle's "
            "neighbourhood (0.7%) without ever reading a true "
            "coefficient — while completing the identical workload at "
            "identical cloud spend and energy.  The monitored, adaptive "
            "run replays bit-identically.",
        ),
        (
            "R1", "Resilience: chaos campaigns vs graceful degradation",
            "A delay-tolerant offloading controller should survive "
            "infrastructure faults by spending slack — waiting out "
            "outages, hedging stragglers, falling back to local compute — "
            "rather than losing jobs.",
            single(run_r1),
            "**Verdict ✅** — under seeded chaos campaigns (link/zone "
            "outages, spot reclamations, stragglers, brownouts) the naive "
            "controller loses 17–33% of jobs and fault-blind retries "
            "still lose 17–25%; the degradation-aware controller misses "
            "zero deadlines at every intensity by waiting out dead zones "
            "(outage-aware backoff), hedging stragglers, and falling back "
            "to local compute (3–5 jobs per campaign), paying ~40–80% "
            "more cloud spend and ~40% higher mean response — slack "
            "converted into survival.  The whole campaign replays "
            "bit-identically from its seed, faults included.",
        ),
        (
            "O1", "Observability: telemetry overhead",
            "Tracing must be free when disabled: an uninstrumented run "
            "pays one hoisted bool per instrumented operation and "
            "nothing per kernel event, so the telemetry layer can stay "
            "compiled-in everywhere.",
            single(run_o1),
            "**Verdict ✅** — with the null tracer installed the "
            "instrumented kernel loop times within noise of the plain "
            "loop (the CI assertion allows ≤ 2% on min-of-5 interleaved "
            "rounds; measured runs land within ±2%).  Recording is "
            "deliberately not free — one span per event costs a few "
            "hundred ns each — which is why the tracer is opt-in per "
            "run (`--trace`).  Wall-clock columns here are the suite's "
            "only non-deterministic numbers besides F6's and O2's.",
        ),
        (
            "O2", "Optimisation: kernel throughput (fast-lane dispatch)",
            "Fleet-sized studies are gated on raw kernel throughput, so "
            "the dispatch hot path must be fast *without* perturbing a "
            "single trace: an immediate-event fast lane, pooled heap "
            "entries, slotted dispatch records and no-contention resource "
            "fast paths, all preserving the (time, sequence) dispatch "
            "order byte-for-byte.",
            single(run_o2),
            "**Verdict ✅** — vs the pre-PR heap-only kernel on the same "
            "op mix: pure-event dispatch 1.15M → ~2.1M events/s (1.8x, "
            "target ≥1.5x), spawn/join 1.6x, contended resource cycles "
            "1.26x, link transfers 1.5x, and the F6 80-job end-to-end "
            "wall 71.8 ms → ~47 ms (1.5x, target ≥1.15x) — at an "
            "*unchanged* event count (9207) and byte-identical golden "
            "traces.  Equivalence is enforced three ways: the golden "
            "fixtures, a Hypothesis differential suite against a "
            "reconstructed heap-only reference kernel "
            "(`tests/test_kernel_fastlane.py`), and a tracemalloc "
            "per-job allocation budget (`tests/test_alloc_budget.py`).  "
            "CI gates every commit against the committed "
            "`benchmarks/BENCH_O2.json` via `tools/check_bench_o2.py`.  "
            "Wall-clock columns are non-deterministic; the speedup "
            "column is meaningful on comparable hardware only.",
        ),
        (
            "O3", "Optimisation: batched dispatch and the compiled core",
            "Once same-time heap entries drain, nothing can re-enter the "
            "heap at the current timestamp, so `run()` can drain the "
            "whole fast lane as one batch — one heap-front comparison "
            "and one clock read per batch instead of per event — and the "
            "same loop compiles to a C core (`tools/build_core.py`, "
            "`REPRO_SIM_CORE=compiled`), all byte-identical to the "
            "per-event pure loop.",
            single(run_o3),
            "**Verdict ✅** — on a lane drain with a pending heap entry "
            "(the steady state of real workloads), the batched pure loop "
            "clears ~6.5M events/s vs ~4.7–5.1M for a verbatim "
            "reconstruction of the per-event loop — a 1.25–1.4x batching "
            "win (gated ≥1.2x), with the relight chain at ~2M events/s.  "
            "The compiled core drains the same burst at ~25M events/s "
            "(gated ≥5M) and runs the chain ~1.4x faster than pure.  "
            "Equivalence is enforced the same three ways as O2 plus a "
            "compiled leg: golden traces and `repro run` documents are "
            "byte-identical under `REPRO_SIM_CORE=pure|compiled`, the "
            "Hypothesis differential suite fuzzes the compiled loop "
            "in-process (`tests/test_kernel_fastlane.py`), and the "
            "traced event loop's transient allocation peak is pinned "
            "O(1) by the trace ring (`tests/test_alloc_budget.py`).  "
            "CI gates against the committed `benchmarks/BENCH_O3.json` "
            "via `tools/check_bench.py`.",
        ),
    ]


def run_experiment(config):
    """Sweep cell: run one experiment section, return its captured body."""
    exp_id = config["experiment"]
    for section_id, _title, _claim, runner, _verdict in build_sections():
        if section_id == exp_id:
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                runner()
            return {"experiment": exp_id, "body": buffer.getvalue().strip()}
    raise ValueError(f"unknown experiment {exp_id!r}")


def main(output: str = "EXPERIMENTS.md", workers: int = 0) -> None:
    from repro.sweep import SweepRunner, SweepSpec

    sections = build_sections()
    configs = [{"experiment": exp_id} for exp_id, *_ in sections]
    spec = SweepSpec(scenario="make_experiments:run_experiment", points=configs)
    result = SweepRunner(spec, workers=workers or os.cpu_count() or 1).run()
    bodies = {
        cell["experiment"]: cell["body"]
        for cell in result.results_for(configs)
    }
    parts = [HEADER]
    for exp_id, title, claim, _runner, verdict in sections:
        parts.append(f"\n## {exp_id} — {title}\n")
        if claim:
            parts.append(f"**Claim:** {claim}\n")
        parts.append("**Measured:**\n")
        parts.append(f"```\n{bodies[exp_id]}\n```\n")
        parts.append(verdict + "\n")
        print(f"done {exp_id}", file=sys.stderr)
    parts.append("\n" + FOOTER)
    Path(output).write_text("\n".join(parts))
    print(f"wrote {output}", file=sys.stderr)


if __name__ == "__main__":
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    cli.add_argument("--workers", type=int, default=0,
                     help="worker processes (default: all cores)")
    cli_args = cli.parse_args()
    main(cli_args.output, workers=cli_args.workers)
