#!/usr/bin/env python
"""Regenerate the golden-trace fixtures under tests/golden/.

Run this ONLY when a change is *supposed* to alter simulated behaviour
(new fault mode, different draw order, a fixed bug).  Commit the fixture
diff alongside the change so review sees exactly which numbers moved:

    PYTHONPATH=src python tools/regen_golden.py [--check]

``--check`` regenerates in memory and exits non-zero if the committed
fixtures are stale, without writing anything (useful in CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.testing.golden import (  # noqa: E402 - path bootstrap above
    GOLDEN_SEED,
    TRACE_SCHEMA,
    run_golden_scenario,
    trace_digest,
)

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
VARIANTS = {
    "pipeline_baseline.json": {"with_faults": False},
    "pipeline_faults.json": {"with_faults": True},
    "pipeline_traced.json": {"with_faults": True, "traced": True},
}


def render(with_faults: bool, traced: bool = False) -> dict:
    lines = run_golden_scenario(with_faults, traced=traced)
    doc = {
        "schema": TRACE_SCHEMA,
        "seed": GOLDEN_SEED,
        "with_faults": with_faults,
        "digest": trace_digest(lines),
        "lines": lines,
    }
    if traced:
        # Keyed only when set, so the pre-telemetry fixtures regenerate
        # byte-identically.
        doc["traced"] = True
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify fixtures are current instead of rewriting them",
    )
    args = parser.parse_args()

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    stale = []
    for filename, kwargs in VARIANTS.items():
        path = GOLDEN_DIR / filename
        fresh = render(**kwargs)
        if args.check:
            current = json.loads(path.read_text()) if path.exists() else None
            if current != fresh:
                stale.append(filename)
                continue
            print(f"ok       {filename}  digest={fresh['digest'][:16]}…")
        else:
            path.write_text(json.dumps(fresh, indent=1) + "\n")
            print(f"written  {filename}  digest={fresh['digest'][:16]}…")
    if stale:
        print(f"STALE fixtures: {', '.join(stale)} — rerun without --check")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
