#!/usr/bin/env python
"""Closed-loop remediation smoke check (CI gate).

Runs a coupled 4-zone fleet under uplink-outage chaos with and without
the remediation engine and asserts the closed-loop contract end to end:

* the remediated run must **act** — at least one action in the merged
  action log — and the firing ``uplink-stall`` alert must still clear;
* acting must pay off — the remediated platform bill must be strictly
  below the alert-only run's (traffic shifted away from the stalled
  uplink stops burning spend into it);
* determinism must survive the loop — the remediated merged document,
  health document, and action log must be byte-identical between 1 and
  2 shards (2 workers).

The remediated action log is written out for artifact upload.  Exits
non-zero on any violated expectation.

Usage::

    PYTHONPATH=src python tools/remediate_smoke.py [actions.log]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.sharded import ShardedFleetSpec, run_sharded  # noqa: E402
from repro.fleet.topology import FleetTopology  # noqa: E402


def build_spec(remediate: bool) -> ShardedFleetSpec:
    topology = FleetTopology.uniform(
        n_zones=4,
        ues_per_zone=2,
        connectivity="4g",
        jobs_per_ue=1,
        couple="pairs",
        seed=0,
    )
    return ShardedFleetSpec(
        topology=topology,
        window_s=600.0,
        slack_s=1200.0,
        monitor=True,
        chaos="uplink-outage",
        remediate=remediate,
    )


def main(argv: list) -> int:
    out_path = Path(argv[0]) if argv else Path("/tmp/fleet_actions.log")
    failures = []

    watched = run_sharded(build_spec(remediate=False), n_shards=1)
    acted = run_sharded(build_spec(remediate=True), n_shards=1)
    acted_sharded = run_sharded(
        build_spec(remediate=True), n_shards=2, workers=2
    )

    log = acted.action_log
    if not log:
        failures.append("remediated chaos run applied no action")
    alert_log = acted.alert_log
    if "FIRING slo=uplink-stall" not in alert_log:
        failures.append(
            f"uplink-stall did not fire under remediation; log:\n{alert_log}"
        )
    if "CLEARED slo=uplink-stall" not in alert_log:
        failures.append(
            f"uplink-stall did not clear under remediation; log:\n{alert_log}"
        )

    watched_usd = watched.aggregates["platform_usd"]
    acted_usd = acted.aggregates["platform_usd"]
    if not acted_usd < watched_usd:
        failures.append(
            f"remediation did not cut spend: alert-only ${watched_usd!r} "
            f"vs remediated ${acted_usd!r}"
        )

    if acted.merged_json() != acted_sharded.merged_json():
        failures.append(
            "remediated merged document differs between 1 and 2 shards"
        )
    if acted.health_json() != acted_sharded.health_json():
        failures.append(
            "remediated health document differs between 1 and 2 shards"
        )
    if acted.action_log != acted_sharded.action_log:
        failures.append(
            "remediated action log differs between 1 and 2 shards"
        )

    print(
        f"chaos: alerts={acted.health['fleet']['alerts_fired']} "
        f"actions={len(acted.health['actions'])} "
        f"spend alert-only=${watched_usd:.2e} remediated=${acted_usd:.2e} "
        f"shards 1==2: {acted.health_json() == acted_sharded.health_json()}"
    )

    out_path.write_text(log, encoding="utf-8")
    print(f"remediation action log written to {out_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("remediation smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
