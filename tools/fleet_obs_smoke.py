#!/usr/bin/env python
"""Fleet observability smoke check (CI gate).

Runs a coupled 4-zone fleet three ways and asserts the observability
contract end to end:

* **fault-free, 2 shards** — the merged health document must report
  every zone ``ok`` with an empty alert log (a quiet fleet must not
  page);
* **uplink-outage chaos, 1 shard vs 2 shards** — the merged health
  document and alert log must be byte-identical across shard counts,
  and the ``uplink-stall`` SLO must both fire and clear.

The chaos run's health report is written as JSON for artifact upload.
Exits non-zero on any violated expectation.

Usage::

    PYTHONPATH=src python tools/fleet_obs_smoke.py [health.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet.sharded import ShardedFleetSpec, run_sharded  # noqa: E402
from repro.fleet.topology import FleetTopology  # noqa: E402


def build_spec(chaos: str) -> ShardedFleetSpec:
    topology = FleetTopology.uniform(
        n_zones=4,
        ues_per_zone=2,
        connectivity="4g",
        jobs_per_ue=1,
        couple="pairs",
        seed=0,
    )
    return ShardedFleetSpec(
        topology=topology,
        window_s=600.0,
        slack_s=1200.0,
        monitor=True,
        chaos=chaos,
    )


def main(argv: list) -> int:
    out_path = Path(argv[0]) if argv else Path("/tmp/fleet_health.json")
    failures = []

    quiet = run_sharded(build_spec("none"), n_shards=2)
    health = quiet.health
    assert health is not None
    if quiet.alert_log != "" or health["fleet"]["status"] != "ok":
        failures.append(
            f"fault-free fleet is not quiet: status="
            f"{health['fleet']['status']} log:\n{quiet.alert_log}"
        )
    print(
        f"fault-free: jobs={health['counters']['jobs_completed']} "
        f"alerts={health['fleet']['alerts_fired']} (want 0)"
    )

    one = run_sharded(build_spec("uplink-outage"), n_shards=1)
    two = run_sharded(build_spec("uplink-outage"), n_shards=2, workers=2)
    if one.health_json() != two.health_json():
        failures.append(
            "chaos health document differs between 1 and 2 shards"
        )
    if one.alert_log != two.alert_log:
        failures.append("chaos alert log differs between 1 and 2 shards")
    log = one.alert_log
    if "FIRING slo=uplink-stall" not in log:
        failures.append(f"uplink-stall SLO did not fire; log:\n{log}")
    if "CLEARED slo=uplink-stall" not in log:
        failures.append(f"uplink-stall SLO did not clear; log:\n{log}")
    print(
        f"chaos: alerts={one.health['fleet']['alerts_fired']} "
        f"log_lines={len(one.health['log'])} shards 1==2: "
        f"{one.health_json() == two.health_json()}"
    )

    out_path.write_text(one.health_json(), encoding="utf-8")
    print(f"fleet health report written to {out_path}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("fleet observability smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
