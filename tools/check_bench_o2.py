"""Gate kernel throughput against the committed O2 baseline.

CI runs ``benchmarks/bench_o2_kernel.py`` in short mode, then calls this
with the freshly written ``BENCH_O2.json``.  The fresh run's pure-event
throughput must stay within ``--threshold`` (default 20%) of the number
committed in ``benchmarks/BENCH_O2.json`` — a drop past that on the same
op mix means a kernel hot-path regression, not runner noise.

Only the pure-event lane is gated: it is the most allocation-sensitive
microbench and the least dependent on scheduler jitter.  The other lanes
are reported for context but do not fail the build (CI runners vary too
much for hard gates on the contended benches).

Usage::

    python tools/check_bench_o2.py /tmp/bench-json/BENCH_O2.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED = REPO_ROOT / "benchmarks" / "BENCH_O2.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="BENCH_O2.json from the run under test")
    parser.add_argument("--committed", type=Path, default=COMMITTED,
                        help="baseline BENCH_O2.json (default: committed)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max fractional events/sec drop (default 0.20)")
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    committed = json.loads(args.committed.read_text())

    baseline = committed["events_per_s_pure"]
    measured = fresh["events_per_s_pure"]
    ratio = measured / baseline
    floor = 1.0 - args.threshold

    for name, ops_per_s in sorted(fresh["ops_per_s"].items()):
        reference = committed["ops_per_s"].get(name)
        rel = f"{ops_per_s / reference:6.2f}x vs committed" if reference else ""
        print(f"  {name:>16}: {ops_per_s:12.0f} ops/s  {rel}")

    if ratio < floor:
        print(
            f"FAIL: pure-event throughput {measured:.0f}/s is "
            f"{100 * (1 - ratio):.1f}% below the committed "
            f"{baseline:.0f}/s (allowed drop {100 * args.threshold:.0f}%)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: pure-event throughput at {100 * ratio:.1f}% of committed "
        f"baseline (floor {100 * floor:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
