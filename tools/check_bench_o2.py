"""Gate kernel throughput against the committed O2 baseline.

Thin wrapper over the unified checker (``tools/check_bench.py`` /
:mod:`repro.perf.check`), preserving the historical interface: the
fresh run's pure-event throughput must stay within ``--threshold``
(default 20%) of the number committed in ``benchmarks/BENCH_O2.json``.
Only the pure-event lane is gated — it is the most allocation-sensitive
microbench and the least dependent on scheduler jitter; the other lanes
are reported for context by the fresh table itself.

Usage::

    python tools/check_bench_o2.py /tmp/bench-json/BENCH_O2.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

COMMITTED = REPO_ROOT / "benchmarks" / "BENCH_O2.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path,
                        help="BENCH_O2.json from the run under test")
    parser.add_argument("--committed", type=Path, default=COMMITTED,
                        help="baseline BENCH_O2.json (default: committed)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max fractional events/sec drop (default 0.20)")
    args = parser.parse_args(argv)

    from repro.perf.check import main as check_main

    return check_main([
        str(args.fresh),
        "--bench", "O2",
        "--committed", str(args.committed),
        "--threshold", str(args.threshold),
        "--no-trend",
    ])


if __name__ == "__main__":
    sys.exit(main())
