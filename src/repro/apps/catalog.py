"""Three concrete non-time-critical applications.

These are the motivating workloads of the paper's framing: jobs whose
users do not sit waiting on the result, so minutes of slack are available
and the cloud's higher round-trip time is irrelevant.

* **photo backup** — a phone uploads photos overnight; thumbnails,
  feature extraction and dedup hashing can run anywhere.
* **nightly analytics** — a mobile app aggregates the day's usage log
  into reports.
* **ML training** — periodic on-device-data model fine-tuning, the
  classic compute-heavy delay-tolerant job.

Numbers are calibrated so that on a 1.2 GHz UE core the heavy stages take
tens of seconds to minutes — the regime where offloading pays.
"""

from __future__ import annotations

from repro.apps.graph import AppGraph, Component, DataFlow

MB = 1e6  # bytes


def photo_backup_app() -> AppGraph:
    """Overnight photo-backup pipeline.

    ``capture`` and ``notify`` touch device storage/UI and are pinned
    local; everything between is offloadable.  Data shrinks down the
    pipeline (raw photo → derived artefacts), so cutting late is cheap.
    """
    components = [
        Component("capture", work_gcycles=0.1, offloadable=False, package_mb=0),
        Component(
            "transcode",
            work_gcycles=2.0,
            work_gcycles_per_mb=3.0,
            parallel_fraction=0.8,
            package_mb=60,
        ),
        Component(
            "thumbnail",
            work_gcycles=0.5,
            work_gcycles_per_mb=0.6,
            parallel_fraction=0.5,
            package_mb=25,
        ),
        Component(
            "feature_extract",
            work_gcycles=4.0,
            work_gcycles_per_mb=5.0,
            parallel_fraction=0.9,
            package_mb=120,
        ),
        Component(
            "dedup_hash",
            work_gcycles=0.3,
            work_gcycles_per_mb=0.4,
            package_mb=10,
        ),
        Component(
            "index_update",
            work_gcycles=0.4,
            work_gcycles_per_mb=0.05,
            package_mb=15,
        ),
        Component("notify", work_gcycles=0.05, offloadable=False, package_mb=0),
    ]
    flows = [
        DataFlow("capture", "transcode", bytes_per_mb=1.0),  # the raw photo
        DataFlow("transcode", "thumbnail", bytes_per_mb=0.5),
        DataFlow("transcode", "feature_extract", bytes_per_mb=0.5),
        DataFlow("thumbnail", "index_update", bytes_per_mb=0.02),
        DataFlow("feature_extract", "dedup_hash", bytes_per_mb=0.01),
        DataFlow("dedup_hash", "index_update", bytes_fixed=4096),
        DataFlow("index_update", "notify", bytes_fixed=1024),
    ]
    return AppGraph("photo_backup", components, flows)


def nightly_analytics_app() -> AppGraph:
    """End-of-day usage-log aggregation.

    A linear extract→clean→aggregate→report pipeline; ``collect`` reads
    local logs and stays, the heavy aggregation is the offload candidate.
    """
    components = [
        Component("collect", work_gcycles=0.2, offloadable=False, package_mb=0),
        Component(
            "parse",
            work_gcycles=0.5,
            work_gcycles_per_mb=1.2,
            package_mb=20,
        ),
        Component(
            "clean",
            work_gcycles=0.8,
            work_gcycles_per_mb=1.5,
            package_mb=25,
        ),
        Component(
            "aggregate",
            work_gcycles=6.0,
            work_gcycles_per_mb=8.0,
            parallel_fraction=0.85,
            package_mb=80,
        ),
        Component(
            "report",
            work_gcycles=0.6,
            work_gcycles_per_mb=0.1,
            package_mb=30,
        ),
        Component("store", work_gcycles=0.1, offloadable=False, package_mb=0),
    ]
    flows = [
        DataFlow("collect", "parse", bytes_per_mb=1.0),
        DataFlow("parse", "clean", bytes_per_mb=0.8),
        DataFlow("clean", "aggregate", bytes_per_mb=0.7),
        DataFlow("aggregate", "report", bytes_per_mb=0.05),
        DataFlow("report", "store", bytes_fixed=200_000),
    ]
    return AppGraph("nightly_analytics", components, flows)


def ml_training_app() -> AppGraph:
    """Periodic model fine-tuning on device-collected data.

    The ``train`` stage dominates everything (hundreds of gigacycles);
    with any reasonable uplink the optimal cut ships the featureised
    dataset to the cloud and pulls back only the model delta.
    """
    components = [
        Component("sample_data", work_gcycles=0.3, offloadable=False, package_mb=0),
        Component(
            "featurize",
            work_gcycles=3.0,
            work_gcycles_per_mb=4.0,
            parallel_fraction=0.7,
            package_mb=90,
        ),
        Component(
            "train",
            work_gcycles=120.0,
            work_gcycles_per_mb=40.0,
            parallel_fraction=0.95,
            package_mb=250,
        ),
        Component(
            "evaluate",
            work_gcycles=8.0,
            work_gcycles_per_mb=2.0,
            parallel_fraction=0.9,
            package_mb=250,
        ),
        Component(
            "compress_model",
            work_gcycles=2.0,
            package_mb=40,
        ),
        Component("apply_update", work_gcycles=0.5, offloadable=False, package_mb=0),
    ]
    flows = [
        DataFlow("sample_data", "featurize", bytes_per_mb=1.0),
        DataFlow("featurize", "train", bytes_per_mb=0.4),
        DataFlow("train", "evaluate", bytes_fixed=8 * MB),
        DataFlow("evaluate", "compress_model", bytes_fixed=8 * MB),
        DataFlow("compress_model", "apply_update", bytes_fixed=2 * MB),
    ]
    return AppGraph("ml_training", components, flows)


def document_ocr_app() -> AppGraph:
    """Batch OCR of scanned documents (expense receipts, paper mail).

    Scans pile up during the day and are digitised overnight.  Layout
    analysis and recognition are compute-heavy and highly parallel
    (per-page); the searchable-PDF assembly is light.  Output text is
    tiny relative to input images — the ideal one-way-up data shape.
    """
    components = [
        Component("scan_intake", work_gcycles=0.2, offloadable=False, package_mb=0),
        Component(
            "preprocess",  # deskew, binarise
            work_gcycles=1.0,
            work_gcycles_per_mb=2.0,
            parallel_fraction=0.9,
            package_mb=35,
        ),
        Component(
            "layout_analysis",
            work_gcycles=3.0,
            work_gcycles_per_mb=4.0,
            parallel_fraction=0.85,
            package_mb=110,
            min_memory_mb=512,
        ),
        Component(
            "recognize",
            work_gcycles=10.0,
            work_gcycles_per_mb=15.0,
            parallel_fraction=0.95,
            package_mb=180,
            min_memory_mb=1024,
        ),
        Component(
            "assemble_pdf",
            work_gcycles=0.8,
            work_gcycles_per_mb=0.3,
            package_mb=25,
        ),
        Component("file_result", work_gcycles=0.1, offloadable=False, package_mb=0),
    ]
    flows = [
        DataFlow("scan_intake", "preprocess", bytes_per_mb=1.0),
        DataFlow("preprocess", "layout_analysis", bytes_per_mb=0.8),
        DataFlow("layout_analysis", "recognize", bytes_per_mb=0.8),
        DataFlow("recognize", "assemble_pdf", bytes_per_mb=0.05),
        DataFlow("assemble_pdf", "file_result", bytes_per_mb=0.06),
    ]
    return AppGraph("document_ocr", components, flows)


def video_highlights_app() -> AppGraph:
    """Overnight sports-video highlight extraction.

    A camera records hours of footage; by morning the user wants a clip
    reel.  Scene detection and action scoring fan out from the decoded
    stream; the final render joins them.  Video is heavy both in cycles
    and bytes, making the partition genuinely bandwidth-sensitive.
    """
    components = [
        Component("ingest", work_gcycles=0.5, offloadable=False, package_mb=0),
        Component(
            "decode",
            work_gcycles=4.0,
            work_gcycles_per_mb=2.5,
            parallel_fraction=0.7,
            package_mb=55,
        ),
        Component(
            "scene_detect",
            work_gcycles=6.0,
            work_gcycles_per_mb=3.0,
            parallel_fraction=0.9,
            package_mb=70,
        ),
        Component(
            "action_score",
            work_gcycles=20.0,
            work_gcycles_per_mb=10.0,
            parallel_fraction=0.95,
            package_mb=220,
            min_memory_mb=2048,
        ),
        Component(
            "render_reel",
            work_gcycles=8.0,
            work_gcycles_per_mb=1.5,
            parallel_fraction=0.8,
            package_mb=60,
        ),
        Component("publish", work_gcycles=0.2, offloadable=False, package_mb=0),
    ]
    flows = [
        DataFlow("ingest", "decode", bytes_per_mb=1.0),
        DataFlow("decode", "scene_detect", bytes_per_mb=0.6),
        DataFlow("decode", "action_score", bytes_per_mb=0.6),
        DataFlow("scene_detect", "render_reel", bytes_per_mb=0.02),
        DataFlow("action_score", "render_reel", bytes_per_mb=0.02),
        DataFlow("render_reel", "publish", bytes_per_mb=0.15),
    ]
    return AppGraph("video_highlights", components, flows)


CATALOG = {
    "photo_backup": photo_backup_app,
    "nightly_analytics": nightly_analytics_app,
    "ml_training": ml_training_app,
    "document_ocr": document_ocr_app,
    "video_highlights": video_highlights_app,
}


__all__ = [
    "CATALOG",
    "document_ocr_app",
    "ml_training_app",
    "nightly_analytics_app",
    "photo_backup_app",
    "video_highlights_app",
]
