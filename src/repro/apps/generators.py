"""Synthetic application generators for the partitioning ablations.

Each generator produces an :class:`~repro.apps.graph.AppGraph` with
randomised (but reproducible) demands and data sizes.  Entry and exit
components are always pinned to the UE, matching the structure of real
offloadable apps where I/O endpoints touch the device.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.graph import AppGraph, Component, DataFlow
from repro.sim.rng import RngStream


def _random_component(
    name: str,
    rng: RngStream,
    offloadable: bool = True,
    work_scale: float = 1.0,
) -> Component:
    return Component(
        name=name,
        work_gcycles=rng.lognormal_bounded(2.0 * work_scale, 0.8, low=0.05, high=200),
        work_gcycles_per_mb=rng.lognormal_bounded(1.0, 0.8, low=0.0, high=50),
        offloadable=offloadable,
        parallel_fraction=rng.uniform(0.0, 0.95),
        package_mb=rng.lognormal_bounded(40, 0.6, low=1, high=400),
    )


def _random_flow(src: str, dst: str, rng: RngStream, data_scale: float = 1.0) -> DataFlow:
    return DataFlow(
        src=src,
        dst=dst,
        bytes_fixed=rng.lognormal_bounded(100_000 * data_scale, 1.0, low=0, high=5e8),
        bytes_per_mb=rng.lognormal_bounded(0.2 * data_scale, 0.8, low=0.0, high=2.0),
    )


def linear_pipeline_app(
    n_stages: int,
    rng: RngStream,
    name: Optional[str] = None,
    work_scale: float = 1.0,
    data_scale: float = 1.0,
) -> AppGraph:
    """A chain of ``n_stages`` components; first and last pinned local."""
    if n_stages < 2:
        raise ValueError(f"need at least 2 stages, got {n_stages}")
    components: List[Component] = []
    for i in range(n_stages):
        pinned = i == 0 or i == n_stages - 1
        components.append(
            _random_component(f"s{i}", rng, offloadable=not pinned, work_scale=work_scale)
        )
    flows = [
        _random_flow(f"s{i}", f"s{i + 1}", rng, data_scale)
        for i in range(n_stages - 1)
    ]
    return AppGraph(name or f"pipeline{n_stages}", components, flows)


def fanout_fanin_app(
    width: int,
    rng: RngStream,
    name: Optional[str] = None,
    work_scale: float = 1.0,
    data_scale: float = 1.0,
) -> AppGraph:
    """source → ``width`` parallel workers → sink (map/reduce shape)."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    components = [_random_component("source", rng, offloadable=False)]
    flows: List[DataFlow] = []
    for i in range(width):
        worker = f"worker{i}"
        components.append(_random_component(worker, rng, work_scale=work_scale))
        flows.append(_random_flow("source", worker, rng, data_scale))
    components.append(_random_component("sink", rng, offloadable=False))
    for i in range(width):
        flows.append(_random_flow(f"worker{i}", "sink", rng, data_scale))
    return AppGraph(name or f"fanout{width}", components, flows)


def random_tree_app(
    n_components: int,
    rng: RngStream,
    name: Optional[str] = None,
    work_scale: float = 1.0,
    data_scale: float = 1.0,
) -> AppGraph:
    """A random out-tree rooted at a pinned source component.

    Trees are the family where the DP partitioner is provably optimal,
    which ablation A1 exploits.
    """
    if n_components < 1:
        raise ValueError(f"need at least 1 component, got {n_components}")
    components = [_random_component("c0", rng, offloadable=False)]
    flows: List[DataFlow] = []
    for i in range(1, n_components):
        parent = rng.integer(0, i)
        components.append(_random_component(f"c{i}", rng, work_scale=work_scale))
        flows.append(_random_flow(f"c{parent}", f"c{i}", rng, data_scale))
    return AppGraph(name or f"tree{n_components}", components, flows)


def layered_random_app(
    n_layers: int,
    layer_width: int,
    rng: RngStream,
    edge_probability: float = 0.5,
    name: Optional[str] = None,
    work_scale: float = 1.0,
    data_scale: float = 1.0,
) -> AppGraph:
    """A layered random DAG (the standard scheduling-benchmark family).

    Every component in layer *k* connects to each component of layer
    *k+1* with ``edge_probability``; isolated components are reconnected
    to a random next-layer node so the graph stays weakly connected.
    """
    if n_layers < 2:
        raise ValueError(f"need at least 2 layers, got {n_layers}")
    if layer_width < 1:
        raise ValueError(f"layer width must be >= 1, got {layer_width}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")

    components = [_random_component("entry", rng, offloadable=False)]
    layers: List[List[str]] = [["entry"]]
    for layer in range(1, n_layers - 1):
        names = [f"l{layer}n{i}" for i in range(layer_width)]
        for comp_name in names:
            components.append(_random_component(comp_name, rng, work_scale=work_scale))
        layers.append(names)
    components.append(_random_component("exit", rng, offloadable=False))
    layers.append(["exit"])

    flows: List[DataFlow] = []
    for upper, lower in zip(layers, layers[1:]):
        connected_below = set()
        for src in upper:
            fanout = [dst for dst in lower if rng.bernoulli(edge_probability)]
            if not fanout:
                fanout = [lower[rng.integer(0, len(lower))]]
            for dst in fanout:
                flows.append(_random_flow(src, dst, rng, data_scale))
                connected_below.add(dst)
        for dst in lower:
            if dst not in connected_below:
                src = upper[rng.integer(0, len(upper))]
                flows.append(_random_flow(src, dst, rng, data_scale))
    return AppGraph(name or f"layered{n_layers}x{layer_width}", components, flows)


__all__ = [
    "fanout_fanin_app",
    "layered_random_app",
    "linear_pipeline_app",
    "random_tree_app",
]
