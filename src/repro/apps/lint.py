"""Structural linting for application graphs.

`AppGraph` enforces hard invariants (acyclicity, dangling references) at
construction; the linter catches the *soft* mistakes that make an app
technically valid but practically mis-modelled — the checks a reviewer
would make on a new catalog entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.graph import AppGraph


@dataclass(frozen=True)
class LintWarning:
    """One finding: a rule code, the subject, and an explanation."""

    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


def lint_app(app: AppGraph) -> List[LintWarning]:
    """Run every rule; returns warnings sorted by (code, subject)."""
    warnings: List[LintWarning] = []

    # W001: entry/exit components should be pinned — they touch device
    # hardware (sensors, storage, UI) by construction.
    for name in app.entry_components + app.exit_components:
        if app.component(name).offloadable:
            warnings.append(
                LintWarning(
                    "W001",
                    name,
                    "entry/exit component is offloadable; device I/O "
                    "endpoints usually cannot leave the UE",
                )
            )

    # W002: isolated components (no flows at all) never receive or
    # produce data — almost always a forgotten edge.
    if len(app) > 1:
        for name in app.component_names:
            if not app.predecessors(name) and not app.successors(name):
                warnings.append(
                    LintWarning(
                        "W002", name,
                        "component has no data flows; is an edge missing?",
                    )
                )

    # W003: zero-work offloadable components pay a cold start and a
    # request fee for nothing.
    for component in app.components:
        if (
            component.offloadable
            and component.work_gcycles == 0
            and component.work_gcycles_per_mb == 0
        ):
            warnings.append(
                LintWarning(
                    "W003", component.name,
                    "offloadable component has zero computational demand; "
                    "offloading it can only cost",
                )
            )

    # W004: a memory floor below the platform minimum (128 MB) is
    # meaningless; above 10 GB is undeployable.
    for component in app.components:
        if component.min_memory_mb > 10240:
            warnings.append(
                LintWarning(
                    "W004", component.name,
                    f"memory floor {component.min_memory_mb:.0f} MB exceeds "
                    "the largest serverless tier (10240 MB)",
                )
            )

    # W005: an edge that carries more data than the producing
    # component's input suggests inverted per-MB coefficients.
    for flow in app.flows:
        if flow.bytes_per_mb > 1.5:
            warnings.append(
                LintWarning(
                    "W005", f"{flow.src}->{flow.dst}",
                    f"edge amplifies input data {flow.bytes_per_mb:.1f}x; "
                    "verify the per-MB coefficient",
                )
            )

    # W006: every component should be reachable from some entry —
    # unreachable ones will deadlock a job waiting on inputs that never
    # come (cannot happen for DAGs whose non-entry nodes all have
    # predecessors, but multi-root graphs can still strand subgraphs).
    reachable = set(app.entry_components)
    for name in app.component_names:
        if any(p in reachable for p in app.predecessors(name)):
            reachable.add(name)
    for name in app.component_names:
        if name not in reachable:
            warnings.append(
                LintWarning(
                    "W006", name,
                    "component unreachable from any entry component",
                )
            )

    # W007: pinned components with heavy demand defeat offloading's
    # purpose; flag anything pinned that dominates the app's work.
    total = app.total_work(1.0)
    if total > 0:
        for name in app.pinned_names():
            share = app.component(name).work_for(1.0) / total
            if share > 0.5:
                warnings.append(
                    LintWarning(
                        "W007", name,
                        f"pinned component holds {share:.0%} of total demand; "
                        "nothing meaningful can be offloaded",
                    )
                )

    return sorted(warnings, key=lambda w: (w.code, w.subject))


__all__ = ["LintWarning", "lint_app"]
