"""Jobs: one execution of an application over a concrete input.

A :class:`Job` fixes the input size (which scales component work and edge
data via the graph's per-MB coefficients), the release time, and the
deadline.  Non-time-criticality is expressed as *slack*: the deadline sits
far beyond the best-case makespan, and schedulers are free to exploit the
gap.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.apps.graph import AppGraph

_job_counter = itertools.count()


@dataclass(frozen=True)
class Job:
    """One unit of end-to-end application work.

    Parameters
    ----------
    app:
        The application graph being executed.
    input_mb:
        Input size in megabytes; scales work and data flows.
    released_at:
        Simulation time the job becomes available.
    deadline:
        Absolute completion deadline (``inf`` = pure best effort).
    job_id:
        Auto-assigned unique id when omitted.
    """

    app: AppGraph
    input_mb: float = 1.0
    released_at: float = 0.0
    deadline: float = math.inf
    job_id: int = field(default_factory=lambda: next(_job_counter))

    def __post_init__(self) -> None:
        if self.input_mb < 0:
            raise ValueError("input size must be >= 0")
        if self.deadline < self.released_at:
            raise ValueError(
                f"deadline {self.deadline} precedes release {self.released_at}"
            )

    @property
    def slack(self) -> float:
        """Seconds between release and deadline."""
        return self.deadline - self.released_at

    def component_work(self, name: str) -> float:
        """Demand of one component for this job, in gigacycles."""
        return self.app.component(name).work_for(self.input_mb)

    def flow_bytes(self, src: str, dst: str) -> float:
        """Bytes crossing one edge for this job."""
        return self.app.flow(src, dst).bytes_for(self.input_mb)

    def total_work(self) -> float:
        """Total demand across all components, in gigacycles."""
        return self.app.total_work(self.input_mb)

    def with_deadline(self, deadline: float) -> "Job":
        """A copy of this job with a different absolute deadline."""
        return Job(
            app=self.app,
            input_mb=self.input_mb,
            released_at=self.released_at,
            deadline=deadline,
            job_id=self.job_id,
        )


@dataclass(frozen=True)
class JobResult:
    """Completion record of one job."""

    job: Job
    started_at: float
    finished_at: float
    ue_energy_j: float
    cloud_cost_usd: float
    component_finish_times: Dict[str, float] = field(default_factory=dict)
    #: Per-activity decomposition of ``ue_energy_j`` (keys: "compute",
    #: "tx", "rx", "idle", "sleep"); empty when the runner predates it.
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    def breakdown_total(self) -> float:
        """Sum of the breakdown entries (equals ``ue_energy_j`` when set)."""
        return sum(self.energy_breakdown.values())

    @property
    def makespan(self) -> float:
        """Seconds from start of execution to completion."""
        return self.finished_at - self.started_at

    @property
    def response_time(self) -> float:
        """Seconds from job release to completion (includes any deferral)."""
        return self.finished_at - self.job.released_at

    @property
    def met_deadline(self) -> bool:
        """True when the job finished by its deadline."""
        return self.finished_at <= self.job.deadline

    @property
    def lateness(self) -> float:
        """Positive when late, negative when early."""
        return self.finished_at - self.job.deadline


__all__ = ["Job", "JobResult"]
