"""Application model: components, call graphs, and concrete workloads.

An application is a DAG of :class:`Component`\\ s (units of partitionable
code) connected by :class:`DataFlow` edges (bytes that must move if the
two endpoints land on different sides of the partition).  Work and data
both scale with the job's input size, which is what makes the demand
determination contribution (C1) non-trivial.

Three concrete applications mirror the non-time-critical use cases the
paper's framing motivates (:mod:`repro.apps.catalog`), and
:mod:`repro.apps.generators` synthesises random graph families for the
partitioning ablations.
"""

from repro.apps.graph import AppGraph, Component, DataFlow
from repro.apps.jobs import Job, JobResult
from repro.apps.catalog import (
    document_ocr_app,
    ml_training_app,
    nightly_analytics_app,
    photo_backup_app,
    video_highlights_app,
)
from repro.apps.generators import (
    fanout_fanin_app,
    layered_random_app,
    linear_pipeline_app,
    random_tree_app,
)

__all__ = [
    "AppGraph",
    "Component",
    "DataFlow",
    "Job",
    "JobResult",
    "document_ocr_app",
    "fanout_fanin_app",
    "layered_random_app",
    "linear_pipeline_app",
    "ml_training_app",
    "nightly_analytics_app",
    "photo_backup_app",
    "random_tree_app",
    "video_highlights_app",
]
