"""Component call-graphs.

The partitioning contribution (C3) operates on these graphs: every
component is assigned to the UE or to the cloud, non-offloadable
components are pinned to the UE, and each cut edge pays its data size in
transfer time/energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class Component:
    """One partitionable unit of application code.

    Parameters
    ----------
    name:
        Unique name within its application.
    work_gcycles:
        Fixed computational demand per job, in gigacycles.
    work_gcycles_per_mb:
        Additional demand per megabyte of job input (the input-dependent
        part that demand estimators must learn).
    offloadable:
        False pins the component to the UE — the classic restriction for
        code touching sensors, UI or local storage.
    parallel_fraction:
        Amdahl fraction, forwarded to the serverless duration model.
    package_mb:
        Size of the deployment artifact when this component ships as a
        serverless function (drives cold starts and deploy time).
    min_memory_mb:
        Working-set floor: the smallest serverless memory size the
        component fits in.
    """

    name: str
    work_gcycles: float = 1.0
    work_gcycles_per_mb: float = 0.0
    offloadable: bool = True
    parallel_fraction: float = 0.0
    package_mb: float = 20.0
    min_memory_mb: float = 128.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        if self.work_gcycles < 0 or self.work_gcycles_per_mb < 0:
            raise ValueError(f"{self.name}: work must be >= 0")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError(f"{self.name}: parallel_fraction must be in [0, 1]")
        if self.package_mb < 0:
            raise ValueError(f"{self.name}: package size must be >= 0")
        if self.min_memory_mb < 0:
            raise ValueError(f"{self.name}: memory floor must be >= 0")

    def work_for(self, input_mb: float) -> float:
        """Demand in gigacycles for a job with ``input_mb`` of input."""
        if input_mb < 0:
            raise ValueError("input size must be >= 0")
        return self.work_gcycles + self.work_gcycles_per_mb * input_mb


@dataclass(frozen=True)
class DataFlow:
    """A directed data dependency between two components."""

    src: str
    dst: str
    bytes_fixed: float = 0.0
    bytes_per_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop on {self.src!r}")
        if self.bytes_fixed < 0 or self.bytes_per_mb < 0:
            raise ValueError("data sizes must be >= 0")

    def bytes_for(self, input_mb: float) -> float:
        """Bytes crossing this edge for a job with ``input_mb`` of input."""
        if input_mb < 0:
            raise ValueError("input size must be >= 0")
        return self.bytes_fixed + self.bytes_per_mb * input_mb * 1e6


class AppGraph:
    """A validated DAG of components and data flows."""

    def __init__(
        self,
        name: str,
        components: Iterable[Component],
        flows: Iterable[DataFlow] = (),
    ) -> None:
        self.name = name
        self._components: Dict[str, Component] = {}
        for comp in components:
            if comp.name in self._components:
                raise ValueError(f"duplicate component {comp.name!r}")
            self._components[comp.name] = comp
        if not self._components:
            raise ValueError(f"app {name!r} has no components")

        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._components)
        self._flows: Dict[Tuple[str, str], DataFlow] = {}
        for flow in flows:
            for endpoint in (flow.src, flow.dst):
                if endpoint not in self._components:
                    raise KeyError(f"flow references unknown component {endpoint!r}")
            key = (flow.src, flow.dst)
            if key in self._flows:
                raise ValueError(f"duplicate flow {key}")
            self._flows[key] = flow
            self._graph.add_edge(flow.src, flow.dst)

        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise ValueError(f"app {name!r} contains a cycle: {cycle}")
        self._topo_order: List[str] = list(nx.topological_sort(self._graph))

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def component(self, name: str) -> Component:
        """Look up one component by name."""
        if name not in self._components:
            raise KeyError(f"unknown component {name!r} in app {self.name!r}")
        return self._components[name]

    @property
    def components(self) -> List[Component]:
        """All components in topological order."""
        return [self._components[n] for n in self._topo_order]

    @property
    def component_names(self) -> List[str]:
        """Component names in topological order."""
        return list(self._topo_order)

    @property
    def flows(self) -> List[DataFlow]:
        """All data flows, ordered by (src, dst)."""
        return [self._flows[k] for k in sorted(self._flows)]

    def flow(self, src: str, dst: str) -> DataFlow:
        """The flow on edge ``(src, dst)``."""
        key = (src, dst)
        if key not in self._flows:
            raise KeyError(f"no flow {src!r} -> {dst!r} in app {self.name!r}")
        return self._flows[key]

    def predecessors(self, name: str) -> List[str]:
        """Immediate upstream component names, sorted."""
        return sorted(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Immediate downstream component names, sorted."""
        return sorted(self._graph.successors(name))

    @property
    def entry_components(self) -> List[str]:
        """Components with no predecessors (job inputs arrive here)."""
        return [n for n in self._topo_order if self._graph.in_degree(n) == 0]

    @property
    def exit_components(self) -> List[str]:
        """Components with no successors (job results leave here)."""
        return [n for n in self._topo_order if self._graph.out_degree(n) == 0]

    def is_tree(self) -> bool:
        """True when the undirected shape is a tree (enables DP partitioning)."""
        undirected = self._graph.to_undirected()
        return nx.is_tree(undirected)

    # -- aggregate demand -----------------------------------------------------

    def total_work(self, input_mb: float) -> float:
        """Sum of all component demands for one job, in gigacycles."""
        return sum(c.work_for(input_mb) for c in self._components.values())

    def total_flow_bytes(self, input_mb: float) -> float:
        """Sum of all edge data sizes for one job."""
        return sum(f.bytes_for(input_mb) for f in self._flows.values())

    def offloadable_names(self) -> List[str]:
        """Names of components that may leave the UE."""
        return [n for n in self._topo_order if self._components[n].offloadable]

    def pinned_names(self) -> List[str]:
        """Names of components that must stay on the UE."""
        return [n for n in self._topo_order if not self._components[n].offloadable]

    # -- derivation -----------------------------------------------------------

    def with_component(self, component: Component) -> "AppGraph":
        """A copy with one component replaced (same flows)."""
        if component.name not in self._components:
            raise KeyError(f"unknown component {component.name!r}")
        comps = [
            component if c.name == component.name else c
            for c in self._components.values()
        ]
        return AppGraph(self.name, comps, self.flows)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<AppGraph {self.name!r} components={len(self)} "
            f"flows={len(self._flows)}>"
        )


__all__ = ["AppGraph", "Component", "DataFlow"]
