"""Kernel core selection: ``REPRO_SIM_CORE=pure|compiled``.

The simulator ships two interchangeable cores:

* **pure** (default) — the pure-Python kernel in :mod:`repro.sim.kernel`
  and :mod:`repro.sim.events`.  Always available; the reference
  implementation the differential test suite trusts.
* **compiled** — the C extension :mod:`repro.sim._ckernel` (built by
  ``tools/build_core.py``), which replaces the ``Event`` type, the fast
  lane, and the batched ``run()`` dispatch loop.  Dispatch order, golden
  traces, and meter counters are byte-identical to the pure core; only
  wall-clock throughput changes.

Selection is read once at import: ``REPRO_SIM_CORE=compiled`` opts in,
anything else (or an unbuilt extension) falls back to pure with a
warning, never an error — simulations must run everywhere.

The extension is *imported* whenever it is available, independent of the
active core, so tests can exercise the compiled loop in-process (a
Simulator whose ``_fast`` is a :class:`_ckernel.FastLane` dispatches
through the C loop) while the session default stays pure.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["ACTIVE", "CKERNEL", "COMPILED_AVAILABLE", "REQUESTED"]

REQUESTED = os.environ.get("REPRO_SIM_CORE", "") or "pure"
if REQUESTED not in ("pure", "compiled"):
    warnings.warn(
        f"REPRO_SIM_CORE={REQUESTED!r} is not 'pure' or 'compiled'; "
        "using the pure-Python core",
        RuntimeWarning,
        stacklevel=2,
    )
    REQUESTED = "pure"

try:
    from repro.sim import _ckernel as CKERNEL  # type: ignore[attr-defined]
except ImportError:
    CKERNEL = None  # type: ignore[assignment]

COMPILED_AVAILABLE = CKERNEL is not None

if REQUESTED == "compiled" and not COMPILED_AVAILABLE:
    warnings.warn(
        "REPRO_SIM_CORE=compiled but repro.sim._ckernel is not built; "
        "falling back to the pure-Python core "
        "(build it with: python tools/build_core.py)",
        RuntimeWarning,
        stacklevel=2,
    )

#: The core actually in effect for this process.
ACTIVE = "compiled" if (REQUESTED == "compiled" and COMPILED_AVAILABLE) else "pure"
