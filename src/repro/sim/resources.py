"""Contended resources for the discrete-event kernel.

Three classic primitives:

* :class:`Resource` — a counted server pool with a FIFO wait queue
  (models CPUs, network links treated as slot-limited, concurrency limits);
* :class:`PriorityResource` — the same with a priority queue;
* :class:`Store` — a buffer of discrete items with blocking put/get
  (models job queues and mailboxes);
* :class:`Container` — a continuous level with blocking put/get
  (models battery charge and byte budgets).

All wait queues break ties by insertion order so that contended runs are
deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Yield it to block until granted; pass it to
    :meth:`Resource.release` when done.
    """

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue."""

    __slots__ = ("sim", "capacity", "_users", "_queue")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently granted."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted.

        The uncontended case (free capacity, empty queue — the common one
        in offloading runs) grants inline with no queue churn: the request
        never touches the wait deque, only the users set and the kernel's
        immediate fast lane.
        """
        req = Request(self.sim, self)
        users = self._users
        if len(users) < self.capacity:
            users.add(req)
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot to the pool.

        Releasing a request that was never granted (still queued) cancels
        it instead.
        """
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                raise RuntimeError(
                    "release() called with a request unknown to this resource"
                ) from None

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)


class PriorityRequest(Request):
    """A :class:`Request` carrying a priority (lower value = served first)."""

    __slots__ = ("priority", "_order")

    def __init__(
        self, sim: "Simulator", resource: "PriorityResource", priority: float, order: int
    ) -> None:
        super().__init__(sim, resource)
        self.priority = priority
        self._order = order

    def _sort_key(self) -> tuple[float, int]:
        return (self.priority, self._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority."""

    __slots__ = ("_pqueue", "_order")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        super().__init__(sim, capacity)
        self._pqueue: list[tuple[float, int, PriorityRequest]] = []
        self._order = 0

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def request(self, priority: float = 0.0) -> PriorityRequest:  # type: ignore[override]
        self._order += 1
        req = PriorityRequest(self.sim, self, priority, self._order)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            heapq.heappush(self._pqueue, (priority, self._order, req))
        return req

    def release(self, request: Request) -> None:  # type: ignore[override]
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Lazy cancellation: mark and skip when popped.
            for i, (_p, _o, queued) in enumerate(self._pqueue):
                if queued is request:
                    del self._pqueue[i]
                    heapq.heapify(self._pqueue)
                    return
            raise RuntimeError(
                "release() called with a request unknown to this resource"
            )

    def _grant_next(self) -> None:
        while self._pqueue and len(self._users) < self.capacity:
            _p, _o, nxt = heapq.heappop(self._pqueue)
            self._users.add(nxt)
            nxt.succeed(nxt)


class Store:
    """A buffer of discrete items with blocking ``put``/``get``.

    ``capacity`` bounds the number of buffered items; ``put`` blocks when
    full, ``get`` blocks when empty.  Items are delivered FIFO.
    """

    __slots__ = ("sim", "capacity", "items", "_getters", "_putters")

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the returned event fires once it is buffered.

        Uncontended fast path: with buffer space and no waiting getter the
        item is buffered inline, skipping the putter-queue round trip.
        (``_settle`` keeps the invariant that waiting putters imply a full
        buffer, so space also implies an empty putter queue.)
        """
        event = Event(self.sim)
        if not self._getters and len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
            self._settle()
        return event

    def get(self) -> Event:
        """Withdraw one item; the returned event fires with the item.

        Uncontended fast path: with items buffered (which implies no
        waiting getter) the head item is delivered inline; a freed slot
        may then admit one waiting putter, same as the general path.
        """
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            if self._putters:
                self._settle()
        else:
            self._getters.append(event)
            self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed(None)
                progress = True
            if self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progress = True

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous quantity (energy, bytes) with blocking put/get.

    ``get(amount)`` blocks until the level covers ``amount``; ``put(amount)``
    blocks until the level plus ``amount`` fits under ``capacity``.
    """

    __slots__ = ("sim", "capacity", "_level", "_getters", "_putters")

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``.

        Uncontended fast path: no putter is queued ahead (FIFO fairness)
        and the amount fits, so the level moves inline; any getters that
        become satisfiable are settled exactly as the general path would.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        event = Event(self.sim)
        if not self._putters and self._level + amount <= self.capacity:
            self._level += amount
            event.succeed(None)
            if self._getters:
                self._settle()
        else:
            self._putters.append((event, amount))
            self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires when the level covers it.

        Uncontended fast path mirrors :meth:`put`: no getter queued ahead
        and the level covers the amount, so it is withdrawn inline; the
        freed headroom may then admit waiting putters.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} exceeds container capacity {self.capacity}"
            )
        event = Event(self.sim)
        if not self._getters and self._level >= amount:
            self._level -= amount
            event.succeed(amount)
            if self._putters:
                self._settle()
        else:
            self._getters.append((event, amount))
            self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(None)
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progress = True


__all__ = [
    "Container",
    "PriorityRequest",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
]
