"""Deterministic discrete-event simulation kernel.

This package provides the substrate every other simulator in :mod:`repro`
runs on: a simulated clock, an event heap, generator-based processes, and
contended resources.  The design follows the classic event-list paradigm
(as used by SimPy, OMNeT++ and EdgeCloudSim) but is self-contained and
fully deterministic: events scheduled for the same timestamp fire in
insertion order, and all randomness is injected through
:class:`~repro.sim.rng.RngStream` objects.

Typical usage::

    from repro.sim import Simulator

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3.0)
        print("done at", sim.now)

    sim.spawn(worker(sim))
    sim.run()
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    Timeout,
)
from repro.sim.kernel import Process, SimulationError, Simulator
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RngStream, SeedSequenceRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "RngStream",
    "SeedSequenceRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
