"""Named, reproducible random streams.

Every stochastic component in the reproduction draws from an
:class:`RngStream` obtained from a :class:`SeedSequenceRegistry`.  Streams
are derived from the registry's root seed *and the stream name*, so adding a
new consumer never perturbs the draws of existing ones — the standard trick
for variance reduction and regression-stable simulations.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A thin convenience wrapper over :class:`numpy.random.Generator`.

    Adds the handful of domain-specific draws the simulators need
    (exponential inter-arrivals, bounded lognormals, empirical choice)
    while keeping the full generator available as ``.np``.
    """

    def __init__(self, seed: int, name: str = "stream") -> None:
        self.name = name
        self.seed = seed
        self.np = np.random.Generator(np.random.PCG64(seed))

    # -- basic draws --------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from ``[low, high)``."""
        return float(self.np.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """One integer from ``[low, high)``."""
        return int(self.np.integers(low, high))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean (not rate)."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        return float(self.np.exponential(mean))

    def normal(self, mean: float, std: float) -> float:
        """One normal draw."""
        return float(self.np.normal(mean, std))

    def lognormal_bounded(
        self,
        median: float,
        sigma: float,
        low: float = 0.0,
        high: float = float("inf"),
    ) -> float:
        """A lognormal draw around ``median`` clipped to ``[low, high]``.

        Lognormals model service-time and payload-size variability; the
        clip keeps pathological tails from destabilising short benchmark
        runs.
        """
        if median <= 0:
            raise ValueError(f"median must be > 0, got {median}")
        draw = float(self.np.lognormal(np.log(median), sigma))
        return min(max(draw, low), high)

    def choice(self, options: Sequence, weights: Optional[Sequence[float]] = None):
        """Pick one element, optionally weighted (weights need not sum to 1)."""
        if not options:
            raise ValueError("choice() requires a non-empty sequence")
        if weights is None:
            idx = int(self.np.integers(0, len(options)))
        else:
            if len(weights) != len(options):
                raise ValueError("weights must match options in length")
            probabilities = np.asarray(weights, dtype=float)
            total = probabilities.sum()
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            idx = int(self.np.choice(len(options), p=probabilities / total))
        return options[idx]

    def shuffle(self, items: list) -> list:
        """Return a new list with ``items`` in shuffled order."""
        order = self.np.permutation(len(items))
        return [items[i] for i in order]

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return bool(self.np.random() < p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngStream {self.name!r} seed={self.seed}>"


class SeedSequenceRegistry:
    """Derives independent named streams from one root seed.

    Requesting the same name twice returns the *same* stream object, so
    components that share a name share a stream deliberately.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Get (or create) the stream registered under ``name``."""
        if name not in self._streams:
            self._streams[name] = RngStream(
                _derive_seed(self.root_seed, name), name=name
            )
        return self._streams[name]

    def fork(self, suffix: str) -> "SeedSequenceRegistry":
        """A child registry whose streams are independent of the parent's."""
        return SeedSequenceRegistry(_derive_seed(self.root_seed, f"fork:{suffix}"))

    def names(self) -> Iterator[str]:
        """Names of all streams created so far."""
        return iter(sorted(self._streams))


__all__ = ["RngStream", "SeedSequenceRegistry"]
