"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  It
starts *pending*, is *triggered* exactly once (either with a value via
:meth:`Event.succeed` or with an exception via :meth:`Event.fail`), and then
notifies its callbacks when the kernel processes it.

Composite events (:class:`AllOf`, :class:`AnyOf`) let a process wait for
conjunctions and disjunctions of other events, which the serverless and
network substrates use to model fan-out/fan-in of parallel work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.kernel import Simulator

_PENDING = object()


class EventAlreadyTriggered(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a non-pending event."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied; it is
    commonly a human-readable reason or the object responsible.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    Events are created in the *pending* state.  Calling :meth:`succeed` or
    :meth:`fail` *triggers* them: the kernel enqueues the event and, when the
    clock reaches its scheduled time, runs every registered callback.
    Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception.

        Raises :class:`AttributeError` while the event is still pending so
        that accidental early reads fail loudly.
        """
        if self._value is _PENDING:
            raise AttributeError("event value is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def _trigger(self, ok: bool, value: Any) -> None:
        """Record the one-shot outcome.

        The single source of ``triggered`` semantics: ``succeed``,
        ``fail`` and the kernel's ``call_at`` all route through here, so
        the pending check and state transition can never drift apart.
        """
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = ok
        self._value = value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        # The trigger guard is inlined (hot path): ``_ok`` stays at its
        # construction-time ``True`` because only ``fail``/``_trigger``
        # ever clear it and both are trigger-once guarded.
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._value = value
        # Append to the immediate fast lane directly: triggering can only
        # happen once (guarded above), so the kernel-side ``_scheduled``
        # bookkeeping is unnecessary on this path.
        self.sim._fast.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._fast.append(self)
        return self

    # -- kernel hooks -------------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


#: The pure-Python event type, kept importable under a stable name for
#: differential tests even when the compiled core rebinds ``Event``.
PurePythonEvent = Event

from repro.sim._core import ACTIVE as _ACTIVE_CORE  # noqa: E402
from repro.sim._core import CKERNEL as _CKERNEL  # noqa: E402

if _CKERNEL is not None:
    # Hand the C core the module-level singletons it must share with the
    # pure implementation (the sentinel *is* the triggered-state flag).
    _CKERNEL._bind_events(_PENDING, EventAlreadyTriggered)
    if _ACTIVE_CORE == "compiled":
        # Rebind before the subclasses below are defined so Timeout,
        # conditions, and kernel.Process all inherit the C type.
        Event = _CKERNEL.Event  # type: ignore[misc,assignment]  # noqa: F811


class Timeout(Event):
    """An event that fires automatically after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        # A fresh event is always pending, so the trigger guard is
        # unnecessary; ``_ok`` is already True.
        self._value = value
        if delay == 0:
            # Zero-delay fast path: skip the ``_enqueue_at`` clock
            # comparison — ``now + 0.0 == now`` routes to the fast lane
            # unconditionally.
            self._scheduled = True
            sim._fast.append(self)
        else:
            sim._enqueue_at(sim.now + delay, self)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: Sequence[Event] = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events of a condition must share one Simulator")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events if e.triggered and e.ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails, propagating the child's exception.
    The success value is a dict mapping each child event to its value.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds.

    Fails only if *all* children fail; the exception of the last failing
    child is propagated.  The success value is a dict of every child that
    has succeeded by the time the condition fires.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._collect())
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.fail(event.value)


__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Timeout",
]
