/* Compiled core for repro.sim: FastLane deque, Event type, batched run loop.
 *
 * Selected via REPRO_SIM_CORE=compiled (see repro/sim/_core.py); the pure
 * Python kernel stays the reference implementation and the differential
 * test suite runs programs against both.  The semantics here mirror
 * repro/sim/kernel.py run() and repro/sim/events.py Event exactly —
 * including dispatch order, meter accounting, and exception behaviour —
 * so golden traces stay byte-identical across cores.
 *
 * Built without pip via tools/build_core.py (gcc + sysconfig paths).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <time.h>

/* Bound from Python after the pure modules define them (avoids an import
 * cycle): events._PENDING, events.EventAlreadyTriggered,
 * kernel.SimulationError. */
static PyObject *g_pending = NULL;
static PyObject *g_already_triggered = NULL;
static PyObject *g_simulation_error = NULL;

/* Interned attribute names. */
static PyObject *s_fast = NULL;          /* "_fast" */
static PyObject *s_heap = NULL;          /* "_heap" */
static PyObject *s_pool = NULL;          /* "_entry_pool" */
static PyObject *s_now = NULL;           /* "_now" */
static PyObject *s_meter = NULL;         /* "meter" */
static PyObject *s_enabled = NULL;       /* "enabled" */
static PyObject *s_append = NULL;        /* "append" */
static PyObject *s_callbacks = NULL;     /* "callbacks" */
static PyObject *s_run_callbacks = NULL; /* "_run_callbacks" */
static PyObject *s_ok = NULL;            /* "_ok" */
static PyObject *s_value = NULL;         /* "_value" */
static PyObject *s_fast_lane_hits = NULL;
static PyObject *s_heap_hits = NULL;
static PyObject *s_batched_events = NULL;
static PyObject *s_kernel_flush = NULL;  /* "kernel_flush_wall_s" */

static double
monotonic_seconds(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

/* ====================================================================== */
/* FastLane: a ring-buffer FIFO of PyObject* (deque replacement).          */
/* ====================================================================== */

typedef struct {
    PyObject_HEAD
    PyObject **items;
    Py_ssize_t capacity; /* power of two */
    Py_ssize_t head;
    Py_ssize_t count;
} FastLane;

static PyTypeObject FastLane_Type;

#define FASTLANE_INITIAL_CAPACITY 64

static int
fastlane_grow(FastLane *self)
{
    Py_ssize_t new_capacity = self->capacity * 2;
    PyObject **fresh = PyMem_New(PyObject *, new_capacity);
    if (fresh == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t mask = self->capacity - 1;
    for (Py_ssize_t i = 0; i < self->count; i++) {
        fresh[i] = self->items[(self->head + i) & mask];
    }
    PyMem_Free(self->items);
    self->items = fresh;
    self->capacity = new_capacity;
    self->head = 0;
    return 0;
}

static int
fastlane_append_internal(FastLane *self, PyObject *item)
{
    if (self->count == self->capacity && fastlane_grow(self) < 0) {
        return -1;
    }
    Py_INCREF(item);
    self->items[(self->head + self->count) & (self->capacity - 1)] = item;
    self->count++;
    return 0;
}

/* Returns a new reference, or NULL (no exception set) when empty. */
static PyObject *
fastlane_popleft_internal(FastLane *self)
{
    if (self->count == 0) {
        return NULL;
    }
    PyObject *item = self->items[self->head];
    self->items[self->head] = NULL;
    self->head = (self->head + 1) & (self->capacity - 1);
    self->count--;
    return item;
}

static PyObject *
fastlane_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    FastLane *self = (FastLane *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    self->items = PyMem_New(PyObject *, FASTLANE_INITIAL_CAPACITY);
    if (self->items == NULL) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    self->capacity = FASTLANE_INITIAL_CAPACITY;
    self->head = 0;
    self->count = 0;
    return (PyObject *)self;
}

static int
fastlane_traverse(FastLane *self, visitproc visit, void *arg)
{
    Py_ssize_t mask = self->capacity - 1;
    for (Py_ssize_t i = 0; i < self->count; i++) {
        Py_VISIT(self->items[(self->head + i) & mask]);
    }
    return 0;
}

static int
fastlane_clear_slot(FastLane *self)
{
    Py_ssize_t mask = self->capacity - 1;
    for (Py_ssize_t i = 0; i < self->count; i++) {
        Py_CLEAR(self->items[(self->head + i) & mask]);
    }
    self->count = 0;
    self->head = 0;
    return 0;
}

static void
fastlane_dealloc(FastLane *self)
{
    PyObject_GC_UnTrack(self);
    fastlane_clear_slot(self);
    PyMem_Free(self->items);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
fastlane_append(FastLane *self, PyObject *item)
{
    if (fastlane_append_internal(self, item) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
fastlane_popleft(FastLane *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *item = fastlane_popleft_internal(self);
    if (item == NULL) {
        PyErr_SetString(PyExc_IndexError, "pop from an empty FastLane");
        return NULL;
    }
    return item;
}

static Py_ssize_t
fastlane_length(FastLane *self)
{
    return self->count;
}

static PyMethodDef fastlane_methods[] = {
    {"append", (PyCFunction)fastlane_append, METH_O,
     "Append one item to the tail."},
    {"popleft", (PyCFunction)fastlane_popleft, METH_NOARGS,
     "Pop and return the head item."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods fastlane_as_sequence = {
    .sq_length = (lenfunc)fastlane_length,
};

static PyTypeObject FastLane_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.FastLane",
    .tp_basicsize = sizeof(FastLane),
    .tp_dealloc = (destructor)fastlane_dealloc,
    .tp_as_sequence = &fastlane_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Ring-buffer FIFO for the kernel's immediate fast lane.",
    .tp_traverse = (traverseproc)fastlane_traverse,
    .tp_clear = (inquiry)fastlane_clear_slot,
    .tp_methods = fastlane_methods,
    .tp_new = fastlane_new,
};

/* ====================================================================== */
/* Event: the compiled one-shot occurrence (base-class compatible).        */
/* ====================================================================== */

typedef struct {
    PyObject_HEAD
    PyObject *sim;
    PyObject *callbacks;   /* list while pending/triggered, None once run */
    PyObject *e_value;     /* _PENDING sentinel until triggered */
    PyObject *e_ok;        /* Py_True / Py_False */
    PyObject *e_scheduled; /* Py_True / Py_False */
} CEvent;

static PyTypeObject Event_Type;

static int
event_init(CEvent *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"sim", NULL};
    PyObject *sim;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O", kwlist, &sim)) {
        return -1;
    }
    if (g_pending == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel is not bound; import repro.sim.events first");
        return -1;
    }
    PyObject *callbacks = PyList_New(0);
    if (callbacks == NULL) {
        return -1;
    }
    Py_INCREF(sim);
    Py_XSETREF(self->sim, sim);
    Py_XSETREF(self->callbacks, callbacks);
    Py_INCREF(g_pending);
    Py_XSETREF(self->e_value, g_pending);
    Py_INCREF(Py_True);
    Py_XSETREF(self->e_ok, Py_True);
    Py_INCREF(Py_False);
    Py_XSETREF(self->e_scheduled, Py_False);
    return 0;
}

static int
event_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->e_value);
    Py_VISIT(self->e_ok);
    Py_VISIT(self->e_scheduled);
    return 0;
}

static int
event_clear(CEvent *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->e_value);
    Py_CLEAR(self->e_ok);
    Py_CLEAR(self->e_scheduled);
    return 0;
}

static void
event_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack(self);
    event_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
event_repr(CEvent *self)
{
    const char *state = "pending";
    if (self->e_value != g_pending) {
        state = (self->e_ok == Py_True) ? "ok" : "failed";
    }
    return PyUnicode_FromFormat("<%s %s at %p>",
                                Py_TYPE(self)->tp_name, state, (void *)self);
}

static int
event_raise_already_triggered(CEvent *self)
{
    PyObject *repr = PyObject_Repr((PyObject *)self);
    if (repr == NULL) {
        return -1;
    }
    PyErr_Format(g_already_triggered, "%U has already been triggered", repr);
    Py_DECREF(repr);
    return -1;
}

/* sim._fast.append(self), with a direct path for FastLane. */
static int
event_enqueue_fast(CEvent *self)
{
    PyObject *fast = PyObject_GetAttr(self->sim, s_fast);
    if (fast == NULL) {
        return -1;
    }
    int status;
    if (Py_TYPE(fast) == &FastLane_Type) {
        status = fastlane_append_internal((FastLane *)fast, (PyObject *)self);
    }
    else {
        PyObject *res =
            PyObject_CallMethodOneArg(fast, s_append, (PyObject *)self);
        status = (res == NULL) ? -1 : 0;
        Py_XDECREF(res);
    }
    Py_DECREF(fast);
    return status;
}

static PyObject *
event_succeed(CEvent *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    PyObject *value = Py_None;
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (total > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "succeed() takes at most one argument");
        return NULL;
    }
    if (nargs == 1) {
        value = args[0];
    }
    else if (kwnames && PyTuple_GET_SIZE(kwnames) == 1) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, 0);
        if (PyUnicode_CompareWithASCIIString(name, "value") != 0) {
            PyErr_Format(PyExc_TypeError,
                         "succeed() got an unexpected keyword argument %R",
                         name);
            return NULL;
        }
        value = args[0];
    }
    if (self->e_value != g_pending) {
        event_raise_already_triggered(self);
        return NULL;
    }
    Py_INCREF(value);
    Py_XSETREF(self->e_value, value);
    if (event_enqueue_fast(self) < 0) {
        return NULL;
    }
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *
event_fail(CEvent *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    PyObject *exception = NULL;
    Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
    if (total != 1) {
        PyErr_SetString(PyExc_TypeError, "fail() takes exactly one argument");
        return NULL;
    }
    if (nargs == 1) {
        exception = args[0];
    }
    else {
        PyObject *name = PyTuple_GET_ITEM(kwnames, 0);
        if (PyUnicode_CompareWithASCIIString(name, "exception") != 0) {
            PyErr_Format(PyExc_TypeError,
                         "fail() got an unexpected keyword argument %R", name);
            return NULL;
        }
        exception = args[0];
    }
    if (!PyExceptionInstance_Check(exception)) {
        PyErr_SetString(PyExc_TypeError,
                        "fail() requires an exception instance");
        return NULL;
    }
    if (self->e_value != g_pending) {
        event_raise_already_triggered(self);
        return NULL;
    }
    Py_INCREF(Py_False);
    Py_XSETREF(self->e_ok, Py_False);
    Py_INCREF(exception);
    Py_XSETREF(self->e_value, exception);
    if (event_enqueue_fast(self) < 0) {
        return NULL;
    }
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *
event_trigger(CEvent *self, PyObject *args)
{
    int ok;
    PyObject *value;
    if (!PyArg_ParseTuple(args, "pO:_trigger", &ok, &value)) {
        return NULL;
    }
    if (self->e_value != g_pending) {
        event_raise_already_triggered(self);
        return NULL;
    }
    PyObject *flag = ok ? Py_True : Py_False;
    Py_INCREF(flag);
    Py_XSETREF(self->e_ok, flag);
    Py_INCREF(value);
    Py_XSETREF(self->e_value, value);
    Py_RETURN_NONE;
}

/* Shared dispatch: detach the callback list and invoke each entry.  Used
 * by both the exposed method and the run loop's inline fast path. */
static int
event_dispatch_inline(CEvent *self)
{
    PyObject *callbacks = self->callbacks;
    if (callbacks == NULL || !PyList_CheckExact(callbacks)) {
        PyErr_Format(PyExc_TypeError,
                     "%R is not iterable (event already processed?)",
                     callbacks == NULL ? Py_None : callbacks);
        return -1;
    }
    Py_INCREF(callbacks);
    Py_INCREF(Py_None);
    Py_SETREF(self->callbacks, Py_None);
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(callbacks); i++) {
        PyObject *callback = PyList_GET_ITEM(callbacks, i);
        Py_INCREF(callback);
        PyObject *res = PyObject_CallOneArg(callback, (PyObject *)self);
        Py_DECREF(callback);
        if (res == NULL) {
            Py_DECREF(callbacks);
            return -1;
        }
        Py_DECREF(res);
    }
    Py_DECREF(callbacks);
    return 0;
}

static PyObject *
event_run_callbacks(CEvent *self, PyObject *Py_UNUSED(ignored))
{
    if (event_dispatch_inline(self) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
event_get_triggered(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->e_value != g_pending);
}

static PyObject *
event_get_processed(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->callbacks == Py_None);
}

static PyObject *
event_get_ok(CEvent *self, void *closure)
{
    PyObject *ok = self->e_ok ? self->e_ok : Py_True;
    Py_INCREF(ok);
    return ok;
}

static PyObject *
event_get_value(CEvent *self, void *closure)
{
    if (self->e_value == g_pending || self->e_value == NULL) {
        PyErr_SetString(PyExc_AttributeError,
                        "event value is not yet available");
        return NULL;
    }
    Py_INCREF(self->e_value);
    return self->e_value;
}

static PyMemberDef event_members[] = {
    {"sim", T_OBJECT, offsetof(CEvent, sim), 0, "Owning simulator."},
    {"callbacks", T_OBJECT, offsetof(CEvent, callbacks), 0,
     "Callback list; None once processed."},
    {"_value", T_OBJECT, offsetof(CEvent, e_value), 0, NULL},
    {"_ok", T_OBJECT, offsetof(CEvent, e_ok), 0, NULL},
    {"_scheduled", T_OBJECT, offsetof(CEvent, e_scheduled), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef event_getset[] = {
    {"triggered", (getter)event_get_triggered, NULL,
     "True once succeed/fail has been called.", NULL},
    {"processed", (getter)event_get_processed, NULL,
     "True once the kernel has run this event's callbacks.", NULL},
    {"ok", (getter)event_get_ok, NULL,
     "True when the event succeeded (meaningful once triggered).", NULL},
    {"value", (getter)event_get_value, NULL,
     "The success value or failure exception.", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef event_methods[] = {
    {"succeed", (PyCFunction)(void (*)(void))event_succeed,
     METH_FASTCALL | METH_KEYWORDS,
     "Trigger the event successfully, delivering ``value`` to waiters."},
    {"fail", (PyCFunction)(void (*)(void))event_fail,
     METH_FASTCALL | METH_KEYWORDS,
     "Trigger the event as failed; waiters see the exception raised."},
    {"_trigger", (PyCFunction)event_trigger, METH_VARARGS,
     "Record the one-shot outcome without enqueueing."},
    {"_run_callbacks", (PyCFunction)event_run_callbacks, METH_NOARGS,
     "Detach and invoke the callback list."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)event_dealloc,
    .tp_repr = (reprfunc)event_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled one-shot occurrence on the simulation timeline.",
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_methods = event_methods,
    .tp_members = event_members,
    .tp_getset = event_getset,
    .tp_init = (initproc)event_init,
    .tp_new = PyType_GenericNew,
};

/* ====================================================================== */
/* Heap helpers: binary heap of [when, seq, event] Python lists.           */
/* ====================================================================== */

static double
entry_when(PyObject *entry)
{
    PyObject *when = PyList_GET_ITEM(entry, 0);
    if (PyFloat_CheckExact(when)) {
        return PyFloat_AS_DOUBLE(when);
    }
    return PyFloat_AsDouble(when); /* ints; error -> -1.0 with exception */
}

/* entry a < entry b under the (time, sequence) contract. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    double aw = entry_when(a);
    double bw = entry_when(b);
    if (aw != bw) {
        return aw < bw;
    }
    long long aseq = PyLong_AsLongLong(PyList_GET_ITEM(a, 1));
    long long bseq = PyLong_AsLongLong(PyList_GET_ITEM(b, 1));
    return aseq < bseq;
}

/* heapq._siftup(heap, 0) specialised for entry lists. */
static void
heap_siftup_root(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    Py_ssize_t pos = 0;
    PyObject *item = PyList_GET_ITEM(heap, 0);
    Py_INCREF(item);
    Py_ssize_t child = 1;
    while (child < n) {
        Py_ssize_t right = child + 1;
        if (right < n &&
            !entry_lt(PyList_GET_ITEM(heap, child),
                      PyList_GET_ITEM(heap, right))) {
            child = right;
        }
        PyObject *smallest = PyList_GET_ITEM(heap, child);
        if (entry_lt(item, smallest)) {
            break;
        }
        Py_INCREF(smallest);
        PyList_SetItem(heap, pos, smallest); /* steals smallest ref */
        pos = child;
        child = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, item); /* steals item ref */
}

/* heapq.heappop(heap) -> new reference to the smallest entry. */
static PyObject *
heap_pop_entry(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1) {
        return last;
    }
    PyObject *smallest = PyList_GET_ITEM(heap, 0);
    Py_INCREF(smallest);
    PyList_SetItem(heap, 0, last); /* steals last */
    heap_siftup_root(heap);
    return smallest;
}

/* ====================================================================== */
/* The batched run loop.                                                   */
/* ====================================================================== */

/* Dispatch one popped item; exact-type C events inline, everything else
 * (subclasses, _Bootstrap/_Throw records, pure-Python events) through the
 * _run_callbacks method. */
static int
dispatch(PyObject *event)
{
    if (Py_TYPE(event) == &Event_Type) {
        return event_dispatch_inline((CEvent *)event);
    }
    PyObject *res = PyObject_CallMethodNoArgs(event, s_run_callbacks);
    if (res == NULL) {
        return -1;
    }
    Py_DECREF(res);
    return 0;
}

static int
sentinel_done(PyObject *sentinel, int sentinel_is_c)
{
    if (sentinel_is_c) {
        return ((CEvent *)sentinel)->callbacks == Py_None;
    }
    PyObject *callbacks = PyObject_GetAttr(sentinel, s_callbacks);
    if (callbacks == NULL) {
        return -1;
    }
    int done = (callbacks == Py_None);
    Py_DECREF(callbacks);
    return done;
}

/* Recycle a popped heap entry into the pool, returning its event (new
 * reference) or NULL on error. */
static PyObject *
recycle_entry(PyObject *entry, PyObject *pool)
{
    PyObject *event = PyList_GET_ITEM(entry, 2);
    Py_INCREF(event);
    Py_INCREF(Py_None);
    PyList_SetItem(entry, 2, Py_None);
    if (PyList_Append(pool, entry) < 0) {
        Py_DECREF(event);
        return NULL;
    }
    return event;
}

static int
meter_add_counter(PyObject *meter, PyObject *name, long long delta)
{
    if (delta == 0) {
        return 0;
    }
    PyObject *current = PyObject_GetAttr(meter, name);
    if (current == NULL) {
        return -1;
    }
    PyObject *incr = PyLong_FromLongLong(delta);
    if (incr == NULL) {
        Py_DECREF(current);
        return -1;
    }
    PyObject *total = PyNumber_Add(current, incr);
    Py_DECREF(current);
    Py_DECREF(incr);
    if (total == NULL) {
        return -1;
    }
    int status = PyObject_SetAttr(meter, name, total);
    Py_DECREF(total);
    return status;
}

static int
meter_add_wall(PyObject *meter, PyObject *name, double delta)
{
    PyObject *current = PyObject_GetAttr(meter, name);
    if (current == NULL) {
        return -1;
    }
    double base = PyFloat_AsDouble(current);
    Py_DECREF(current);
    if (base == -1.0 && PyErr_Occurred()) {
        return -1;
    }
    PyObject *total = PyFloat_FromDouble(base + delta);
    if (total == NULL) {
        return -1;
    }
    int status = PyObject_SetAttr(meter, name, total);
    Py_DECREF(total);
    return status;
}

/* run(sim, until, is_sentinel) — mirrors Simulator.run()'s batched loop. */
static PyObject *
ckernel_run(PyObject *module, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "run() requires (sim, until, is_sentinel)");
        return NULL;
    }
    PyObject *sim = args[0];
    PyObject *until = args[1];
    int is_sentinel = PyObject_IsTrue(args[2]);
    if (is_sentinel < 0) {
        return NULL;
    }

    PyObject *result = NULL;
    PyObject *fast_obj = NULL, *heap = NULL, *pool = NULL, *meter = NULL;
    PyObject *horizon_obj = NULL;
    long long lane = 0, heap_hits = 0;
    int failed = 0;

    fast_obj = PyObject_GetAttr(sim, s_fast);
    if (fast_obj == NULL) {
        return NULL;
    }
    if (Py_TYPE(fast_obj) != &FastLane_Type) {
        Py_DECREF(fast_obj);
        PyErr_SetString(PyExc_TypeError,
                        "_ckernel.run requires a FastLane fast lane");
        return NULL;
    }
    FastLane *fast = (FastLane *)fast_obj;
    heap = PyObject_GetAttr(sim, s_heap);
    pool = PyObject_GetAttr(sim, s_pool);
    meter = PyObject_GetAttr(sim, s_meter);
    if (heap == NULL || pool == NULL || meter == NULL) {
        failed = 1;
        goto flush;
    }
    PyObject *enabled_obj = PyObject_GetAttr(meter, s_enabled);
    if (enabled_obj == NULL) {
        failed = 1;
        goto flush;
    }
    int metered = PyObject_IsTrue(enabled_obj);
    Py_DECREF(enabled_obj);
    if (metered < 0) {
        failed = 1;
        goto flush;
    }
    double started = metered ? monotonic_seconds() : 0.0;

    /* Current clock, mirrored as a C double for heap-front compares; the
     * attribute itself stays authoritative for callbacks. */
    PyObject *now_obj = PyObject_GetAttr(sim, s_now);
    if (now_obj == NULL) {
        failed = 1;
        goto flush_timed;
    }
    double now_d = PyFloat_AsDouble(now_obj);
    Py_DECREF(now_obj);
    if (now_d == -1.0 && PyErr_Occurred()) {
        failed = 1;
        goto flush_timed;
    }

    if (is_sentinel) {
        PyObject *sentinel = until;
        int sentinel_is_c = PyObject_TypeCheck(sentinel, &Event_Type);
        for (;;) {
            int done = sentinel_done(sentinel, sentinel_is_c);
            if (done < 0) {
                failed = 1;
                goto flush_timed;
            }
            if (done) {
                break;
            }
            if (fast->count) {
                Py_ssize_t heap_n = PyList_GET_SIZE(heap);
                if (heap_n &&
                    entry_when(PyList_GET_ITEM(heap, 0)) == now_d) {
                    PyObject *entry = heap_pop_entry(heap);
                    if (entry == NULL) {
                        failed = 1;
                        goto flush_timed;
                    }
                    PyObject *event = recycle_entry(entry, pool);
                    Py_DECREF(entry);
                    if (event == NULL) {
                        failed = 1;
                        goto flush_timed;
                    }
                    heap_hits++;
                    int status = dispatch(event);
                    Py_DECREF(event);
                    if (status < 0) {
                        failed = 1;
                        goto flush_timed;
                    }
                    continue;
                }
                /* Batch drain: nothing can enter the heap at the current
                 * time while the clock holds still. */
                while (fast->count) {
                    PyObject *event = fastlane_popleft_internal(fast);
                    lane++;
                    int status = dispatch(event);
                    Py_DECREF(event);
                    if (status < 0) {
                        failed = 1;
                        goto flush_timed;
                    }
                    done = sentinel_done(sentinel, sentinel_is_c);
                    if (done < 0) {
                        failed = 1;
                        goto flush_timed;
                    }
                    if (done) {
                        break;
                    }
                }
            }
            else if (PyList_GET_SIZE(heap)) {
                PyObject *entry = heap_pop_entry(heap);
                if (entry == NULL) {
                    failed = 1;
                    goto flush_timed;
                }
                PyObject *when = PyList_GET_ITEM(entry, 0);
                if (PyObject_SetAttr(sim, s_now, when) < 0) {
                    Py_DECREF(entry);
                    failed = 1;
                    goto flush_timed;
                }
                now_d = entry_when(entry);
                PyObject *event = recycle_entry(entry, pool);
                Py_DECREF(entry);
                if (event == NULL) {
                    failed = 1;
                    goto flush_timed;
                }
                heap_hits++;
                int status = dispatch(event);
                Py_DECREF(event);
                if (status < 0) {
                    failed = 1;
                    goto flush_timed;
                }
            }
            else {
                PyErr_SetString(g_simulation_error,
                                "simulation ran out of events before the "
                                "target event triggered (deadlock?)");
                failed = 1;
                goto flush_timed;
            }
        }
        /* sentinel processed: return its value or raise its exception. */
        PyObject *ok_obj, *value_obj;
        if (sentinel_is_c) {
            ok_obj = ((CEvent *)sentinel)->e_ok;
            Py_XINCREF(ok_obj);
            value_obj = ((CEvent *)sentinel)->e_value;
            Py_XINCREF(value_obj);
        }
        else {
            ok_obj = PyObject_GetAttr(sentinel, s_ok);
            value_obj = ok_obj ? PyObject_GetAttr(sentinel, s_value) : NULL;
        }
        if (ok_obj == NULL || value_obj == NULL) {
            Py_XDECREF(ok_obj);
            Py_XDECREF(value_obj);
            failed = 1;
            goto flush_timed;
        }
        int ok = PyObject_IsTrue(ok_obj);
        Py_DECREF(ok_obj);
        if (ok < 0) {
            Py_DECREF(value_obj);
            failed = 1;
            goto flush_timed;
        }
        if (ok) {
            result = value_obj;
        }
        else {
            PyErr_SetObject(PyExceptionInstance_Class(value_obj), value_obj);
            Py_DECREF(value_obj);
            failed = 1;
        }
        goto flush_timed;
    }

    /* Horizon / run-to-empty mode. */
    double horizon;
    if (until == Py_None) {
        horizon = INFINITY;
    }
    else {
        horizon_obj = PyNumber_Float(until);
        if (horizon_obj == NULL) {
            failed = 1;
            goto flush_timed;
        }
        horizon = PyFloat_AS_DOUBLE(horizon_obj);
        if (horizon < now_d) {
            PyObject *current = PyObject_GetAttr(sim, s_now);
            if (current != NULL) {
                PyErr_Format(g_simulation_error,
                             "cannot run until t=%S: clock already at t=%S",
                             horizon_obj, current);
                Py_DECREF(current);
            }
            failed = 1;
            goto flush_timed;
        }
    }
    for (;;) {
        if (fast->count) {
            Py_ssize_t heap_n = PyList_GET_SIZE(heap);
            if (heap_n && entry_when(PyList_GET_ITEM(heap, 0)) == now_d) {
                PyObject *entry = heap_pop_entry(heap);
                if (entry == NULL) {
                    failed = 1;
                    goto flush_timed;
                }
                PyObject *event = recycle_entry(entry, pool);
                Py_DECREF(entry);
                if (event == NULL) {
                    failed = 1;
                    goto flush_timed;
                }
                heap_hits++;
                int status = dispatch(event);
                Py_DECREF(event);
                if (status < 0) {
                    failed = 1;
                    goto flush_timed;
                }
                continue;
            }
            while (fast->count) {
                PyObject *event = fastlane_popleft_internal(fast);
                lane++;
                int status = dispatch(event);
                Py_DECREF(event);
                if (status < 0) {
                    failed = 1;
                    goto flush_timed;
                }
            }
        }
        else if (PyList_GET_SIZE(heap)) {
            double when_d = entry_when(PyList_GET_ITEM(heap, 0));
            if (when_d == -1.0 && PyErr_Occurred()) {
                failed = 1;
                goto flush_timed;
            }
            if (when_d > horizon) {
                break;
            }
            PyObject *entry = heap_pop_entry(heap);
            if (entry == NULL) {
                failed = 1;
                goto flush_timed;
            }
            PyObject *when = PyList_GET_ITEM(entry, 0);
            if (PyObject_SetAttr(sim, s_now, when) < 0) {
                Py_DECREF(entry);
                failed = 1;
                goto flush_timed;
            }
            now_d = when_d;
            PyObject *event = recycle_entry(entry, pool);
            Py_DECREF(entry);
            if (event == NULL) {
                failed = 1;
                goto flush_timed;
            }
            heap_hits++;
            int status = dispatch(event);
            Py_DECREF(event);
            if (status < 0) {
                failed = 1;
                goto flush_timed;
            }
        }
        else {
            break;
        }
    }
    if (horizon_obj != NULL) {
        /* Finite horizon: advance the clock exactly to it (the float()
         * result, matching the pure loop). */
        if (PyObject_SetAttr(sim, s_now, horizon_obj) < 0) {
            failed = 1;
            goto flush_timed;
        }
    }
    result = Py_None;
    Py_INCREF(result);

flush_timed:
    if (meter != NULL) {
        /* Flush local counters exactly like the pure loop's finally. */
        PyObject *exc_type = NULL, *exc_value = NULL, *exc_tb = NULL;
        if (failed) {
            PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
        }
        int flush_failed =
            meter_add_counter(meter, s_fast_lane_hits, lane) < 0 ||
            meter_add_counter(meter, s_batched_events, lane) < 0 ||
            meter_add_counter(meter, s_heap_hits, heap_hits) < 0;
        if (!flush_failed && metered) {
            flush_failed = meter_add_wall(meter, s_kernel_flush,
                                          monotonic_seconds() - started) < 0;
        }
        if (failed) {
            if (flush_failed) {
                PyErr_Clear();
            }
            PyErr_Restore(exc_type, exc_value, exc_tb);
        }
        else if (flush_failed) {
            failed = 1;
            Py_CLEAR(result);
        }
    }
flush:
    Py_XDECREF(horizon_obj);
    Py_XDECREF(fast_obj);
    Py_XDECREF(heap);
    Py_XDECREF(pool);
    Py_XDECREF(meter);
    if (failed) {
        Py_XDECREF(result);
        return NULL;
    }
    return result;
}

/* ====================================================================== */
/* Binding + module boilerplate.                                           */
/* ====================================================================== */

static PyObject *
ckernel_bind_events(PyObject *module, PyObject *args)
{
    PyObject *pending, *already;
    if (!PyArg_ParseTuple(args, "OO:_bind_events", &pending, &already)) {
        return NULL;
    }
    Py_INCREF(pending);
    Py_XSETREF(g_pending, pending);
    Py_INCREF(already);
    Py_XSETREF(g_already_triggered, already);
    Py_RETURN_NONE;
}

static PyObject *
ckernel_bind_kernel(PyObject *module, PyObject *args)
{
    PyObject *error;
    if (!PyArg_ParseTuple(args, "O:_bind_kernel", &error)) {
        return NULL;
    }
    Py_INCREF(error);
    Py_XSETREF(g_simulation_error, error);
    Py_RETURN_NONE;
}

static PyMethodDef ckernel_methods[] = {
    {"run", (PyCFunction)(void (*)(void))ckernel_run, METH_FASTCALL,
     "run(sim, until, is_sentinel): the compiled batched dispatch loop."},
    {"_bind_events", ckernel_bind_events, METH_VARARGS,
     "Register events._PENDING and EventAlreadyTriggered."},
    {"_bind_kernel", ckernel_bind_kernel, METH_VARARGS,
     "Register kernel.SimulationError."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Compiled kernel core: FastLane, Event, batched run loop.",
    .m_size = -1,
    .m_methods = ckernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&FastLane_Type) < 0 || PyType_Ready(&Event_Type) < 0) {
        return NULL;
    }
#define INTERN(var, text)                                                   \
    do {                                                                    \
        var = PyUnicode_InternFromString(text);                             \
        if (var == NULL) {                                                  \
            return NULL;                                                    \
        }                                                                   \
    } while (0)
    INTERN(s_fast, "_fast");
    INTERN(s_heap, "_heap");
    INTERN(s_pool, "_entry_pool");
    INTERN(s_now, "_now");
    INTERN(s_meter, "meter");
    INTERN(s_enabled, "enabled");
    INTERN(s_append, "append");
    INTERN(s_callbacks, "callbacks");
    INTERN(s_run_callbacks, "_run_callbacks");
    INTERN(s_ok, "_ok");
    INTERN(s_value, "_value");
    INTERN(s_fast_lane_hits, "fast_lane_hits");
    INTERN(s_heap_hits, "heap_hits");
    INTERN(s_batched_events, "batched_events");
    INTERN(s_kernel_flush, "kernel_flush_wall_s");
#undef INTERN

    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL) {
        return NULL;
    }
    Py_INCREF(&FastLane_Type);
    if (PyModule_AddObject(module, "FastLane",
                           (PyObject *)&FastLane_Type) < 0) {
        Py_DECREF(&FastLane_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&Event_Type);
    if (PyModule_AddObject(module, "Event", (PyObject *)&Event_Type) < 0) {
        Py_DECREF(&Event_Type);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "compiled", 1) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
