"""The discrete-event simulation kernel: clock, event heap, processes.

The :class:`Simulator` owns a binary heap of ``(time, sequence, event)``
entries.  ``sequence`` is a monotonically increasing tie-breaker, which makes
same-timestamp ordering deterministic (insertion order) — a property the
reproduction relies on so every benchmark regenerates identically.

A :class:`Process` wraps a generator.  The generator yields
:class:`~repro.sim.events.Event` objects; the process resumes when the
yielded event fires, receiving ``event.value`` (or having the failure
exception thrown into it).  A process is itself an event, so processes can
wait on each other, join fan-outs with ``AllOf``, and so on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.telemetry.tracer import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class Process(Event):
    """A running coroutine on the simulation timeline.

    The process event triggers when the underlying generator returns
    (successfully, with the ``return`` value) or raises (failed, with the
    exception).  Other processes may ``yield`` a process to join it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick the process off via an immediately-scheduled event so that
        # spawn() never runs user code synchronously.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a silent no-op, mirroring the
        semantics of POSIX signal delivery to an exited task.
        """
        if self.triggered:
            return
        event = Event(self.sim)
        event.callbacks.append(lambda _e: self._throw(Interrupt(cause)))
        event.succeed(None)

    # -- internals ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process death is a result
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from whatever we were waiting on: when it eventually
            # fires it must not resume us a second time.
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target.processed:
            # The event already fired; resume on the next kernel step.  The
            # relay is tracked as ``_waiting_on`` and delivers through
            # ``_resume`` for success *and* failure, so an interrupt arriving
            # before the relay fires can detach it — otherwise the stale
            # outcome would be delivered a second time at the process's next
            # yield point.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Owner of the simulated clock and the pending-event heap.

    Parameters
    ----------
    start:
        Initial clock value (seconds).  Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._event_count = 0
        #: The telemetry sink every instrumented subsystem consults.  The
        #: shared null tracer keeps the disabled path to one attribute
        #: read per instrumented *operation* — the kernel loop itself
        #: never touches it.  Install a real one with
        #: :func:`repro.telemetry.attach_tracer`.
        self.tracer = NULL_TRACER

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the kernel has dispatched."""
        return self._event_count

    # -- event construction -----------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` succeeds."""
        return AnyOf(self, events)

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator`` and return its handle."""
        return Process(self, generator, name=name)

    # Alias familiar to SimPy users.
    process = spawn

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` as a callback at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        event = Event(self)
        event.callbacks.append(lambda _e: fn())
        event._ok = True
        event._value = None
        self._enqueue_at(when, event)
        return event

    # -- scheduling internals ----------------------------------------------

    def _enqueue_at(self, when: float, event: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, event))

    def _enqueue_triggered(self, event: Event) -> None:
        self._enqueue_at(self._now, event)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Dispatch the single earliest pending event."""
        if not self._heap:
            raise SimulationError("step() called with an empty event heap")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        self._event_count += 1
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock would pass that time (the clock is
          then advanced exactly to it);
        * an :class:`Event` — run until that event has been processed and
          return its value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the target "
                        "event triggered (deadlock?)"
                    )
                self.step()
            if sentinel.ok:
                return sentinel.value
            raise sentinel.value

        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until t={horizon}: clock already at t={self._now}"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now} pending={len(self._heap)}>"


__all__ = ["Process", "SimulationError", "Simulator"]
