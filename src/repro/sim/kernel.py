"""The discrete-event simulation kernel: clock, event heap, processes.

The :class:`Simulator` owns two pending-event structures:

* an **immediate fast lane** — a FIFO deque of items scheduled at exactly
  the current time.  Triggered events (``succeed``/``fail``), process
  bootstraps, interrupts and zero-delay timeouts all land here, which is
  the dominant case in offloading workloads; the deque avoids the heap's
  tuple allocation and sift cost entirely.
* a binary heap of ``[time, sequence, event]`` entries for future events.
  ``sequence`` is a monotonically increasing tie-breaker, which makes
  same-timestamp ordering deterministic (insertion order).

The two structures together preserve the documented ``(time, sequence)``
contract exactly: heap entries at the current timestamp were necessarily
scheduled *before* the clock arrived there (anything scheduled at the
current time goes to the fast lane instead), so they always precede the
fast lane's contents in insertion order.  ``step()`` therefore drains
same-time heap entries first, then the fast lane FIFO — byte-identical
dispatch order to a single global heap, at a fraction of the cost.

``run()`` goes one step further and dispatches the fast lane in
**batches** (O3): once the same-time heap entries are drained, nothing
can re-enter the heap at the current timestamp — ``_enqueue_at`` routes
every ``when == now`` item to the fast lane — so the whole lane can be
drained without re-checking the heap or the clock per event.  Per-event
bookkeeping (meter updates, the heap-front comparison, the clock read)
is amortised across the batch; counters accumulate in locals and flush
to the :class:`~repro.perf.meter.RuntimeMeter` when ``run()`` exits.
Dispatch order is byte-identical to the per-event loop.  See
``docs/modeling.md`` ("Performance") for the full ordering argument.

A :class:`Process` wraps a generator.  The generator yields
:class:`~repro.sim.events.Event` objects; the process resumes when the
yielded event fires, receiving ``event.value`` (or having the failure
exception thrown into it).  A process is itself an event, so processes can
wait on each other, join fan-outs with ``AllOf``, and so on.
"""

from __future__ import annotations

import heapq
from collections import deque
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

from repro.perf.meter import RuntimeMeter
from repro.sim._core import ACTIVE as _ACTIVE_CORE
from repro.sim._core import CKERNEL as _CKERNEL
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.telemetry.tracer import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


if _CKERNEL is not None:
    _CKERNEL._bind_kernel(SimulationError)
    _C_RUN = _CKERNEL.run
    _C_FAST = _CKERNEL.FastLane
else:
    _C_RUN = None
    _C_FAST = None

#: What ``Simulator.__init__`` builds the fast lane from.  The compiled
#: loop engages iff the lane is a ``FastLane`` (see ``run()``), so the
#: core choice is per-simulator state, not global mode — tests construct
#: compiled-loop simulators in-process regardless of REPRO_SIM_CORE.
_FAST_LANE_FACTORY = _C_FAST if _ACTIVE_CORE == "compiled" else deque


class _Bootstrap:
    """Fast-lane record that starts a freshly spawned process.

    Dispatches like an event (one kernel step, one ``events_processed``
    tick) but costs a single two-word allocation instead of an
    :class:`Event` plus its callback list.
    """

    __slots__ = ("process",)

    def __init__(self, process: "Process") -> None:
        self.process = process

    def _run_callbacks(self) -> None:
        self.process._start()


class _Throw:
    """Fast-lane record that delivers an exception into a process."""

    __slots__ = ("process", "exc")

    def __init__(self, process: "Process", exc: BaseException) -> None:
        self.process = process
        self.exc = exc

    def _run_callbacks(self) -> None:
        self.process._throw(self.exc)


class _ScheduledCall(Event):
    """The pre-triggered event behind :meth:`Simulator.call_at`.

    Runs its function before any externally appended callbacks, exactly
    like the callback-list ordering of the lambda it replaces — without
    allocating a closure per call.
    """

    __slots__ = ("fn",)

    def __init__(self, sim: "Simulator", fn: Callable[[], None]) -> None:
        super().__init__(sim)
        self.fn = fn

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None  # type: ignore[assignment]
        self.fn()
        for callback in callbacks:
            callback(self)


class Process(Event):
    """A running coroutine on the simulation timeline.

    The process event triggers when the underlying generator returns
    (successfully, with the ``return`` value) or raises (failed, with the
    exception).  Other processes may ``yield`` a process to join it.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick the process off via an immediately-dispatched record so that
        # spawn() never runs user code synchronously.
        sim._fast.append(_Bootstrap(self))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a silent no-op, mirroring the
        semantics of POSIX signal delivery to an exited task.
        """
        if self.triggered:
            return
        self.sim._fast.append(_Throw(self, Interrupt(cause)))

    # -- internals ----------------------------------------------------------

    def _start(self) -> None:
        """First resume: send ``None`` into the fresh generator."""
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self.generator.send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process death is a result
            self.fail(exc)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process death is a result
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            # Detach from whatever we were waiting on: when it eventually
            # fires it must not resume us a second time.
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances"
            )
        if target.processed:
            # The event already fired; resume on the next kernel step.  The
            # relay is tracked as ``_waiting_on`` and delivers through
            # ``_resume`` for success *and* failure, so an interrupt arriving
            # before the relay fires can detach it — otherwise the stale
            # outcome would be delivered a second time at the process's next
            # yield point.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target._ok:
                relay.succeed(target._value)
            else:
                relay.fail(target._value)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Owner of the simulated clock and the pending-event structures.

    Parameters
    ----------
    start:
        Initial clock value (seconds).  Defaults to ``0.0``.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_fast",
        "_sequence",
        "_entry_pool",
        "tracer",
        "meter",
    )

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[list] = []
        #: Immediate fast lane: FIFO of items scheduled at exactly
        #: ``self._now``.  Holds events plus the lightweight dispatch
        #: records (:class:`_Bootstrap`, :class:`_Throw`); everything in
        #: it responds to ``_run_callbacks``.  A ``deque`` on the pure
        #: core, a ``_ckernel.FastLane`` on the compiled core.
        self._fast = _FAST_LANE_FACTORY()
        self._sequence = 0
        #: Recycled ``[when, seq, event]`` heap entries.  Popped entries
        #: return here with their event slot cleared, so steady-state
        #: timeout traffic performs no list allocations.
        self._entry_pool: list[list] = []
        #: The telemetry sink every instrumented subsystem consults.  The
        #: shared null tracer keeps the disabled path to one attribute
        #: read per instrumented *operation* — the kernel loop itself
        #: never touches it.  Install a real one with
        #: :func:`repro.telemetry.attach_tracer`.
        self.tracer = NULL_TRACER
        #: Always-on self-metering.  The dispatch loops split the former
        #: event counter into fast-lane vs heap hits — same per-event
        #: cost (one int add on a hoisted local) — and the controller's
        #: plan path books into the same meter.  ``events_processed``
        #: reads the two lanes back; reports snapshot the whole meter.
        self.meter = RuntimeMeter()

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the kernel has dispatched."""
        meter = self.meter
        return meter.fast_lane_hits + meter.heap_hits

    # -- event construction -----------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first event in ``events`` succeeds."""
        return AnyOf(self, events)

    def spawn(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator`` and return its handle."""
        return Process(self, generator, name=name)

    # Alias familiar to SimPy users.
    process = spawn

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` as a callback at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={self._now}"
            )
        event = _ScheduledCall(self, fn)
        # Route the outcome through the shared trigger helper so that
        # ``triggered``/``processed`` semantics stay single-sourced with
        # succeed()/fail() — no hand-poked ``_ok``/``_value``.
        event._trigger(True, None)
        self._enqueue_at(when, event)
        return event

    # -- scheduling internals ----------------------------------------------

    def _enqueue_at(self, when: float, event: Event) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        now = self._now
        if when == now:
            # Immediate: the fast lane preserves insertion order, which is
            # exactly the (time, sequence) contract at the current time.
            self._fast.append(event)
            return
        if when < now:
            raise SimulationError(
                f"cannot schedule at t={when} before current time t={now}"
            )
        self._sequence += 1
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = self._sequence
            entry[2] = event
        else:
            entry = [when, self._sequence, event]
        heapq.heappush(self._heap, entry)

    def _enqueue_triggered(self, event: Event) -> None:
        """Enqueue an item that fires at the current time (fast lane).

        Callers guarantee single delivery (an event can only be triggered
        once), so no ``_scheduled`` bookkeeping is needed here.  The
        reference kernel in the differential test suite overrides this to
        route everything through one global heap.
        """
        self._fast.append(event)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Dispatch the single earliest pending event."""
        fast = self._fast
        heap = self._heap
        meter = self.meter
        if fast:
            # Same-time heap entries were scheduled before the clock
            # arrived here, so they precede everything in the fast lane.
            if heap and heap[0][0] == self._now:
                entry = heapq.heappop(heap)
                event = entry[2]
                entry[2] = None
                self._entry_pool.append(entry)
                meter.heap_hits += 1
            else:
                event = fast.popleft()
                meter.fast_lane_hits += 1
        elif heap:
            entry = heapq.heappop(heap)
            self._now = entry[0]
            event = entry[2]
            entry[2] = None
            self._entry_pool.append(entry)
            meter.heap_hits += 1
        else:
            raise SimulationError("step() called with no pending events")
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` when idle."""
        if self._fast:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock would pass that time (the clock is
          then advanced exactly to it);
        * an :class:`Event` — run until that event has been processed and
          return its value (raising its exception if it failed).

        The loop dispatches the fast lane in batches: after same-time
        heap entries drain, no new heap entry can appear at the current
        timestamp (``_enqueue_at`` routes those to the lane), so the
        whole lane is drained with one heap check and one clock read per
        batch instead of per event.  Meter counters accumulate in locals
        and flush on exit (including via exception), so mid-callback
        reads of ``events_processed`` see the pre-``run()`` value; read
        it after ``run()`` returns, or use ``step()`` which meters per
        dispatch.
        """
        if _C_RUN is not None and type(self._fast) is _C_FAST:
            # Compiled core: the C loop implements the same batched
            # dispatch, meter flush, and exception semantics.
            return _C_RUN(self, until, isinstance(until, Event))
        fast = self._fast
        heap = self._heap
        pool = self._entry_pool
        pop = heapq.heappop
        fast_pop = fast.popleft
        plain = Event
        meter = self.meter
        lane = 0  # every fast-lane dispatch in run() is part of a batch
        heap_hits = 0
        started = perf_counter() if meter.enabled else 0.0

        try:
            if isinstance(until, Event):
                sentinel = until
                while sentinel.callbacks is not None:  # not yet processed
                    if fast:
                        if heap and heap[0][0] == self._now:
                            # Same-time heap entries were scheduled before
                            # the clock arrived here: dispatch before the
                            # lane, one at a time (they may append more).
                            entry = pop(heap)
                            event = entry[2]
                            entry[2] = None
                            pool.append(entry)
                            heap_hits += 1
                            event._run_callbacks()
                            continue
                        # Batch drain: no heap entry can appear at the
                        # current time while the clock holds still.
                        while fast:
                            event = fast_pop()
                            lane += 1
                            if type(event) is plain:
                                callbacks = event.callbacks
                                event.callbacks = None
                                for callback in callbacks:
                                    callback(event)
                            else:
                                event._run_callbacks()
                            if sentinel.callbacks is None:
                                break
                    elif heap:
                        entry = pop(heap)
                        self._now = entry[0]
                        event = entry[2]
                        entry[2] = None
                        pool.append(entry)
                        heap_hits += 1
                        event._run_callbacks()
                    else:
                        raise SimulationError(
                            "simulation ran out of events before the target "
                            "event triggered (deadlock?)"
                        )
                if sentinel._ok:
                    return sentinel._value
                raise sentinel._value

            horizon = float("inf") if until is None else float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until t={horizon}: clock already at "
                    f"t={self._now}"
                )
            while True:
                if fast:
                    # Fast-lane items fire at the current time, which is
                    # always within the horizon.
                    if heap and heap[0][0] == self._now:
                        entry = pop(heap)
                        event = entry[2]
                        entry[2] = None
                        pool.append(entry)
                        heap_hits += 1
                        event._run_callbacks()
                        continue
                    while fast:
                        event = fast_pop()
                        lane += 1
                        if type(event) is plain:
                            callbacks = event.callbacks
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                        else:
                            event._run_callbacks()
                elif heap:
                    when = heap[0][0]
                    if when > horizon:
                        break
                    entry = pop(heap)
                    self._now = when
                    event = entry[2]
                    entry[2] = None
                    pool.append(entry)
                    heap_hits += 1
                    event._run_callbacks()
                else:
                    break
            if horizon != float("inf"):
                self._now = horizon
            return None
        finally:
            meter.fast_lane_hits += lane
            meter.batched_events += lane
            meter.heap_hits += heap_hits
            if meter.enabled:
                meter.kernel_flush_wall_s += perf_counter() - started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pending = len(self._fast) + len(self._heap)
        return f"<Simulator t={self._now} pending={pending}>"


__all__ = ["Process", "SimulationError", "Simulator"]
