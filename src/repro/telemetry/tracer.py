"""Span-based tracing on the simulated clock.

A :class:`Span` is one named interval of simulated time — a job's whole
lifetime, one upload, one cold start — with attributes, nested children
(via ``parent``), and instant events.  A :class:`Tracer` records spans
against a clock (anything with a ``now`` attribute, normally the
:class:`~repro.sim.kernel.Simulator`) and owns a
:class:`~repro.telemetry.registry.LabeledMetricsRegistry` that every
ended span feeds, so phase timings are queryable as labeled summaries
without re-walking the span list.

Determinism is a hard contract: span ids are sequential, attributes keep
insertion order, and nothing here reads a wall clock or draws
randomness — two same-seed runs record byte-identical traces.

The **disabled fast path** is :class:`NullTracer` (singleton
:data:`NULL_TRACER`), which every :class:`~repro.sim.kernel.Simulator`
carries by default.  Instrumented sites hoist the ``enabled`` flag::

    tracer = sim.tracer
    if tracer.enabled:
        span = tracer.start_span("upload", category=PHASE_UPLOAD)

so a run without telemetry pays one attribute read per instrumented
operation and nothing per kernel event (verified by ``bench_o1``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.registry import LabeledMetricsRegistry

#: Canonical phase categories, in the order a job experiences them.
PHASE_JOB = "job"
PHASE_PLAN = "plan"
PHASE_SCHEDULE = "schedule"
PHASE_UPLOAD = "upload"
PHASE_QUEUE = "queue"
PHASE_COLD_START = "cold_start"
PHASE_EXECUTE = "execute"
PHASE_RETRY = "retry"
PHASE_DOWNLOAD = "download"
PHASE_STAGE = "stage"
PHASE_TRANSFER = "transfer"
PHASE_FAULT = "fault"
PHASE_COMPONENT = "component"

#: Every category a tracer may emit (exporters validate against this).
ALL_CATEGORIES = (
    PHASE_JOB,
    PHASE_PLAN,
    PHASE_SCHEDULE,
    PHASE_UPLOAD,
    PHASE_QUEUE,
    PHASE_COLD_START,
    PHASE_EXECUTE,
    PHASE_RETRY,
    PHASE_DOWNLOAD,
    PHASE_STAGE,
    PHASE_TRANSFER,
    PHASE_FAULT,
    PHASE_COMPONENT,
)


class Span:
    """One named interval of simulated time.

    ``end`` is ``None`` while the span is open.  ``events`` holds
    ``(time, name, attributes)`` instants recorded inside the span.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "start",
        "end",
        "attributes",
        "events",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        start: float,
        parent_id: Optional[int] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []

    @property
    def duration(self) -> float:
        """Seconds the span covered (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        """True once the span has been ended."""
        return self.end is not None

    def annotate(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.start:.3f}..{self.end:.3f}" if self.closed else "open"
        return f"<Span #{self.span_id} {self.category}:{self.name} {state}>"


class _NullSpan:
    """The do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    category = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    closed = True
    attributes: Dict[str, Any] = {}
    events: List[Tuple[float, str, Dict[str, Any]]] = []

    def annotate(self, **attributes: Any) -> "_NullSpan":
        return self


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is a class attribute so the hot-path guard is a plain
    attribute load.  All methods accept the recording tracer's full
    signatures, so instrumentation never needs an isinstance check.
    """

    __slots__ = ()
    enabled = False

    def start_span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span: Any, **attributes: Any) -> None:
        return None

    def end_subtree(self, root: Any, **attributes: Any) -> None:
        return None

    def record_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> _NullSpan:
        return _NULL_SPAN

    def instant(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> None:
        return None

    def subscribe(self, listener: Any) -> None:
        raise RuntimeError(
            "cannot subscribe to the disabled tracer; attach a recording "
            "Tracer (attach_tracer) before attaching listeners"
        )

    @property
    def spans(self) -> List[Span]:
        return []

    @property
    def metrics(self) -> LabeledMetricsRegistry:
        # A fresh empty registry: callers may snapshot it, but nothing
        # instrumented ever writes through the null tracer.
        return LabeledMetricsRegistry()

    def __repr__(self) -> str:
        return "NULL_TRACER"


_NULL_SPAN = _NullSpan()

#: Shared disabled tracer; the default on every Simulator.
NULL_TRACER = NullTracer()


class _InstantSlot:
    """One preallocated record slot in the tracer's write ring."""

    __slots__ = ("at", "name", "parent", "attributes")

    def __init__(self) -> None:
        self.at = 0.0
        self.name = ""
        self.parent: Optional[Span] = None
        self.attributes: Optional[Dict[str, Any]] = None


#: Slots preallocated per tracer; bounds the ring's constant footprint.
_RING_CAPACITY = 512


class Tracer:
    """Records spans against a simulated clock.

    Parameters
    ----------
    clock:
        Any object with a float ``now`` attribute — normally the
        :class:`~repro.sim.kernel.Simulator` the traced world runs on.
    """

    __slots__ = (
        "clock",
        "_spans",
        "_next_id",
        "metrics",
        "_listeners",
        "_ring",
        "_ring_len",
    )

    enabled = True

    def __init__(self, clock: Any) -> None:
        self.clock = clock
        self._spans: List[Span] = []
        self._next_id = 1
        self.metrics = LabeledMetricsRegistry()
        self._listeners: List[Any] = []
        #: Zero-allocation write path (O3): listener-free ``instant()``
        #: calls write into these preallocated slots and materialise the
        #: canonical ``(time, name, attributes)`` records in bulk at the
        #: next flush point — any operation that allocates a span id or
        #: reads the trace.  The flush discipline keeps span-id order
        #: (and therefore golden traces) byte-identical to the direct
        #: path.
        self._ring: List[_InstantSlot] = [
            _InstantSlot() for _ in range(_RING_CAPACITY)
        ]
        self._ring_len = 0

    # -- listeners ---------------------------------------------------------

    def subscribe(self, listener: Any) -> None:
        """Register a listener for finished spans and instant events.

        A listener implements ``on_span_end(span)`` (called when a span
        closes via :meth:`end_span` or arrives pre-closed via
        :meth:`record_span`) and ``on_instant(at, name, attributes,
        parent)`` (called for every :meth:`instant`; ``parent`` is the
        owning span or ``None``).  Listeners are notified in subscription
        order, synchronously, on the simulated clock — they must never
        mutate the span or schedule simulator events from the callback,
        or determinism (and golden fixtures) break.
        """
        self.flush()
        self._listeners.append(listener)

    # -- ring ---------------------------------------------------------------

    def flush(self) -> None:
        """Materialise ring-buffered instants into canonical records.

        Called automatically by every operation that allocates a span id
        or reads the trace, so callers only need it when handing the raw
        ``_spans`` list to out-of-band consumers.  Idempotent and cheap
        when the ring is empty (one int compare).
        """
        count = self._ring_len
        if not count:
            return
        self._ring_len = 0
        ring = self._ring
        spans = self._spans
        for index in range(count):
            slot = ring[index]
            attributes = slot.attributes
            record = (slot.at, slot.name, {} if attributes is None else attributes)
            target = slot.parent
            # Drop references so flushed slots never pin spans or dicts.
            slot.parent = None
            slot.attributes = None
            if target is not None:
                target.events.append(record)
            else:
                # Parentless instants live on a synthetic zero-length
                # span (same shape as the direct path); ids are handed
                # out here, which the flush discipline keeps in creation
                # order.
                span = Span(self._next_id, slot.name, "", slot.at)
                self._next_id += 1
                span.end = slot.at
                span.events.append(record)
                spans.append(span)

    # -- recording ---------------------------------------------------------

    def start_span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span at the current simulated time."""
        if self._ring_len:
            self.flush()
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=self.clock.now,
            parent_id=(parent.span_id if parent is not None else None),
        )
        self._next_id += 1
        if attributes:
            span.attributes.update(attributes)
        self._spans.append(span)
        return span

    def end_span(self, span: Span, **attributes: Any) -> None:
        """Close ``span`` at the current simulated time.

        Ending an already-closed span (or the null span) is a no-op, so
        error paths may end defensively.
        """
        if span.closed or span.span_id == 0:
            return
        if self._ring_len:
            # Buffered instants on this span must land before listeners
            # (or later readers) see it closed.
            self.flush()
        span.end = self.clock.now
        if attributes:
            span.attributes.update(attributes)
        if span.category:
            self.metrics.summary(
                "span_seconds", category=span.category
            ).observe(span.duration)
        if self._listeners:
            for listener in self._listeners:
                listener.on_span_end(span)

    def end_subtree(self, root: Span, **attributes: Any) -> None:
        """End ``root`` and every still-open descendant at the current time.

        The error path of a traced operation: when a job dies mid-flight,
        whatever spans its subprocesses had open (a component, a transfer,
        a queue wait) are closed here with the failure's attributes, so no
        span leaks open and exporters see a complete trace.
        """
        if root.span_id == 0:
            return
        if self._ring_len:
            self.flush()
        parents = {span.span_id: span.parent_id for span in self._spans}

        def under_root(span: Span) -> bool:
            parent_id = span.parent_id
            while parent_id is not None:
                if parent_id == root.span_id:
                    return True
                parent_id = parents.get(parent_id)
            return False

        # Deepest-first (reverse creation order) so children close before
        # their parents.
        for span in reversed(self._spans):
            if not span.closed and under_root(span):
                self.end_span(span, **attributes)
        self.end_span(root, **attributes)

    def record_span(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Record a span with explicit times (fault windows, backfills)."""
        if end < start:
            raise ValueError(f"span end {end} precedes start {start}")
        if self._ring_len:
            self.flush()
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=start,
            parent_id=(parent.span_id if parent is not None else None),
        )
        self._next_id += 1
        span.end = end
        if attributes:
            span.attributes.update(attributes)
        self._spans.append(span)
        if category:
            self.metrics.summary("span_seconds", category=category).observe(
                end - start
            )
        if self._listeners:
            for listener in self._listeners:
                listener.on_span_end(span)
        return span

    def instant(
        self, name: str, parent: Optional[Span] = None, **attributes: Any
    ) -> None:
        """Record an instant event, attached to ``parent`` when given.

        With no listeners subscribed, the write lands in a preallocated
        ring slot — no tuples, dicts or spans are built per call — and
        materialises at the next flush point.  Listeners force the
        direct path because they observe instants synchronously.
        """
        target = parent if parent is not None and parent.span_id != 0 else None
        if not self._listeners:
            index = self._ring_len
            if index == _RING_CAPACITY:
                self.flush()
                index = 0
            slot = self._ring[index]
            slot.at = self.clock.now
            slot.name = name
            slot.parent = target
            # The kwargs dict is fresh per call (callers cannot alias
            # it), so it is stored as-is; None marks the empty case so
            # attribute-free instants write zero objects.
            slot.attributes = attributes if attributes else None
            self._ring_len = index + 1
            return
        record = (self.clock.now, name, dict(attributes))
        if target is not None:
            target.events.append(record)
        else:
            # Parentless instants live on a synthetic zero-length span so
            # exporters need only one representation.
            span = self.start_span(name, category="")
            span.end = span.start
            span.events.append(record)
        for listener in self._listeners:
            listener.on_instant(record[0], name, record[2], target)

    # -- reading -----------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All recorded spans, in creation order."""
        if self._ring_len:
            self.flush()
        return list(self._spans)

    def open_spans(self) -> List[Span]:
        """Spans not yet ended (useful for leak assertions in tests)."""
        if self._ring_len:
            self.flush()
        return [s for s in self._spans if not s.closed]

    def spans_by_category(self, category: str) -> List[Span]:
        """Recorded spans of one category, in creation order."""
        if self._ring_len:
            self.flush()
        return [s for s in self._spans if s.category == category]

    def __len__(self) -> int:
        if self._ring_len:
            self.flush()
        return len(self._spans)


def attach_tracer(env: Any, tracer: Optional[Tracer] = None) -> Tracer:
    """Install a (new) tracer on an environment's simulator.

    The tracer rides on ``env.sim.tracer``, where every instrumented
    subsystem (controller, platform, links, fault injector) looks for
    it.  Attach before planning/execution so plan spans are captured.
    """
    if tracer is None:
        tracer = Tracer(env.sim)
    env.sim.tracer = tracer
    return tracer


__all__ = [
    "ALL_CATEGORIES",
    "NULL_TRACER",
    "NullTracer",
    "PHASE_COLD_START",
    "PHASE_COMPONENT",
    "PHASE_DOWNLOAD",
    "PHASE_EXECUTE",
    "PHASE_FAULT",
    "PHASE_JOB",
    "PHASE_PLAN",
    "PHASE_QUEUE",
    "PHASE_RETRY",
    "PHASE_SCHEDULE",
    "PHASE_STAGE",
    "PHASE_TRANSFER",
    "PHASE_UPLOAD",
    "Span",
    "Tracer",
    "attach_tracer",
]
