"""Trace exporters: Chrome trace-event JSON and its loader.

The Chrome trace-event format (one ``traceEvents`` array of ``"X"``
complete-duration and ``"i"`` instant events) loads directly into
Perfetto or ``chrome://tracing``.  The exporter here adds two top-level
side channels the format permits:

* ``metadata`` — schema version, plus whatever the caller supplies
  (seed, app, CLI arguments);
* ``metrics`` — the labeled registry's stable snapshot.

Byte-identical output is part of the contract: events are ordered by
``(start, span_id)``, all keys are emitted through ``json.dumps`` with
``sort_keys=True``, and timestamps are the simulated clock (seconds →
microseconds), never the wall clock.  Two same-seed runs therefore
produce files that compare equal with ``cmp``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.tracer import Span, Tracer

#: Format version of the exported file (bump on structural change).
CHROME_TRACE_SCHEMA = 1

#: Synthetic process id; everything runs in the one simulated world.
_PID = 1


def _lane_of(span: Span, parents: Dict[int, Span]) -> int:
    """The root ancestor's span id: one Perfetto row per top-level span."""
    current = span
    while current.parent_id is not None:
        parent = parents.get(current.parent_id)
        if parent is None:  # pragma: no cover - defensive
            break
        current = parent
    return current.span_id


def to_chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Render a tracer's spans as a Chrome trace-event document."""
    parents = {span.span_id: span for span in tracer.spans}
    events: List[Dict[str, Any]] = []
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.span_id)):
        lane = _lane_of(span, parents)
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attributes)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "misc",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": _PID,
                "tid": lane,
                "args": args,
            }
        )
        for at, name, attributes in span.events:
            events.append(
                {
                    "name": name,
                    "cat": span.category or "misc",
                    "ph": "i",
                    "ts": at * 1e6,
                    "s": "t",
                    "pid": _PID,
                    "tid": lane,
                    "args": dict(attributes, span_id=span.span_id),
                }
            )
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}, trace_schema=CHROME_TRACE_SCHEMA),
        "metrics": tracer.metrics.snapshot(),
    }
    return document


def dumps_chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> str:
    """The trace document as canonical JSON text (byte-stable)."""
    return json.dumps(
        to_chrome_trace(tracer, metadata),
        sort_keys=True,
        separators=(",", ":"),
    ) + "\n"


def write_chrome_trace(
    path: Union[str, Path],
    tracer: Tracer,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the trace document to ``path``; returns the path written."""
    target = Path(path)
    target.write_text(dumps_chrome_trace(tracer, metadata), encoding="utf-8")
    return target


def load_chrome_trace(
    path: Union[str, Path],
) -> tuple[List[Span], Dict[str, Any], Dict[str, Any]]:
    """Reconstruct ``(spans, metadata, metrics)`` from an exported file.

    Only what the report needs round-trips: span identity, nesting,
    category, times, attributes and instant events.  Lane assignment is
    recomputed, not read back.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace-event file")
    spans: Dict[int, Span] = {}
    instants: List[Dict[str, Any]] = []
    for event in document["traceEvents"]:
        if event.get("ph") == "X":
            args = dict(event.get("args", {}))
            span_id = int(args.pop("span_id"))
            parent_id = args.pop("parent_id", None)
            span = Span(
                span_id=span_id,
                name=event["name"],
                category="" if event.get("cat") == "misc" else event["cat"],
                start=event["ts"] / 1e6,
                parent_id=int(parent_id) if parent_id is not None else None,
            )
            span.end = (event["ts"] + event.get("dur", 0.0)) / 1e6
            span.attributes = args
            spans[span_id] = span
        elif event.get("ph") == "i":
            instants.append(event)
    for event in instants:
        args = dict(event.get("args", {}))
        span_id = int(args.pop("span_id", 0))
        owner = spans.get(span_id)
        if owner is not None:
            owner.events.append((event["ts"] / 1e6, event["name"], args))
    ordered = sorted(spans.values(), key=lambda s: s.span_id)
    return ordered, document.get("metadata", {}), document.get("metrics", {})


__all__ = [
    "CHROME_TRACE_SCHEMA",
    "dumps_chrome_trace",
    "load_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
]
