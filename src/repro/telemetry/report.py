"""Run reports: per-phase critical-path attribution over a span trace.

The question a run report answers is the one raw metrics cannot: *which
phase paid for each job's completion time* — planning, scheduling
deferral, upload, queueing, cold start, execution, retries, download —
and *what each retry cause wasted* in dollars.

Attribution partitions every job's wall time exactly: each instant of
``[job.start, job.end]`` is assigned to the highest-precedence phase
with an active span at that instant (overhead phases outrank execution,
so a cold start masking useful work is charged as cold start), and
instants no span covers are ``idle``.  The per-job phase seconds
therefore sum to the job's makespan, and the dominant phase is simply
the largest share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.metrics.tables import Table
from repro.telemetry.tracer import (
    PHASE_COLD_START,
    PHASE_DOWNLOAD,
    PHASE_EXECUTE,
    PHASE_JOB,
    PHASE_QUEUE,
    PHASE_RETRY,
    PHASE_SCHEDULE,
    PHASE_STAGE,
    PHASE_UPLOAD,
    Span,
    Tracer,
)

#: Phases that claim time, highest precedence first.  Overheads outrank
#: execution so "the run got slower" attributes to the mechanism that
#: stretched it, not to the work it stretched around.
ATTRIBUTION_PRECEDENCE = (
    PHASE_COLD_START,
    PHASE_RETRY,
    PHASE_QUEUE,
    PHASE_UPLOAD,
    PHASE_DOWNLOAD,
    PHASE_STAGE,
    PHASE_EXECUTE,
    PHASE_SCHEDULE,
)

#: Attribution bucket for time no phase span covers.
IDLE = "idle"

#: The instant-event name retry layers emit per failed attempt.
ATTEMPT_FAILED = "attempt_failed"


@dataclass
class JobAttribution:
    """Phase breakdown of one job's completion time."""

    job_id: str
    app: str
    start: float
    end: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: cause -> (failed attempts, wasted USD) inside this job's spans.
    wasted_by_cause: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Seconds from job start to completion."""
        return self.end - self.start

    @property
    def dominant_phase(self) -> str:
        """The phase holding the largest share of the makespan."""
        if not self.phase_seconds:
            return IDLE
        return max(self.phase_seconds.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def share(self, phase: str) -> float:
        """Fraction of the makespan attributed to ``phase``."""
        if self.makespan <= 0:
            return 0.0
        return self.phase_seconds.get(phase, 0.0) / self.makespan


def _children_index(spans: Iterable[Span]) -> Dict[Optional[int], List[Span]]:
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    return index


def _descendants(root: Span, children: Dict[Optional[int], List[Span]]) -> List[Span]:
    out: List[Span] = []
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in children.get(node.span_id, ()):
            out.append(child)
            frontier.append(child)
    return out


def _attribute_interval(
    lo: float, hi: float, spans: List[Span]
) -> Dict[str, float]:
    """Partition ``[lo, hi]`` among phases by precedence sweep."""
    rank = {phase: i for i, phase in enumerate(ATTRIBUTION_PRECEDENCE)}
    intervals = [
        (max(span.start, lo), min(span.end, hi), span.category)
        for span in spans
        if span.category in rank
        and span.end is not None
        and min(span.end, hi) > max(span.start, lo)
    ]
    cuts = sorted({lo, hi, *(a for a, _b, _c in intervals), *(b for _a, b, _c in intervals)})
    out: Dict[str, float] = {}
    for a, b in zip(cuts, cuts[1:]):
        mid = (a + b) / 2.0
        active = [c for (s, e, c) in intervals if s <= mid < e]
        phase = min(active, key=lambda c: rank[c]) if active else IDLE
        out[phase] = out.get(phase, 0.0) + (b - a)
    # Elementary intervals narrower than float resolution leave phantom
    # phases (an "idle" of 1e-15 s); drop anything below a nanosecond.
    return {phase: secs for phase, secs in out.items() if secs >= 1e-9}


def attribute_job(root: Span, descendants: List[Span]) -> JobAttribution:
    """Phase attribution of one job root span and its descendants."""
    end = root.end if root.end is not None else root.start
    attribution = JobAttribution(
        job_id=str(root.attributes.get("job_id", root.span_id)),
        app=str(root.attributes.get("app", "")),
        start=root.start,
        end=end,
        phase_seconds=_attribute_interval(root.start, end, descendants),
    )
    for span in [root] + descendants:
        for _at, name, attrs in span.events:
            if name != ATTEMPT_FAILED:
                continue
            cause = str(attrs.get("cause", "unknown"))
            count, usd = attribution.wasted_by_cause.get(cause, (0, 0.0))
            attribution.wasted_by_cause[cause] = (
                count + 1,
                usd + float(attrs.get("wasted_usd", 0.0)),
            )
    return attribution


@dataclass
class RunReport:
    """The rendered-ready aggregation of one traced run."""

    jobs: List[JobAttribution]
    metadata: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def phases(self) -> List[str]:
        """Phases present in any job, in precedence order (idle last)."""
        present = {p for job in self.jobs for p in job.phase_seconds}
        ordered = [p for p in ATTRIBUTION_PRECEDENCE if p in present]
        if IDLE in present:
            ordered.append(IDLE)
        return ordered

    def phase_totals(self) -> Dict[str, float]:
        """Summed per-phase seconds across every job."""
        totals: Dict[str, float] = {}
        for job in self.jobs:
            for phase, seconds in job.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def wasted_totals(self) -> Dict[str, Tuple[int, float]]:
        """Failed attempts and wasted USD, aggregated by cause."""
        totals: Dict[str, Tuple[int, float]] = {}
        for job in self.jobs:
            for cause, (count, usd) in job.wasted_by_cause.items():
                have = totals.get(cause, (0, 0.0))
                totals[cause] = (have[0] + count, have[1] + usd)
        return totals

    # -- rendering ---------------------------------------------------------

    def attribution_table(self) -> Table:
        """Per-job table: makespan, per-phase seconds, dominant phase."""
        phases = self.phases
        table = Table(
            ["job", "app", "makespan s"]
            + [f"{p} s" for p in phases]
            + ["dominant"],
            title="Per-job phase attribution (critical-path shares)",
            precision=3,
        )
        for job in sorted(self.jobs, key=lambda j: (j.start, j.job_id)):
            table.add_row(
                job.job_id,
                job.app,
                job.makespan,
                *[job.phase_seconds.get(p, 0.0) for p in phases],
                job.dominant_phase,
            )
        return table

    def totals_table(self) -> Table:
        """Aggregate table: per-phase totals and share of all job time."""
        totals = self.phase_totals()
        grand = sum(totals.values())
        table = Table(
            ["phase", "total s", "% of job time", "jobs touched"],
            title="Phase totals across the run",
            precision=3,
        )
        for phase in self.phases:
            seconds = totals.get(phase, 0.0)
            touched = sum(
                1 for j in self.jobs if j.phase_seconds.get(phase, 0.0) > 0
            )
            table.add_row(
                phase,
                seconds,
                (100.0 * seconds / grand) if grand > 0 else math.nan,
                touched,
            )
        return table

    def wasted_table(self) -> Optional[Table]:
        """Wasted-cost table by retry cause; None when nothing failed."""
        totals = self.wasted_totals()
        if not totals:
            return None
        table = Table(
            ["retry cause", "failed attempts", "wasted $"],
            title="Wasted cost by retry cause",
            precision=6,
        )
        for cause in sorted(totals):
            count, usd = totals[cause]
            table.add_row(cause, count, usd)
        return table

    def render(self) -> str:
        """The full human-readable report."""
        parts: List[str] = []
        if self.metadata:
            meta = "  ".join(
                f"{key}={self.metadata[key]}" for key in sorted(self.metadata)
            )
            parts.append(f"trace: {meta}")
        if not self.jobs:
            parts.append("(no job spans in trace)")
        else:
            parts.append(self.attribution_table().render())
            parts.append(self.totals_table().render())
            wasted = self.wasted_table()
            if wasted is not None:
                parts.append(wasted.render())
        return "\n\n".join(parts)


def build_report(
    source: Union[Tracer, Iterable[Span]],
    metadata: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, object]] = None,
) -> RunReport:
    """Build a :class:`RunReport` from a tracer or a span list."""
    spans = source.spans if isinstance(source, Tracer) else list(source)
    children = _children_index(spans)
    jobs = [
        attribute_job(span, _descendants(span, children))
        for span in spans
        if span.category == PHASE_JOB
    ]
    jobs.sort(key=lambda j: (j.start, j.job_id))
    return RunReport(
        jobs=jobs, metadata=dict(metadata or {}), metrics=dict(metrics or {})
    )


def report_from_file(path) -> RunReport:
    """Load an exported Chrome trace and build its report."""
    from repro.telemetry.exporters import load_chrome_trace

    spans, metadata, metrics = load_chrome_trace(path)
    return build_report(spans, metadata=metadata, metrics=metrics)


__all__ = [
    "ATTRIBUTION_PRECEDENCE",
    "IDLE",
    "JobAttribution",
    "RunReport",
    "attribute_job",
    "build_report",
    "report_from_file",
]
