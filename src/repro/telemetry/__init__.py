"""Telemetry: span tracing, labeled metrics, exporters, run reports.

The observability layer of the reproduction.  A
:class:`~repro.telemetry.tracer.Tracer` attached to a simulator records
nested spans for every job's lifecycle (plan → schedule → upload →
cold start → execute → retry → download) plus fault-window annotations;
a :class:`~repro.telemetry.registry.LabeledMetricsRegistry` keeps
labeled counters/gauges/summaries alongside; exporters render Chrome
trace-event JSON (Perfetto-loadable) and Prometheus text; and
:mod:`~repro.telemetry.report` turns a trace into per-phase
critical-path attribution.

Everything is deterministic on the simulated clock — two same-seed runs
emit byte-identical trace files — and a detached (null) tracer costs one
attribute read per instrumented operation::

    from repro.telemetry import Tracer, attach_tracer, build_report

    env = Environment.build(seed=7)
    tracer = attach_tracer(env)
    ...  # plan + run a workload
    print(build_report(tracer).render())
"""

from repro.telemetry.exporters import (
    CHROME_TRACE_SCHEMA,
    dumps_chrome_trace,
    load_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.registry import LabeledMetricsRegistry
from repro.telemetry.report import (
    ATTRIBUTION_PRECEDENCE,
    JobAttribution,
    RunReport,
    build_report,
    report_from_file,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    attach_tracer,
)

__all__ = [
    "ATTRIBUTION_PRECEDENCE",
    "CHROME_TRACE_SCHEMA",
    "JobAttribution",
    "LabeledMetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunReport",
    "Span",
    "Tracer",
    "attach_tracer",
    "build_report",
    "dumps_chrome_trace",
    "load_chrome_trace",
    "report_from_file",
    "to_chrome_trace",
    "write_chrome_trace",
]
