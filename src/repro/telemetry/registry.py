"""Labeled metrics: the registry behind the telemetry layer.

:class:`~repro.metrics.collectors.MetricRegistry` keys metrics by one
dotted string, which forces label-like dimensions (app, tier, function,
fault kind) into the name.  :class:`LabeledMetricsRegistry` generalises
the same :class:`~repro.metrics.collectors.Counter` / ``Gauge`` /
``Summary`` primitives with explicit label sets, and exports two stable
formats:

* :meth:`to_prometheus` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` headers plus ``name{label="value"} 1.0``
  sample lines, families and samples sorted, label values escaped);
* :meth:`snapshot` / :meth:`to_json` — a flat, deterministically ordered
  mapping suitable for byte-identical comparison across same-seed runs.

Label values are stringified at registration; a series' identity is
``(name, sorted(labels))``, so call-site keyword order never matters.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Tuple, Union

from repro.metrics.collectors import Counter, Gauge, Summary

#: A fully qualified series key: (metric name, ((label, value), ...)).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]

_NAME_BAD_CHARS = set(" {}\"',\n\t")

#: Quantiles a Summary exports, matching MetricRegistry.snapshot's picks.
SUMMARY_QUANTILES = (0.5, 0.99)


def _series_key(name: str, labels: Mapping[str, object]) -> SeriesKey:
    if not name or _NAME_BAD_CHARS & set(name):
        raise ValueError(f"invalid metric name {name!r}")
    items = []
    for label in sorted(labels):
        if not label or _NAME_BAD_CHARS & set(label):
            raise ValueError(f"invalid label name {label!r}")
        items.append((label, str(labels[label])))
    return name, tuple(items)


def _render_series(key: SeriesKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    name, labels = key
    labels = labels + extra
    if not labels:
        return name
    body = ",".join(f'{label}="{value}"' for label, value in labels)
    return f"{name}{{{body}}}"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_prom(key: SeriesKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    name, labels = key
    labels = labels + extra
    if not labels:
        return name
    body = ",".join(
        f'{label}="{_escape_label_value(value)}"' for label, value in labels
    )
    return f"{name}{{{body}}}"


class LabeledMetricsRegistry:
    """Counters, gauges and summaries keyed by name *and* labels."""

    def __init__(self) -> None:
        self._counters: Dict[SeriesKey, Counter] = {}
        self._gauges: Dict[SeriesKey, Gauge] = {}
        self._summaries: Dict[SeriesKey, Summary] = {}

    # -- access ------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        key = _series_key(name, labels)
        series = self._counters.get(key)
        if series is None:
            series = self._counters[key] = Counter(_render_series(key))
        return series

    def gauge(self, name: str, initial: float = 0.0, **labels: object) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        key = _series_key(name, labels)
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges[key] = Gauge(_render_series(key), initial)
        return series

    def summary(self, name: str, **labels: object) -> Summary:
        """Get or create the summary series ``name{labels}``."""
        key = _series_key(name, labels)
        series = self._summaries.get(key)
        if series is None:
            series = self._summaries[key] = Summary(_render_series(key))
        return series

    def series_names(self) -> List[str]:
        """Sorted rendered names of every registered series."""
        keys = (
            list(self._counters) + list(self._gauges) + list(self._summaries)
        )
        return sorted(_render_series(key) for key in keys)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """A flat, sorted mapping of every scalar the registry holds.

        Summary series expand to ``_count`` / ``_sum`` / per-quantile
        entries.  Keys are rendered series names, sorted, so the mapping
        (and any JSON dump of it) is deterministic.
        """
        out: Dict[str, Union[int, float]] = {}
        for key, counter in self._counters.items():
            out[_render_series(key)] = counter.value
        for key, gauge in self._gauges.items():
            out[_render_series(key)] = gauge.value
        for key, summary in self._summaries.items():
            name, labels = key
            out[_render_series((f"{name}_count", labels))] = summary.count
            out[_render_series((f"{name}_sum", labels))] = summary.total
            for q in SUMMARY_QUANTILES:
                rendered = _render_series(key, extra=(("quantile", str(q)),))
                out[rendered] = summary.quantile(q)
        return dict(sorted(out.items()))

    def to_json(self, indent: int = 0) -> str:
        """The snapshot as canonical JSON text (stable across runs)."""
        return json.dumps(
            self.snapshot(),
            sort_keys=True,
            indent=indent or None,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition, grouped per metric family.

        Each family renders a ``# HELP`` and ``# TYPE`` header followed
        by its sample lines in sorted order; families themselves are
        sorted by name.  Counters render with a ``_total`` suffix per
        convention unless the name already carries one; summaries render
        quantile series plus ``_count`` and ``_sum`` samples under one
        family.  Label values are escaped (backslash, double quote,
        newline), so hostile values cannot break the line format.
        """
        families: Dict[Tuple[str, str], List[str]] = {}
        for key, counter in self._counters.items():
            name, labels = key
            if not name.endswith("_total"):
                name = f"{name}_total"
            families.setdefault((name, "counter"), []).append(
                f"{_render_prom((name, labels))} {counter.value!r}"
            )
        for key, gauge in self._gauges.items():
            name, _ = key
            families.setdefault((name, "gauge"), []).append(
                f"{_render_prom(key)} {gauge.value!r}"
            )
        for key, summary in self._summaries.items():
            name, labels = key
            samples = families.setdefault((name, "summary"), [])
            for q in SUMMARY_QUANTILES:
                rendered = _render_prom(key, extra=(("quantile", str(q)),))
                samples.append(f"{rendered} {summary.quantile(q)!r}")
            samples.append(
                f"{_render_prom((f'{name}_count', labels))} {summary.count}"
            )
            samples.append(
                f"{_render_prom((f'{name}_sum', labels))} {summary.total!r}"
            )
        lines: List[str] = []
        for name, kind in sorted(families):
            lines.append(f"# HELP {name} Simulated metric {name}.")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(sorted(families[(name, kind)]))
        return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["LabeledMetricsRegistry", "SUMMARY_QUANTILES"]
