"""The golden-trace scenario: one pinned run, rendered bit-for-bit.

The simulator's determinism contract — same seed, same schedule, same
floats — is what lets every benchmark regenerate identically and every
refactor prove itself harmless.  This module turns that contract into a
regression test: :func:`run_golden_scenario` executes a fixed end-to-end
offloading workload (optionally under a fixed fault schedule) and renders
an ordered trace of everything observable — per-job outcomes, failures,
and the full metric snapshot — with ``repr`` floats, so the smallest
numeric drift flips the digest.

Fixtures live in ``tests/golden/``; regenerate them *intentionally* with
``python tools/regen_golden.py`` after a change that is supposed to alter
behaviour, and let the diff document exactly what moved.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.apps.catalog import photo_backup_app
from repro.apps.jobs import Job
from repro.core.controller import Environment, OffloadController
from repro.faults import (
    DegradationPolicy,
    FaultKind,
    FaultSchedule,
    FaultWindow,
    inject_faults,
)
from repro.serverless.retry import RetryPolicy

#: Root seed of the golden scenario; never change it casually — every
#: fixture line depends on it.
GOLDEN_SEED = 20260805

#: Bump when the *trace format* changes (not when traced values change).
TRACE_SCHEMA = 1

_N_JOBS = 4
_INPUT_MB = 3.0
_RELEASE_SPACING_S = 90.0
_DEADLINE_SLACK_S = 600.0


def golden_fault_schedule() -> FaultSchedule:
    """The pinned fault campaign of the faulted golden variant.

    One window of every kind the injector supports, placed so each
    actually bites the workload (verified via the trace's counters): the
    zone outage spans the second job's submission, the reclaim and
    straggler windows cover the post-outage cloud executions, the
    degraded uplink squeezes an upload, the downlink outage stalls a
    result download, and the brownout fires while the device is active.
    The run exercises outage waits, hedges, reclamations, straggler
    slowdowns, and local fallbacks; outage *rejections* cannot occur
    because outage-aware backoff keeps attempts out of the dead zone.
    """
    return FaultSchedule(
        [
            FaultWindow(FaultKind.ZONE_OUTAGE, 95.0, 200.0),
            FaultWindow(
                FaultKind.LINK_DEGRADED, 30.0, 120.0, target="uplink", magnitude=0.35
            ),
            FaultWindow(FaultKind.LINK_OUTAGE, 205.0, 216.0, target="downlink"),
            FaultWindow(
                FaultKind.SANDBOX_RECLAIM, 198.0, 240.0, magnitude=0.9
            ),
            FaultWindow(FaultKind.STRAGGLER, 198.0, 320.0, magnitude=3.0),
            FaultWindow(FaultKind.BATTERY_BROWNOUT, 50.0, 51.0, magnitude=0.08),
        ]
    )


def _build_golden_env(seed: int, with_faults: bool, traced: bool):
    """The pinned environment (and optional tracer) every variant shares."""
    env = Environment.build_custom(
        seed=seed,
        uplink_bandwidth=2.0e6,
        access_latency_s=0.030,
        wan_latency_s=0.045,
    )
    tracer = None
    if traced:
        from repro.telemetry import attach_tracer

        # Before fault injection, so window annotations are captured.
        tracer = attach_tracer(env)
    if with_faults:
        inject_faults(env, golden_fault_schedule())
    return env, tracer


def _run_golden_workload(env):
    """Plan and run the pinned workload on ``env``; returns the report."""
    controller = OffloadController(
        env,
        photo_backup_app(),
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0),
        degradation=DegradationPolicy(
            outage_aware_backoff=True,
            hedge_after_s=90.0,
            fallback_local=True,
            fallback_slack_fraction=0.5,
        ),
    )
    controller.profile_offline()
    controller.plan(input_mb=_INPUT_MB)
    # Explicit job ids keep the trace independent of the process-global
    # job counter (i.e. of whatever ran earlier in the same interpreter).
    jobs = [
        Job(
            controller.app,
            input_mb=_INPUT_MB,
            released_at=_RELEASE_SPACING_S * i,
            deadline=_RELEASE_SPACING_S * i + _DEADLINE_SLACK_S,
            job_id=1000 + i,
        )
        for i in range(_N_JOBS)
    ]
    return controller.run_workload(jobs)


def run_golden_scenario(
    with_faults: bool, seed: int = GOLDEN_SEED, traced: bool = False
) -> List[str]:
    """Run the pinned scenario and return its canonical trace lines.

    With ``traced=True`` a telemetry tracer rides along and the rendered
    trace gains ``span``/``attribution``/``labeled`` lines plus the
    digest of the exported Chrome trace — so schema drift in the
    telemetry layer trips the fixture exactly like behavioural drift.
    The simulation itself must be unaffected: the standard lines of a
    traced run stay byte-identical to the untraced variant.
    """
    env, tracer = _build_golden_env(seed, with_faults, traced)
    report = _run_golden_workload(env)

    lines: List[str] = [
        f"schema={TRACE_SCHEMA} seed={seed} faults={with_faults}",
        f"sim.now={env.sim.now!r} events={env.sim.events_processed}",
    ]
    for result in report.results:
        lines.append(
            f"job id={result.job.job_id} started={result.started_at!r} "
            f"finished={result.finished_at!r} energy_j={result.ue_energy_j!r} "
            f"cost_usd={result.cloud_cost_usd!r} met={result.met_deadline}"
        )
    for failure in sorted(report.failures, key=lambda f: f.job.job_id):
        lines.append(
            f"failure id={failure.job.job_id} at={failure.failed_at!r} "
            f"error={type(failure.error).__name__}"
        )
    snapshot = env.metrics.snapshot()
    for key in sorted(snapshot):
        lines.append(f"metric {key}={snapshot[key]!r}")
    if tracer is not None:
        lines.extend(_telemetry_lines(tracer))
    return lines


def _telemetry_lines(tracer) -> List[str]:
    """Canonical lines for the telemetry side of a traced golden run."""
    from repro.telemetry import build_report, dumps_chrome_trace

    payload = dumps_chrome_trace(tracer, metadata={"scenario": "golden"})
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    lines = [f"trace spans={len(tracer)} chrome_digest={digest}"]
    for span in tracer.spans:
        lines.append(
            f"span id={span.span_id} parent={span.parent_id} "
            f"cat={span.category} name={span.name} "
            f"start={span.start!r} end={span.end!r}"
        )
    report = build_report(tracer)
    for job in report.jobs:
        phases = " ".join(
            f"{phase}={job.phase_seconds[phase]!r}"
            for phase in sorted(job.phase_seconds)
        )
        lines.append(
            f"attribution job={job.job_id} makespan={job.makespan!r} "
            f"dominant={job.dominant_phase} {phases}"
        )
    labeled = tracer.metrics.snapshot()
    for key in sorted(labeled):
        lines.append(f"labeled {key}={labeled[key]!r}")
    return lines


def trace_digest(lines: List[str]) -> str:
    """SHA-256 over the joined trace lines."""
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def monitoring_chaos_schedule() -> FaultSchedule:
    """The R1-style chaos campaign of the *monitored* scenario.

    Every golden window plus an uplink outage placed mid-upload of the
    second job, so a transfer demonstrably stalls across the dead zone
    — the signal the link-outage SLO must catch.  (The golden schedule
    itself stays pinned; the fixtures depend on it.)
    """
    windows = list(golden_fault_schedule().windows)
    windows.append(
        FaultWindow(FaultKind.LINK_OUTAGE, 92.0, 140.0, target="uplink")
    )
    return FaultSchedule(windows)


def golden_monitoring_slos():
    """The pinned SLO set of the monitored golden scenario.

    Thresholds are tuned against the pinned workload so the fault-free
    run never alerts while the chaos run trips the link-outage detector
    (an upload stalled across the uplink ``LINK_OUTAGE`` window) and
    the cold-start-spike detector (sandboxes destroyed by the
    ``SANDBOX_RECLAIM`` window) — see ``tests/test_monitor.py``.
    """
    from repro.monitor import (
        AvailabilitySLO,
        ColdStartSLO,
        CostSLO,
        LatencySLO,
    )
    from repro.monitor.monitor import KIND_LINK

    return [
        AvailabilitySLO("zone-availability", objective=0.95),
        LatencySLO(
            "link-outage",
            KIND_LINK,
            "uplink",
            threshold_s=10.0,
            objective=0.5,
            signal="throughput",
        ),
        ColdStartSLO("cold-start-spike", objective=0.7),
        CostSLO("cost-budget", usd_per_hour=1.0),
    ]


def golden_monitoring_rules():
    """Burn-rate rules sized to the pinned workload's event rates.

    The golden run emits a handful of events per minute, so the stock
    SRE windows (meant for request floods) would never clear their
    ``min_events`` gates; these keep the same two-window shape at the
    scenario's scale.
    """
    from repro.monitor import BurnRateRule

    return (
        BurnRateRule("fast", short_s=60.0, long_s=300.0, factor=2.0,
                     min_events=6, severity="page"),
        BurnRateRule("slow", short_s=300.0, long_s=1800.0, factor=1.2,
                     min_events=12, severity="ticket"),
    )


def golden_monitoring_rule_overrides():
    """Per-SLO rule overrides for the monitored golden scenario.

    Link transfers arrive once per job, so the shared ``min_events``
    gates would mask even a total uplink outage; the link SLO gets a
    sparse-series rule pair instead.
    """
    from repro.monitor import BurnRateRule

    return {
        "link-outage": (
            BurnRateRule("outage", short_s=120.0, long_s=600.0, factor=1.0,
                         min_events=1, severity="page"),
        ),
    }


def run_monitored_scenario(with_faults: bool, seed: int = GOLDEN_SEED):
    """The golden scenario with the monitoring plane riding along.

    Returns a dict with the workload summary, the canonical alert log,
    the engine's final report, and the sorted names of SLOs that fired —
    everything the determinism and alerting tests assert on.  The
    monitor is a pure observer, so the simulation is byte-identical to
    the traced golden variant.
    """
    from repro.monitor import attach_monitoring

    env, tracer = _build_golden_env(seed, with_faults=False, traced=True)
    if with_faults:
        inject_faults(env, monitoring_chaos_schedule())
    plane = attach_monitoring(
        env,
        golden_monitoring_slos(),
        rules=golden_monitoring_rules(),
        eval_interval_s=30.0,
        rule_overrides=golden_monitoring_rule_overrides(),
    )
    report = _run_golden_workload(env)
    engine = plane.engine
    engine.evaluate(env.sim.now)  # final sweep so short-lived tails clear
    return {
        "seed": seed,
        "with_faults": with_faults,
        "jobs_completed": report.jobs_completed,
        "failures": len(report.failures),
        "sim_end_s": env.sim.now,
        "alert_log": engine.alert_log(),
        "fired_slos": sorted({alert.slo for alert in engine.alerts}),
        "health": engine.health(env.sim.now),
        "report": engine.report(env.sim.now),
        "plane": plane,
        "tracer": tracer,
    }


__all__ = [
    "GOLDEN_SEED",
    "TRACE_SCHEMA",
    "golden_fault_schedule",
    "golden_monitoring_rule_overrides",
    "golden_monitoring_rules",
    "golden_monitoring_slos",
    "monitoring_chaos_schedule",
    "run_golden_scenario",
    "run_monitored_scenario",
    "trace_digest",
]
