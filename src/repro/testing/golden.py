"""The golden-trace scenario: one pinned run, rendered bit-for-bit.

The simulator's determinism contract — same seed, same schedule, same
floats — is what lets every benchmark regenerate identically and every
refactor prove itself harmless.  This module turns that contract into a
regression test: :func:`run_golden_scenario` executes a fixed end-to-end
offloading workload (optionally under a fixed fault schedule) and renders
an ordered trace of everything observable — per-job outcomes, failures,
and the full metric snapshot — with ``repr`` floats, so the smallest
numeric drift flips the digest.

Fixtures live in ``tests/golden/``; regenerate them *intentionally* with
``python tools/regen_golden.py`` after a change that is supposed to alter
behaviour, and let the diff document exactly what moved.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.apps.catalog import photo_backup_app
from repro.apps.jobs import Job
from repro.core.controller import Environment, OffloadController
from repro.faults import (
    DegradationPolicy,
    FaultKind,
    FaultSchedule,
    FaultWindow,
    inject_faults,
)
from repro.serverless.retry import RetryPolicy

#: Root seed of the golden scenario; never change it casually — every
#: fixture line depends on it.
GOLDEN_SEED = 20260805

#: Bump when the *trace format* changes (not when traced values change).
TRACE_SCHEMA = 1

_N_JOBS = 4
_INPUT_MB = 3.0
_RELEASE_SPACING_S = 90.0
_DEADLINE_SLACK_S = 600.0


def golden_fault_schedule() -> FaultSchedule:
    """The pinned fault campaign of the faulted golden variant.

    One window of every kind the injector supports, placed so each
    actually bites the workload (verified via the trace's counters): the
    zone outage spans the second job's submission, the reclaim and
    straggler windows cover the post-outage cloud executions, the
    degraded uplink squeezes an upload, the downlink outage stalls a
    result download, and the brownout fires while the device is active.
    The run exercises outage waits, hedges, reclamations, straggler
    slowdowns, and local fallbacks; outage *rejections* cannot occur
    because outage-aware backoff keeps attempts out of the dead zone.
    """
    return FaultSchedule(
        [
            FaultWindow(FaultKind.ZONE_OUTAGE, 95.0, 200.0),
            FaultWindow(
                FaultKind.LINK_DEGRADED, 30.0, 120.0, target="uplink", magnitude=0.35
            ),
            FaultWindow(FaultKind.LINK_OUTAGE, 205.0, 216.0, target="downlink"),
            FaultWindow(
                FaultKind.SANDBOX_RECLAIM, 198.0, 240.0, magnitude=0.9
            ),
            FaultWindow(FaultKind.STRAGGLER, 198.0, 320.0, magnitude=3.0),
            FaultWindow(FaultKind.BATTERY_BROWNOUT, 50.0, 51.0, magnitude=0.08),
        ]
    )


def run_golden_scenario(
    with_faults: bool, seed: int = GOLDEN_SEED
) -> List[str]:
    """Run the pinned scenario and return its canonical trace lines."""
    env = Environment.build_custom(
        seed=seed,
        uplink_bandwidth=2.0e6,
        access_latency_s=0.030,
        wan_latency_s=0.045,
    )
    if with_faults:
        inject_faults(env, golden_fault_schedule())
    controller = OffloadController(
        env,
        photo_backup_app(),
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0),
        degradation=DegradationPolicy(
            outage_aware_backoff=True,
            hedge_after_s=90.0,
            fallback_local=True,
            fallback_slack_fraction=0.5,
        ),
    )
    controller.profile_offline()
    controller.plan(input_mb=_INPUT_MB)
    # Explicit job ids keep the trace independent of the process-global
    # job counter (i.e. of whatever ran earlier in the same interpreter).
    jobs = [
        Job(
            controller.app,
            input_mb=_INPUT_MB,
            released_at=_RELEASE_SPACING_S * i,
            deadline=_RELEASE_SPACING_S * i + _DEADLINE_SLACK_S,
            job_id=1000 + i,
        )
        for i in range(_N_JOBS)
    ]
    report = controller.run_workload(jobs)

    lines: List[str] = [
        f"schema={TRACE_SCHEMA} seed={seed} faults={with_faults}",
        f"sim.now={env.sim.now!r} events={env.sim.events_processed}",
    ]
    for result in report.results:
        lines.append(
            f"job id={result.job.job_id} started={result.started_at!r} "
            f"finished={result.finished_at!r} energy_j={result.ue_energy_j!r} "
            f"cost_usd={result.cloud_cost_usd!r} met={result.met_deadline}"
        )
    for failure in sorted(report.failures, key=lambda f: f.job.job_id):
        lines.append(
            f"failure id={failure.job.job_id} at={failure.failed_at!r} "
            f"error={type(failure.error).__name__}"
        )
    snapshot = env.metrics.snapshot()
    for key in sorted(snapshot):
        lines.append(f"metric {key}={snapshot[key]!r}")
    return lines


def trace_digest(lines: List[str]) -> str:
    """SHA-256 over the joined trace lines."""
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


__all__ = [
    "GOLDEN_SEED",
    "TRACE_SCHEMA",
    "golden_fault_schedule",
    "run_golden_scenario",
    "trace_digest",
]
