"""The golden-trace scenario: one pinned run, rendered bit-for-bit.

The simulator's determinism contract — same seed, same schedule, same
floats — is what lets every benchmark regenerate identically and every
refactor prove itself harmless.  This module turns that contract into a
regression test: :func:`run_golden_scenario` executes a fixed end-to-end
offloading workload (optionally under a fixed fault schedule) and renders
an ordered trace of everything observable — per-job outcomes, failures,
and the full metric snapshot — with ``repr`` floats, so the smallest
numeric drift flips the digest.

Fixtures live in ``tests/golden/``; regenerate them *intentionally* with
``python tools/regen_golden.py`` after a change that is supposed to alter
behaviour, and let the diff document exactly what moved.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.apps.catalog import photo_backup_app
from repro.apps.jobs import Job
from repro.core.controller import Environment, OffloadController
from repro.faults import (
    DegradationPolicy,
    FaultKind,
    FaultSchedule,
    FaultWindow,
    inject_faults,
)
from repro.serverless.retry import RetryPolicy

#: Root seed of the golden scenario; never change it casually — every
#: fixture line depends on it.
GOLDEN_SEED = 20260805

#: Bump when the *trace format* changes (not when traced values change).
TRACE_SCHEMA = 1

_N_JOBS = 4
_INPUT_MB = 3.0
_RELEASE_SPACING_S = 90.0
_DEADLINE_SLACK_S = 600.0


def golden_fault_schedule() -> FaultSchedule:
    """The pinned fault campaign of the faulted golden variant.

    One window of every kind the injector supports, placed so each
    actually bites the workload (verified via the trace's counters): the
    zone outage spans the second job's submission, the reclaim and
    straggler windows cover the post-outage cloud executions, the
    degraded uplink squeezes an upload, the downlink outage stalls a
    result download, and the brownout fires while the device is active.
    The run exercises outage waits, hedges, reclamations, straggler
    slowdowns, and local fallbacks; outage *rejections* cannot occur
    because outage-aware backoff keeps attempts out of the dead zone.
    """
    return FaultSchedule(
        [
            FaultWindow(FaultKind.ZONE_OUTAGE, 95.0, 200.0),
            FaultWindow(
                FaultKind.LINK_DEGRADED, 30.0, 120.0, target="uplink", magnitude=0.35
            ),
            FaultWindow(FaultKind.LINK_OUTAGE, 205.0, 216.0, target="downlink"),
            FaultWindow(
                FaultKind.SANDBOX_RECLAIM, 198.0, 240.0, magnitude=0.9
            ),
            FaultWindow(FaultKind.STRAGGLER, 198.0, 320.0, magnitude=3.0),
            FaultWindow(FaultKind.BATTERY_BROWNOUT, 50.0, 51.0, magnitude=0.08),
        ]
    )


def run_golden_scenario(
    with_faults: bool, seed: int = GOLDEN_SEED, traced: bool = False
) -> List[str]:
    """Run the pinned scenario and return its canonical trace lines.

    With ``traced=True`` a telemetry tracer rides along and the rendered
    trace gains ``span``/``attribution``/``labeled`` lines plus the
    digest of the exported Chrome trace — so schema drift in the
    telemetry layer trips the fixture exactly like behavioural drift.
    The simulation itself must be unaffected: the standard lines of a
    traced run stay byte-identical to the untraced variant.
    """
    env = Environment.build_custom(
        seed=seed,
        uplink_bandwidth=2.0e6,
        access_latency_s=0.030,
        wan_latency_s=0.045,
    )
    tracer = None
    if traced:
        from repro.telemetry import attach_tracer

        # Before fault injection, so window annotations are captured.
        tracer = attach_tracer(env)
    if with_faults:
        inject_faults(env, golden_fault_schedule())
    controller = OffloadController(
        env,
        photo_backup_app(),
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0),
        degradation=DegradationPolicy(
            outage_aware_backoff=True,
            hedge_after_s=90.0,
            fallback_local=True,
            fallback_slack_fraction=0.5,
        ),
    )
    controller.profile_offline()
    controller.plan(input_mb=_INPUT_MB)
    # Explicit job ids keep the trace independent of the process-global
    # job counter (i.e. of whatever ran earlier in the same interpreter).
    jobs = [
        Job(
            controller.app,
            input_mb=_INPUT_MB,
            released_at=_RELEASE_SPACING_S * i,
            deadline=_RELEASE_SPACING_S * i + _DEADLINE_SLACK_S,
            job_id=1000 + i,
        )
        for i in range(_N_JOBS)
    ]
    report = controller.run_workload(jobs)

    lines: List[str] = [
        f"schema={TRACE_SCHEMA} seed={seed} faults={with_faults}",
        f"sim.now={env.sim.now!r} events={env.sim.events_processed}",
    ]
    for result in report.results:
        lines.append(
            f"job id={result.job.job_id} started={result.started_at!r} "
            f"finished={result.finished_at!r} energy_j={result.ue_energy_j!r} "
            f"cost_usd={result.cloud_cost_usd!r} met={result.met_deadline}"
        )
    for failure in sorted(report.failures, key=lambda f: f.job.job_id):
        lines.append(
            f"failure id={failure.job.job_id} at={failure.failed_at!r} "
            f"error={type(failure.error).__name__}"
        )
    snapshot = env.metrics.snapshot()
    for key in sorted(snapshot):
        lines.append(f"metric {key}={snapshot[key]!r}")
    if tracer is not None:
        lines.extend(_telemetry_lines(tracer))
    return lines


def _telemetry_lines(tracer) -> List[str]:
    """Canonical lines for the telemetry side of a traced golden run."""
    from repro.telemetry import build_report, dumps_chrome_trace

    payload = dumps_chrome_trace(tracer, metadata={"scenario": "golden"})
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    lines = [f"trace spans={len(tracer)} chrome_digest={digest}"]
    for span in tracer.spans:
        lines.append(
            f"span id={span.span_id} parent={span.parent_id} "
            f"cat={span.category} name={span.name} "
            f"start={span.start!r} end={span.end!r}"
        )
    report = build_report(tracer)
    for job in report.jobs:
        phases = " ".join(
            f"{phase}={job.phase_seconds[phase]!r}"
            for phase in sorted(job.phase_seconds)
        )
        lines.append(
            f"attribution job={job.job_id} makespan={job.makespan!r} "
            f"dominant={job.dominant_phase} {phases}"
        )
    labeled = tracer.metrics.snapshot()
    for key in sorted(labeled):
        lines.append(f"labeled {key}={labeled[key]!r}")
    return lines


def trace_digest(lines: List[str]) -> str:
    """SHA-256 over the joined trace lines."""
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


__all__ = [
    "GOLDEN_SEED",
    "TRACE_SCHEMA",
    "golden_fault_schedule",
    "run_golden_scenario",
    "trace_digest",
]
