"""Determinism and regression-test harnesses.

:mod:`repro.testing.golden` runs a pinned end-to-end scenario and renders
its full event/metric trace as canonical text, so a committed fixture can
prove that a refactor or optimisation changed *nothing* it did not mean
to — the simulator's core guarantee, locked in as a test.
"""

from repro.testing.golden import (
    GOLDEN_SEED,
    golden_fault_schedule,
    run_golden_scenario,
    trace_digest,
)

__all__ = [
    "GOLDEN_SEED",
    "golden_fault_schedule",
    "run_golden_scenario",
    "trace_digest",
]
