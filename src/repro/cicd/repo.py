"""Versioned source repository of application revisions.

A *commit* snapshots an :class:`~repro.apps.graph.AppGraph`.  The pipeline
always builds a specific commit, and rollback means redeploying the
artifacts of an earlier one — so the repository is the system of record
for what can be deployed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.graph import AppGraph


def _content_digest(app: AppGraph) -> str:
    hasher = hashlib.sha256()
    for component in app.components:
        hasher.update(
            f"{component.name}:{component.work_gcycles}:{component.work_gcycles_per_mb}"
            f":{component.offloadable}:{component.package_mb}".encode()
        )
    for flow in app.flows:
        hasher.update(
            f"{flow.src}->{flow.dst}:{flow.bytes_fixed}:{flow.bytes_per_mb}".encode()
        )
    return hasher.hexdigest()[:12]


def _revision_id(content_digest: str, parent: Optional[str], message: str) -> str:
    hasher = hashlib.sha256()
    hasher.update((parent or "root").encode())
    hasher.update(message.encode())
    hasher.update(content_digest.encode())
    return hasher.hexdigest()[:12]


@dataclass(frozen=True)
class Commit:
    """One immutable revision of the application."""

    revision: str
    app: AppGraph
    message: str
    parent: Optional[str]
    content_digest: str = ""


class SourceRepository:
    """An append-only chain of application revisions."""

    def __init__(self, name: str, initial: AppGraph, message: str = "initial") -> None:
        self.name = name
        self._commits: Dict[str, Commit] = {}
        self._order: List[str] = []
        self.commit(initial, message)

    def commit(self, app: AppGraph, message: str) -> Commit:
        """Record a new revision and return it.

        Committing content identical to the current head is a no-op
        ("nothing to commit"): the head is returned unchanged.
        """
        digest = _content_digest(app)
        if self._order:
            head = self._commits[self._order[-1]]
            if head.content_digest == digest:
                return head
        parent = self._order[-1] if self._order else None
        revision = _revision_id(digest, parent, message)
        record = Commit(
            revision=revision,
            app=app,
            message=message,
            parent=parent,
            content_digest=digest,
        )
        self._commits[revision] = record
        self._order.append(revision)
        return record

    @property
    def head(self) -> Commit:
        """The most recent commit."""
        return self._commits[self._order[-1]]

    def checkout(self, revision: str) -> Commit:
        """Fetch a specific revision."""
        if revision not in self._commits:
            raise KeyError(f"unknown revision {revision!r} in repo {self.name!r}")
        return self._commits[revision]

    def log(self) -> List[Commit]:
        """All commits, oldest first."""
        return [self._commits[r] for r in self._order]

    def __len__(self) -> int:
        return len(self._order)


__all__ = ["Commit", "SourceRepository"]
