"""The build system: revisions in, artifacts out, time charged."""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cicd.artifacts import Artifact, ArtifactRegistry
from repro.cicd.repo import Commit
from repro.sim import Event, Simulator


class BuildSystem:
    """Builds every component of a commit into registry artifacts.

    Build time is ``fixed_s`` per invocation plus ``per_mb_s`` for each
    megabyte of package across all components — the usual compile+package
    cost structure.  Unchanged components (already in the registry at the
    same revision) are skipped, modelling incremental builds.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: ArtifactRegistry,
        fixed_s: float = 30.0,
        per_mb_s: float = 0.5,
    ) -> None:
        if fixed_s < 0 or per_mb_s < 0:
            raise ValueError("build-time parameters must be >= 0")
        self.sim = sim
        self.registry = registry
        self.fixed_s = fixed_s
        self.per_mb_s = per_mb_s
        self.builds = 0

    def estimate_build_time(self, commit: Commit) -> float:
        """Planning estimate of one full (non-incremental) build."""
        total_mb = sum(c.package_mb for c in commit.app.components)
        return self.fixed_s + self.per_mb_s * total_mb

    def build(self, commit: Commit) -> Event:
        """Build a commit; process event yields the list of artifacts."""
        return self.sim.spawn(self._build_proc(commit), name=f"build.{commit.revision}")

    def _build_proc(
        self, commit: Commit
    ) -> Generator[Event, object, List[Artifact]]:
        app = commit.app
        pending = [
            component
            for component in app.components
            if not self.registry.has(app.name, component.name, commit.revision)
        ]
        duration = self.fixed_s + self.per_mb_s * sum(c.package_mb for c in pending)
        if not pending:
            duration = self.fixed_s * 0.1  # cache hit: just the orchestration
        yield self.sim.timeout(duration)
        artifacts = []
        for component in app.components:
            artifact = Artifact.build(
                app.name, component.name, commit.revision, component.package_mb
            )
            self.registry.push(artifact)
            artifacts.append(artifact)
        self.builds += 1
        return artifacts


__all__ = ["BuildSystem"]
