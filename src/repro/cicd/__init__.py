"""CI/CD substrate: repositories, builds, artifacts, deployments.

Contribution C4 integrates offloading into "a modern software deployment
process".  This package models that process on the simulation kernel:

* :class:`SourceRepository` — versioned application revisions (commits);
* :class:`BuildSystem` — turns a revision into per-component artifacts,
  charging simulated build time;
* :class:`ArtifactRegistry` — stores and serves artifacts;
* :class:`DeploymentTarget` — pushes function artifacts onto the
  serverless platform, charging per-function deployment time.

:mod:`repro.core.pipeline` composes these into the full
build→profile→partition→allocate→deploy→canary→promote pipeline.
"""

from repro.cicd.artifacts import Artifact, ArtifactRegistry
from repro.cicd.build import BuildSystem
from repro.cicd.deploy import DeploymentTarget
from repro.cicd.repo import Commit, SourceRepository

__all__ = [
    "Artifact",
    "ArtifactRegistry",
    "BuildSystem",
    "Commit",
    "DeploymentTarget",
    "SourceRepository",
]
