"""Deployment target: pushes artifacts onto the serverless platform."""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.cicd.artifacts import Artifact
from repro.serverless.function import FunctionSpec
from repro.serverless.platform import ServerlessPlatform
from repro.sim import Event, Simulator


class DeploymentTarget:
    """Adapter between registry artifacts and platform functions.

    Deploying a function charges ``fixed_s`` plus ``per_mb_s`` per
    package megabyte (upload + sandbox image build).  Deployment history
    is retained so rollback can restore an earlier revision's exact
    function set without rebuilding.
    """

    def __init__(
        self,
        sim: Simulator,
        platform: ServerlessPlatform,
        fixed_s: float = 5.0,
        per_mb_s: float = 0.2,
        namespace: str = "",
    ) -> None:
        if fixed_s < 0 or per_mb_s < 0:
            raise ValueError("deploy-time parameters must be >= 0")
        self.sim = sim
        self.platform = platform
        self.fixed_s = fixed_s
        self.per_mb_s = per_mb_s
        self.namespace = namespace
        self.deployments = 0
        #: revision -> the function specs that revision deployed
        self.history: Dict[str, List[FunctionSpec]] = {}

    def function_name(self, artifact: Artifact) -> str:
        """Platform function name of one artifact."""
        return f"{self.namespace}{artifact.app}.{artifact.component}"

    def deploy_revision(
        self,
        revision: str,
        artifacts: List[Artifact],
        memory_plan: Dict[str, float],
        parallel_fractions: Optional[Dict[str, float]] = None,
    ) -> Event:
        """Deploy the cloud-side artifacts of one revision.

        ``memory_plan`` maps component name → memory MB (only components
        in the plan are deployed — the partition decides membership).
        Process event yields the list of deployed function names.
        """
        fractions = parallel_fractions or {}
        specs = []
        for artifact in artifacts:
            if artifact.component not in memory_plan:
                continue
            specs.append(
                (
                    artifact,
                    FunctionSpec(
                        name=self.function_name(artifact),
                        memory_mb=memory_plan[artifact.component],
                        package_mb=artifact.package_mb,
                        parallel_fraction=fractions.get(artifact.component, 0.0),
                    ),
                )
            )
        return self.sim.spawn(
            self._deploy_proc(revision, specs), name=f"deploy.{revision}"
        )

    def _deploy_proc(
        self, revision: str, specs: List[Tuple[Artifact, FunctionSpec]]
    ) -> Generator[Event, object, List[str]]:
        deployed = []
        for artifact, spec in specs:
            changed = (
                not self.platform.is_deployed(spec.name)
                or self.platform.spec(spec.name) != spec
            )
            if changed:
                yield self.sim.timeout(
                    self.fixed_s + self.per_mb_s * artifact.package_mb
                )
                self.platform.deploy(spec)
                self.deployments += 1
            deployed.append(spec.name)
        self.history[revision] = [spec for _a, spec in specs]
        return deployed

    def rollback(self, revision: str) -> Event:
        """Restore the function set a previous revision deployed."""
        if revision not in self.history:
            raise KeyError(f"no deployment history for revision {revision!r}")
        specs = self.history[revision]
        return self.sim.spawn(self._rollback_proc(specs), name=f"rollback.{revision}")

    def _rollback_proc(
        self, specs: List[FunctionSpec]
    ) -> Generator[Event, object, List[str]]:
        names = []
        for spec in specs:
            changed = (
                not self.platform.is_deployed(spec.name)
                or self.platform.spec(spec.name) != spec
            )
            if changed:
                # Rollbacks reuse cached images: fixed cost only.
                yield self.sim.timeout(self.fixed_s)
                self.platform.deploy(spec)
                self.deployments += 1
            names.append(spec.name)
        return names


__all__ = ["DeploymentTarget"]
