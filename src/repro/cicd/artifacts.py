"""Build artifacts and the registry that stores them."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Artifact:
    """One deployable unit: a component packaged at a specific revision."""

    app: str
    component: str
    revision: str
    package_mb: float
    digest: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """(app, component, revision) — unique identity in a registry."""
        return (self.app, self.component, self.revision)

    @staticmethod
    def build(app: str, component: str, revision: str, package_mb: float) -> "Artifact":
        """Construct an artifact, deriving a content digest."""
        if package_mb < 0:
            raise ValueError("package size must be >= 0")
        digest = hashlib.sha256(
            f"{app}/{component}@{revision}:{package_mb}".encode()
        ).hexdigest()[:16]
        return Artifact(
            app=app,
            component=component,
            revision=revision,
            package_mb=package_mb,
            digest=digest,
        )


class ArtifactRegistry:
    """Content-addressed artifact storage.

    Pushing an identical key twice is idempotent; pushing a *different*
    digest under an existing key is rejected, mirroring immutable-tag
    registries.
    """

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self._store: Dict[Tuple[str, str, str], Artifact] = {}
        self.pushes = 0
        self.pulls = 0

    def push(self, artifact: Artifact) -> None:
        """Store an artifact (idempotent on identical content)."""
        existing = self._store.get(artifact.key)
        if existing is not None and existing.digest != artifact.digest:
            raise ValueError(
                f"digest conflict for {artifact.key}: "
                f"{existing.digest} vs {artifact.digest}"
            )
        self._store[artifact.key] = artifact
        self.pushes += 1

    def pull(self, app: str, component: str, revision: str) -> Artifact:
        """Fetch an artifact by identity."""
        key = (app, component, revision)
        if key not in self._store:
            raise KeyError(f"artifact {key} not in registry {self.name!r}")
        self.pulls += 1
        return self._store[key]

    def has(self, app: str, component: str, revision: str) -> bool:
        """True when the artifact is stored."""
        return (app, component, revision) in self._store

    def list_revision(self, app: str, revision: str) -> List[Artifact]:
        """All artifacts of one app revision, sorted by component."""
        return sorted(
            (a for a in self._store.values() if a.app == app and a.revision == revision),
            key=lambda a: a.component,
        )

    def __len__(self) -> int:
        return len(self._store)


__all__ = ["Artifact", "ArtifactRegistry"]
