"""Serverless resource allocation (contribution C2).

Serverless platforms expose exactly one performance knob per function: the
memory size, which also scales CPU.  Because billed cost is
``duration × memory`` while duration falls at most linearly (and flattens
once the function's serial fraction dominates), cost-vs-memory is
U-shaped and latency-vs-memory is L-shaped — picking the size is a real
optimisation problem (cf. AWS Lambda Power Tuning, COSE, Sizeless).

:class:`MemoryAllocator` answers the three practical questions:

* the **cheapest** size for a demand profile;
* the **fastest** size;
* the cheapest size meeting a **latency SLO** (the paper's
  non-time-critical sweet spot: an SLO loose enough that the cheapest
  size qualifies);

plus :meth:`MemoryAllocator.allocate_app` which sizes every component of a
partitioned application, and :func:`pareto_frontier` for the cost/latency
trade-off curve benchmark T1 plots.

Ablation A3 compares the default convexity-aware scan against exhaustive
and coarse-grid strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.apps.graph import AppGraph
from repro.core.demand import DemandModel
from repro.core.partitioning import Partition
from repro.serverless.billing import BillingModel
from repro.serverless.function import (
    STANDARD_MEMORY_TIERS_MB,
    FunctionSpec,
    execution_time,
)


@dataclass(frozen=True)
class AllocationDecision:
    """The sizing chosen for one function."""

    component: str
    memory_mb: float
    expected_duration_s: float
    expected_cost_usd: float
    probes: int = 0

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory must be > 0")


@dataclass(frozen=True)
class AllocationCurvePoint:
    """One (memory, duration, cost) sample of a function's trade-off curve."""

    memory_mb: float
    duration_s: float
    cost_usd: float


class MemoryAllocator:
    """Chooses memory sizes for serverless functions.

    Parameters
    ----------
    billing:
        The platform's pricing model.
    tiers_mb:
        The discrete memory sizes the platform offers.
    strategy:
        ``"scan"`` evaluates every tier (exact);
        ``"convex"`` walks tiers in increasing order and stops one step
        after cost starts rising — exact when the cost curve is unimodal
        in memory, which it is under the Amdahl duration model;
        ``"coarse"`` probes every ``coarse_stride``-th tier then refines
        around the best (the cheap heuristic real tuners use).
    """

    def __init__(
        self,
        billing: Optional[BillingModel] = None,
        tiers_mb: Sequence[float] = STANDARD_MEMORY_TIERS_MB,
        strategy: str = "scan",
        coarse_stride: int = 3,
        cost_tolerance: float = 0.02,
    ) -> None:
        if not tiers_mb:
            raise ValueError("at least one memory tier is required")
        if any(t <= 0 for t in tiers_mb):
            raise ValueError("memory tiers must be > 0")
        if strategy not in ("scan", "convex", "coarse"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if coarse_stride < 1:
            raise ValueError("coarse stride must be >= 1")
        if cost_tolerance < 0:
            raise ValueError("cost tolerance must be >= 0")
        self.billing = billing if billing is not None else BillingModel()
        self.tiers_mb = tuple(sorted(set(tiers_mb)))
        self.strategy = strategy
        self.coarse_stride = coarse_stride
        self.cost_tolerance = cost_tolerance

    # -- single-function decisions ---------------------------------------

    def curve(
        self, work_gcycles: float, parallel_fraction: float = 0.0
    ) -> List[AllocationCurvePoint]:
        """The full (memory, duration, cost) trade-off curve."""
        points = []
        for memory in self.tiers_mb:
            duration = execution_time(work_gcycles, memory, parallel_fraction)
            cost = self.billing.invocation_cost(duration, memory).total
            points.append(AllocationCurvePoint(memory, duration, cost))
        return points

    def _point(
        self, memory: float, work_gcycles: float, parallel_fraction: float
    ) -> AllocationCurvePoint:
        duration = execution_time(work_gcycles, memory, parallel_fraction)
        return AllocationCurvePoint(
            memory, duration, self.billing.invocation_cost(duration, memory).total
        )

    def cheapest(
        self,
        component: str,
        work_gcycles: float,
        parallel_fraction: float = 0.0,
        latency_slo_s: float = math.inf,
        min_memory_mb: float = 0.0,
    ) -> AllocationDecision:
        """The cheapest size whose duration meets ``latency_slo_s``.

        Implements the Lambda-Power-Tuning recommendation: under
        CPU-proportional scaling the cost of CPU-bound work is flat up to
        one full vCPU, so within the cost-minimal band (costs within
        ``cost_tolerance`` of the minimum) the *fastest* tier wins — the
        speedup is free.  ``min_memory_mb`` is the function's working-set
        floor.  Raises ``ValueError`` when no tier satisfies the SLO.
        """
        eligible = [m for m in self.tiers_mb if m >= min_memory_mb]
        if not eligible:
            raise ValueError(
                f"{component}: no memory tier >= the {min_memory_mb} MB floor"
            )

        probes = 0
        points: List[AllocationCurvePoint] = []
        if self.strategy == "scan":
            for memory in eligible:
                probes += 1
                points.append(self._point(memory, work_gcycles, parallel_fraction))
        elif self.strategy == "coarse":
            coarse = list(eligible[:: self.coarse_stride])
            if eligible[-1] not in coarse:
                coarse.append(eligible[-1])
            coarse_points = []
            for memory in coarse:
                probes += 1
                coarse_points.append(
                    self._point(memory, work_gcycles, parallel_fraction)
                )
            feasible = [p for p in coarse_points if p.duration_s <= latency_slo_s]
            pool = feasible or coarse_points
            anchor = self._select(pool, latency_slo_s).memory_mb
            idx = eligible.index(anchor)
            lo = max(idx - self.coarse_stride + 1, 0)
            hi = min(idx + self.coarse_stride, len(eligible))
            refined = {p.memory_mb: p for p in coarse_points}
            for memory in eligible[lo:hi]:
                if memory not in refined:
                    probes += 1
                    refined[memory] = self._point(
                        memory, work_gcycles, parallel_fraction
                    )
            points = list(refined.values())
        else:  # convex walk: stop once cost has clearly left the flat band
            band_floor = math.inf
            rising = 0
            feasible_seen = False
            for memory in eligible:
                probes += 1
                point = self._point(memory, work_gcycles, parallel_fraction)
                points.append(point)
                feasible_seen = feasible_seen or point.duration_s <= latency_slo_s
                band = band_floor * (1.0 + self.cost_tolerance)
                if point.cost_usd > band:
                    rising += 1
                    # Never stop before an SLO-feasible tier has appeared:
                    # a tight SLO makes the cheap small tiers infeasible
                    # and only larger (pricier) tiers qualify.
                    if rising >= 2 and feasible_seen:
                        break
                else:
                    rising = 0
                band_floor = min(band_floor, point.cost_usd)

        feasible_points = [p for p in points if p.duration_s <= latency_slo_s]
        if not feasible_points:
            fastest = self._point(eligible[-1], work_gcycles, parallel_fraction)
            raise ValueError(
                f"{component}: no memory tier meets the {latency_slo_s}s SLO "
                f"(fastest tier gives {fastest.duration_s:.3f}s)"
            )
        best = self._select(feasible_points, latency_slo_s)
        return AllocationDecision(
            component=component,
            memory_mb=best.memory_mb,
            expected_duration_s=best.duration_s,
            expected_cost_usd=best.cost_usd,
            probes=probes,
        )

    def _select(
        self, points: List[AllocationCurvePoint], latency_slo_s: float
    ) -> AllocationCurvePoint:
        """Cheapest point, breaking near-ties toward the fastest tier."""
        min_cost = min(p.cost_usd for p in points)
        band = [
            p
            for p in points
            if p.cost_usd <= min_cost * (1.0 + self.cost_tolerance) + 1e-15
        ]
        return min(band, key=lambda p: (p.duration_s, p.cost_usd, p.memory_mb))

    def fastest(
        self,
        component: str,
        work_gcycles: float,
        parallel_fraction: float = 0.0,
    ) -> AllocationDecision:
        """The duration-minimising size (ties broken toward cheaper)."""
        points = self.curve(work_gcycles, parallel_fraction)
        best = min(points, key=lambda p: (p.duration_s, p.cost_usd))
        return AllocationDecision(
            component=component,
            memory_mb=best.memory_mb,
            expected_duration_s=best.duration_s,
            expected_cost_usd=best.cost_usd,
            probes=len(points),
        )

    # -- application-level allocation ----------------------------------------

    def allocate_app(
        self,
        app: AppGraph,
        partition: Partition,
        demand: DemandModel,
        input_mb: float,
        latency_slo_s: float = math.inf,
    ) -> Dict[str, AllocationDecision]:
        """Size every cloud-side component of a partitioned application.

        The SLO, when finite, is budgeted across the cloud components in
        proportion to their single-vCPU durations — a simple, effective
        split because duration curves share their shape.
        """
        cloud_components = [
            name for name in app.component_names if partition.is_cloud(name)
        ]
        if not cloud_components:
            return {}
        demands = {
            name: demand.predict(name, input_mb) for name in cloud_components
        }
        budgets: Dict[str, float] = {}
        if math.isinf(latency_slo_s):
            budgets = {name: math.inf for name in cloud_components}
        else:
            reference = {
                name: execution_time(
                    demands[name], 1769.0, app.component(name).parallel_fraction
                )
                for name in cloud_components
            }
            total = sum(reference.values())
            for name in cloud_components:
                share = reference[name] / total if total > 0 else 1.0 / len(
                    cloud_components
                )
                budgets[name] = latency_slo_s * share
        decisions = {}
        for name in cloud_components:
            spec = app.component(name)
            decisions[name] = self.cheapest(
                component=name,
                work_gcycles=demands[name],
                parallel_fraction=spec.parallel_fraction,
                latency_slo_s=budgets[name],
                min_memory_mb=spec.min_memory_mb,
            )
        return decisions

    def function_specs(
        self,
        app: AppGraph,
        decisions: Dict[str, AllocationDecision],
        name_prefix: str = "",
    ) -> List[FunctionSpec]:
        """Materialise platform :class:`FunctionSpec`\\ s from decisions."""
        specs = []
        for component_name, decision in sorted(decisions.items()):
            component = app.component(component_name)
            specs.append(
                FunctionSpec(
                    name=f"{name_prefix}{app.name}.{component_name}",
                    memory_mb=decision.memory_mb,
                    package_mb=component.package_mb,
                    parallel_fraction=component.parallel_fraction,
                )
            )
        return specs


def pareto_frontier(
    points: Iterable[AllocationCurvePoint],
) -> List[AllocationCurvePoint]:
    """The non-dominated (duration, cost) subset, sorted by duration."""
    pool = sorted(points, key=lambda p: (p.duration_s, p.cost_usd))
    frontier: List[AllocationCurvePoint] = []
    best_cost = math.inf
    for point in pool:
        if point.cost_usd < best_cost - 1e-15:
            frontier.append(point)
            best_cost = point.cost_usd
    return frontier


__all__ = [
    "AllocationCurvePoint",
    "AllocationDecision",
    "MemoryAllocator",
    "pareto_frontier",
]
