"""Code partitioning between UE and cloud (contribution C3).

A *partition* assigns every component of an application graph to the UE or
to the serverless cloud, respecting pinned (non-offloadable) components.
The quality of a partition is scored on three axes — end-to-end latency,
UE energy, and cloud cost — combined through :class:`ObjectiveWeights`.

Two latency models coexist, as in the MAUI/CloneCloud lineage:

* the **serialized** model (components execute one after another; cut
  edges add their transfer time) is *separable* — a sum of per-node and
  per-edge terms — which makes exact optimisation tractable:
  :class:`MinCutPartitioner` solves it optimally for arbitrary graphs via
  a max-flow reduction, and :class:`TreeDPPartitioner` via dynamic
  programming on trees;
* the **makespan** model (DAG critical path with parallel execution) is
  what :func:`evaluate_partition` reports for honesty, and what
  :class:`ExhaustivePartitioner` can optimise directly on small graphs.

The serialized model is exact for linear pipelines and conservative
(an upper bound) elsewhere — the right bias for deadline-sensitive
planning.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import networkx as nx

from repro.apps.graph import AppGraph
from repro.device.energy import EnergyModel
from repro.serverless.billing import BillingModel
from repro.serverless.function import execution_time
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class ObjectiveWeights:
    """Relative importance of the three objective axes.

    Units: ``latency_weight`` per second, ``energy_weight`` per joule,
    ``cost_weight`` per USD.  The non-time-critical presets down-weight
    latency dramatically — that is the paper's central lever.
    """

    latency_weight: float = 1.0
    energy_weight: float = 0.1
    cost_weight: float = 100.0

    def __post_init__(self) -> None:
        if min(self.latency_weight, self.energy_weight, self.cost_weight) < 0:
            raise ValueError("objective weights must be >= 0")

    @staticmethod
    def interactive() -> "ObjectiveWeights":
        """A user is waiting: latency dominates."""
        return ObjectiveWeights(latency_weight=10.0, energy_weight=0.5, cost_weight=10.0)

    @staticmethod
    def non_time_critical() -> "ObjectiveWeights":
        """Nobody is waiting: minimise energy and dollars, not seconds."""
        return ObjectiveWeights(latency_weight=0.01, energy_weight=1.0, cost_weight=1000.0)

    def combine(self, latency_s: float, energy_j: float, cost_usd: float) -> float:
        """Scalarise one (latency, energy, cost) triple."""
        return (
            self.latency_weight * latency_s
            + self.energy_weight * energy_j
            + self.cost_weight * cost_usd
        )


@dataclass(frozen=True)
class Partition:
    """An assignment of components: ``cloud`` names run remotely."""

    app_name: str
    cloud: FrozenSet[str]

    @staticmethod
    def local_only(app: AppGraph) -> "Partition":
        """Everything stays on the UE."""
        return Partition(app.name, frozenset())

    @staticmethod
    def full_offload(app: AppGraph) -> "Partition":
        """Every offloadable component goes to the cloud."""
        return Partition(app.name, frozenset(app.offloadable_names()))

    def is_cloud(self, component: str) -> bool:
        """True when ``component`` is assigned to the cloud."""
        return component in self.cloud

    def validate(self, app: AppGraph) -> None:
        """Raise when the assignment is inconsistent with the graph."""
        unknown = self.cloud - set(app.component_names)
        if unknown:
            raise ValueError(f"partition references unknown components {sorted(unknown)}")
        pinned = self.cloud & set(app.pinned_names())
        if pinned:
            raise ValueError(
                f"partition offloads non-offloadable components {sorted(pinned)}"
            )

    def moved(self, component: str) -> "Partition":
        """A copy with one component's side flipped."""
        if component in self.cloud:
            return Partition(self.app_name, self.cloud - {component})
        return Partition(self.app_name, self.cloud | {component})


@dataclass(frozen=True)
class PartitionContext:
    """Everything needed to price a partition.

    ``work`` holds the (predicted) per-component demand in gigacycles —
    the output of :mod:`repro.core.demand`.  ``memory_plan`` gives the
    memory size each component would run at in the cloud — the output of
    :mod:`repro.core.allocation` (defaults apply otherwise).
    """

    app: AppGraph
    input_mb: float
    work: Dict[str, float]
    ue_cycles_per_second: float = 1.2e9
    energy: EnergyModel = EnergyModel()
    billing: BillingModel = BillingModel()
    memory_plan: Dict[str, float] = field(default_factory=dict)
    default_memory_mb: float = 1769.0
    uplink_bps: float = 1.25e6  # 10 Mbit/s
    uplink_latency_s: float = 0.065
    downlink_bps: float = 5.0e6
    downlink_latency_s: float = 0.065
    include_idle_energy: bool = True
    #: USD per GB leaving the cloud (cloud→UE edges); intra-cloud and
    #: uplink ingress are free, as on real providers — which keeps the
    #: objective separable and the min-cut reduction exact.
    egress_price_per_gb: float = 0.0
    weights: ObjectiveWeights = ObjectiveWeights()

    def __post_init__(self) -> None:
        missing = set(self.app.component_names) - set(self.work)
        if missing:
            raise ValueError(f"work estimates missing for {sorted(missing)}")
        if self.ue_cycles_per_second <= 0:
            raise ValueError("UE speed must be > 0")
        if min(self.uplink_bps, self.downlink_bps) <= 0:
            raise ValueError("link rates must be > 0")

    # -- per-node terms --------------------------------------------------

    def memory_for(self, component: str) -> float:
        """Planned cloud memory size of one component."""
        return self.memory_plan.get(component, self.default_memory_mb)

    def local_duration(self, component: str) -> float:
        """Seconds on one UE core."""
        return self.work[component] * 1e9 / self.ue_cycles_per_second

    def cloud_duration(self, component: str) -> float:
        """Seconds on the serverless platform at the planned memory."""
        spec = self.app.component(component)
        return execution_time(
            self.work[component],
            self.memory_for(component),
            spec.parallel_fraction,
        )

    def local_energy(self, component: str) -> float:
        """Joules the UE burns computing this component locally."""
        return self.energy.compute_energy(self.local_duration(component))

    def cloud_cost(self, component: str) -> float:
        """USD for one cloud invocation of this component."""
        return self.billing.invocation_cost(
            self.cloud_duration(component), self.memory_for(component)
        ).total

    # -- per-edge terms ----------------------------------------------------

    def uplink_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` UE → cloud."""
        return self.uplink_latency_s + nbytes / self.uplink_bps

    def downlink_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` cloud → UE."""
        return self.downlink_latency_s + nbytes / self.downlink_bps

    def edge_transfer(self, src: str, dst: str, src_cloud: bool, dst_cloud: bool
                      ) -> Tuple[float, float]:
        """(seconds, joules) for one edge given endpoint placements.

        Same-side edges are free: local IPC and intra-cloud traffic are
        orders of magnitude cheaper than the access link (documented
        simplification shared with the MAUI cost model).
        """
        if src_cloud == dst_cloud:
            return 0.0, 0.0
        nbytes = self.app.flow(src, dst).bytes_for(self.input_mb)
        if not src_cloud and dst_cloud:
            seconds = self.uplink_time(nbytes)
            return seconds, self.energy.transmit_energy(seconds)
        seconds = self.downlink_time(nbytes)
        return seconds, self.energy.receive_energy(seconds)

    def edge_money(self, src: str, dst: str, src_cloud: bool, dst_cloud: bool) -> float:
        """USD charged for one edge: egress on cloud→local, else free."""
        if src_cloud and not dst_cloud and self.egress_price_per_gb > 0:
            nbytes = self.app.flow(src, dst).bytes_for(self.input_mb)
            return nbytes / 1e9 * self.egress_price_per_gb
        return 0.0


@dataclass(frozen=True)
class PartitionEvaluation:
    """The priced outcome of one partition."""

    partition: Partition
    serialized_latency_s: float
    makespan_s: float
    ue_energy_j: float
    cloud_cost_usd: float
    objective: float

    def dominates(self, other: "PartitionEvaluation") -> bool:
        """Pareto dominance on (makespan, energy, cost)."""
        at_least = (
            self.makespan_s <= other.makespan_s
            and self.ue_energy_j <= other.ue_energy_j
            and self.cloud_cost_usd <= other.cloud_cost_usd
        )
        strictly = (
            self.makespan_s < other.makespan_s
            or self.ue_energy_j < other.ue_energy_j
            or self.cloud_cost_usd < other.cloud_cost_usd
        )
        return at_least and strictly


def evaluate_partition(
    ctx: PartitionContext, partition: Partition
) -> PartitionEvaluation:
    """Price a partition under both latency models.

    The returned ``objective`` scalarises the *serialized* latency (the
    quantity the exact partitioners optimise) with energy and cost.
    """
    partition.validate(ctx.app)
    app = ctx.app

    serialized = 0.0
    energy = 0.0
    cost = 0.0
    node_duration: Dict[str, float] = {}
    for name in app.component_names:
        on_cloud = partition.is_cloud(name)
        duration = ctx.cloud_duration(name) if on_cloud else ctx.local_duration(name)
        node_duration[name] = duration
        serialized += duration
        if on_cloud:
            cost += ctx.cloud_cost(name)
            if ctx.include_idle_energy:
                energy += ctx.energy.idle_energy(duration)
        else:
            energy += ctx.local_energy(name)

    edge_delay: Dict[Tuple[str, str], float] = {}
    for flow in app.flows:
        src_cloud = partition.is_cloud(flow.src)
        dst_cloud = partition.is_cloud(flow.dst)
        seconds, joules = ctx.edge_transfer(
            flow.src, flow.dst, src_cloud, dst_cloud
        )
        edge_delay[(flow.src, flow.dst)] = seconds
        serialized += seconds
        energy += joules
        cost += ctx.edge_money(flow.src, flow.dst, src_cloud, dst_cloud)

    # DAG critical path (parallel execution of independent components).
    finish: Dict[str, float] = {}
    for name in app.component_names:  # already topological
        ready = 0.0
        for pred in app.predecessors(name):
            ready = max(ready, finish[pred] + edge_delay[(pred, name)])
        finish[name] = ready + node_duration[name]
    makespan = max(finish.values()) if finish else 0.0

    objective = ctx.weights.combine(serialized, energy, cost)
    return PartitionEvaluation(
        partition=partition,
        serialized_latency_s=serialized,
        makespan_s=makespan,
        ue_energy_j=energy,
        cloud_cost_usd=cost,
        objective=objective,
    )


class Partitioner(ABC):
    """Interface: produce the best partition for a context."""

    name: str = "partitioner"

    @abstractmethod
    def partition(self, ctx: PartitionContext) -> Partition:
        """Compute an assignment for ``ctx`` (pinned components respected)."""

    def evaluate(self, ctx: PartitionContext) -> PartitionEvaluation:
        """Partition and price in one call."""
        return evaluate_partition(ctx, self.partition(ctx))


def _node_costs(ctx: PartitionContext, name: str) -> Tuple[float, float]:
    """(cost-if-local, cost-if-cloud) of one node under the weights."""
    weights = ctx.weights
    dur_local = ctx.local_duration(name)
    local = weights.latency_weight * dur_local + weights.energy_weight * ctx.local_energy(name)
    dur_cloud = ctx.cloud_duration(name)
    cloud = (
        weights.latency_weight * dur_cloud
        + weights.cost_weight * ctx.cloud_cost(name)
    )
    if ctx.include_idle_energy:
        cloud += weights.energy_weight * ctx.energy.idle_energy(dur_cloud)
    return local, cloud


def _edge_costs(ctx: PartitionContext, src: str, dst: str) -> Tuple[float, float]:
    """(cost if src local/dst cloud, cost if src cloud/dst local)."""
    weights = ctx.weights
    up_s, up_j = ctx.edge_transfer(src, dst, False, True)
    down_s, down_j = ctx.edge_transfer(src, dst, True, False)
    up = weights.latency_weight * up_s + weights.energy_weight * up_j
    down = (
        weights.latency_weight * down_s
        + weights.energy_weight * down_j
        + weights.cost_weight * ctx.edge_money(src, dst, True, False)
    )
    return up, down


class ExhaustivePartitioner(Partitioner):
    """Enumerates every feasible assignment; the ground-truth optimum.

    ``use_makespan=True`` optimises the full DAG-makespan objective
    instead of the serialized one.  Limited to ``max_offloadable``
    components to keep 2^n enumeration honest.
    """

    name = "exhaustive"

    def __init__(self, use_makespan: bool = False, max_offloadable: int = 18) -> None:
        self.use_makespan = use_makespan
        self.max_offloadable = max_offloadable

    def partition(self, ctx: PartitionContext) -> Partition:
        offloadable = ctx.app.offloadable_names()
        if len(offloadable) > self.max_offloadable:
            raise ValueError(
                f"{len(offloadable)} offloadable components exceed the "
                f"exhaustive limit of {self.max_offloadable}"
            )
        best: Optional[Partition] = None
        best_score = math.inf
        for r in range(len(offloadable) + 1):
            for subset in itertools.combinations(offloadable, r):
                candidate = Partition(ctx.app.name, frozenset(subset))
                evaluation = evaluate_partition(ctx, candidate)
                if self.use_makespan:
                    score = ctx.weights.combine(
                        evaluation.makespan_s,
                        evaluation.ue_energy_j,
                        evaluation.cloud_cost_usd,
                    )
                else:
                    score = evaluation.objective
                if score < best_score - 1e-12:
                    best_score = score
                    best = candidate
        assert best is not None
        return best


class GreedyPartitioner(Partitioner):
    """Hill climbing over single-component moves.

    Starts from both trivial partitions (local-only and full-offload),
    repeatedly applies the best single flip, and returns the better of
    the two local optima.  Fast and, on the graph families tested in
    ablation A1, within a few percent of the exact optimum.
    """

    name = "greedy"

    def __init__(self, max_iterations: int = 10_000) -> None:
        self.max_iterations = max_iterations

    def partition(self, ctx: PartitionContext) -> Partition:
        candidates = [
            self._climb(ctx, Partition.local_only(ctx.app)),
            self._climb(ctx, Partition.full_offload(ctx.app)),
        ]
        return min(
            candidates, key=lambda p: evaluate_partition(ctx, p).objective
        )

    def _climb(self, ctx: PartitionContext, start: Partition) -> Partition:
        current = start
        current_score = evaluate_partition(ctx, current).objective
        offloadable = ctx.app.offloadable_names()
        for _ in range(self.max_iterations):
            best_move: Optional[Partition] = None
            best_score = current_score
            for name in offloadable:
                candidate = current.moved(name)
                score = evaluate_partition(ctx, candidate).objective
                if score < best_score - 1e-12:
                    best_score = score
                    best_move = candidate
            if best_move is None:
                return current
            current, current_score = best_move, best_score
        return current


class MinCutPartitioner(Partitioner):
    """Exact optimiser of the serialized objective via min s-t cut.

    The serialized objective is a sum of per-node terms (cost of the
    chosen side) and per-edge terms (paid only when an edge is cut), which
    is precisely the energy form solvable by a single max-flow: nodes on
    the source side run locally, nodes on the sink side run in the cloud.
    Pinned components get an infinite-capacity edge to the source.

    This is the MAUI formulation generalised to three objective axes.

    Capacities are scaled to integers before the max-flow runs: with
    float capacities, networkx derives the node partition from residual
    reachability without any tolerance, and accumulated rounding can
    yield a partition whose cost exceeds the (correctly computed) cut
    value.  Integer arithmetic makes the residual graph exact; the
    scaling keeps ~12 significant digits of the original costs.
    """

    name = "mincut"

    #: Integer scale target: the largest finite capacity maps to ~1e14.
    _SCALE_TARGET = 1e14

    def partition(self, ctx: PartitionContext) -> Partition:
        graph = nx.DiGraph()
        source, sink = "__ue__", "__cloud__"
        # A capacity safely above any finite sum of costs acts as infinity.
        ceiling = 1.0
        for name in ctx.app.component_names:
            local, cloud = _node_costs(ctx, name)
            ceiling += local + cloud
        for flow in ctx.app.flows:
            up, down = _edge_costs(ctx, flow.src, flow.dst)
            ceiling += up + down
        infinite = ceiling * 10
        scale = self._SCALE_TARGET / infinite

        def capacity(value: float) -> int:
            return int(round(value * scale))

        for name in ctx.app.component_names:
            local_cost, cloud_cost = _node_costs(ctx, name)
            if not ctx.app.component(name).offloadable:
                cloud_cost = infinite
            # The convention: capacity(s->v) is paid when v lands on the
            # sink (cloud) side, so it carries the cloud cost; v->t is paid
            # when v stays on the source (local) side.
            graph.add_edge(source, name, capacity=capacity(cloud_cost))
            graph.add_edge(name, sink, capacity=capacity(local_cost))

        for flow in ctx.app.flows:
            up, down = _edge_costs(ctx, flow.src, flow.dst)
            # src local / dst cloud pays `up`: that cut separates src (source
            # side) from dst (sink side) across edge src->dst.
            graph.add_edge(flow.src, flow.dst, capacity=capacity(up))
            graph.add_edge(flow.dst, flow.src, capacity=capacity(down))

        _value, (source_side, sink_side) = nx.minimum_cut(graph, source, sink)
        cloud = frozenset(n for n in sink_side if n not in (source, sink))
        partition = Partition(ctx.app.name, cloud)
        partition.validate(ctx.app)
        return partition


class TreeDPPartitioner(Partitioner):
    """Exact optimiser of the serialized objective on tree-shaped apps.

    Classic two-state dynamic programming over the undirected tree: for
    each component, the optimal cost of its subtree given its own side.
    Runs in O(n) and matches :class:`MinCutPartitioner` exactly — ablation
    A1 asserts this — while demonstrating the structure most partitioned
    applications actually have (pipelines with light branching).

    Raises ``ValueError`` on non-tree graphs.
    """

    name = "treedp"

    def partition(self, ctx: PartitionContext) -> Partition:
        if not ctx.app.is_tree():
            raise ValueError(
                f"app {ctx.app.name!r} is not a tree; use MinCutPartitioner"
            )
        undirected = nx.Graph()
        undirected.add_nodes_from(ctx.app.component_names)
        directed_edges = {}
        for flow in ctx.app.flows:
            undirected.add_edge(flow.src, flow.dst)
            directed_edges[(flow.src, flow.dst)] = flow

        root = ctx.app.component_names[0]
        # cost[v] = (best subtree cost with v local, with v cloud)
        cost: Dict[str, Tuple[float, float]] = {}
        parent: Dict[str, Optional[str]] = {root: None}
        order: List[str] = []
        stack = [root]
        seen = {root}
        while stack:
            node = stack.pop()
            order.append(node)
            for neighbour in sorted(undirected.neighbors(node)):
                if neighbour not in seen:
                    seen.add(neighbour)
                    parent[neighbour] = node
                    stack.append(neighbour)

        def cut_cost(a: str, b: str, a_cloud: bool) -> float:
            """Objective cost of edge {a, b} when a and b are on
            different sides and ``a_cloud`` gives a's side."""
            if (a, b) in directed_edges:
                up, down = _edge_costs(ctx, a, b)
                return down if a_cloud else up
            up, down = _edge_costs(ctx, b, a)
            return up if a_cloud else down

        for node in reversed(order):
            local_cost, cloud_cost = _node_costs(ctx, node)
            if not ctx.app.component(node).offloadable:
                cloud_cost = math.inf
            best_local, best_cloud = local_cost, cloud_cost
            for child in sorted(undirected.neighbors(node)):
                if parent.get(child) != node:
                    continue
                child_local, child_cloud = cost[child]
                best_local += min(
                    child_local, child_cloud + cut_cost(node, child, False)
                )
                best_cloud += min(
                    child_cloud, child_local + cut_cost(node, child, True)
                )
            cost[node] = (best_local, best_cloud)

        # Reconstruct assignments top-down.
        cloud_set = set()
        assignment: Dict[str, bool] = {}
        root_local, root_cloud = cost[root]
        assignment[root] = root_cloud < root_local
        for node in order:
            if node == root:
                continue
            parent_cloud = assignment[parent[node]]  # type: ignore[index]
            node_local, node_cloud = cost[node]
            stay_cost = node_cloud if parent_cloud else node_local
            move_cost = (node_local if parent_cloud else node_cloud) + cut_cost(
                parent[node], node, parent_cloud  # type: ignore[arg-type]
            )
            assignment[node] = parent_cloud if stay_cost <= move_cost else not parent_cloud
        for node, on_cloud in assignment.items():
            if on_cloud:
                cloud_set.add(node)
        partition = Partition(ctx.app.name, frozenset(cloud_set))
        partition.validate(ctx.app)
        return partition


class SimulatedAnnealingPartitioner(Partitioner):
    """Direct optimisation of the DAG-*makespan* objective.

    The exact partitioners optimise the separable serialized proxy; on
    graphs with real parallelism (wide fan-outs) the proxy can prefer
    cuts that serialize well but parallelise poorly.  This partitioner
    anneals over single-component flips scoring the true makespan-based
    objective.  Randomised but reproducible via the supplied stream;
    seeded from the min-cut solution so it never does worse than the
    proxy optimum (the final answer is the best-seen state).
    """

    name = "annealing"

    def __init__(
        self,
        rng: "RngStream",
        iterations: int = 2000,
        initial_temperature: float = 1.0,
        cooling: float = 0.995,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if initial_temperature <= 0:
            raise ValueError("initial temperature must be > 0")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.rng = rng
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    @staticmethod
    def _score(ctx: PartitionContext, partition: Partition) -> float:
        evaluation = evaluate_partition(ctx, partition)
        return ctx.weights.combine(
            evaluation.makespan_s,
            evaluation.ue_energy_j,
            evaluation.cloud_cost_usd,
        )

    def partition(self, ctx: PartitionContext) -> Partition:
        offloadable = ctx.app.offloadable_names()
        current = MinCutPartitioner().partition(ctx)
        current_score = self._score(ctx, current)
        best, best_score = current, current_score
        if not offloadable:
            return best

        temperature = self.initial_temperature * max(current_score, 1e-9)
        for _ in range(self.iterations):
            candidate = current.moved(
                offloadable[self.rng.integer(0, len(offloadable))]
            )
            candidate_score = self._score(ctx, candidate)
            delta = candidate_score - current_score
            if delta <= 0 or self.rng.bernoulli(
                math.exp(-delta / max(temperature, 1e-12))
            ):
                current, current_score = candidate, candidate_score
                if current_score < best_score:
                    best, best_score = current, current_score
            temperature *= self.cooling
        return best


class FixedPartitioner(Partitioner):
    """Returns a predetermined partition (used for baselines and canaries)."""

    name = "fixed"

    def __init__(self, partition: Partition) -> None:
        self._partition = partition

    def partition(self, ctx: PartitionContext) -> Partition:
        self._partition.validate(ctx.app)
        return self._partition


def pareto_front(
    evaluations: Iterable[PartitionEvaluation],
) -> List[PartitionEvaluation]:
    """Filter evaluations down to the (makespan, energy, cost) Pareto set."""
    pool = list(evaluations)
    return [
        e
        for e in pool
        if not any(other.dominates(e) for other in pool)
    ]


__all__ = [
    "ExhaustivePartitioner",
    "FixedPartitioner",
    "GreedyPartitioner",
    "MinCutPartitioner",
    "ObjectiveWeights",
    "Partition",
    "PartitionContext",
    "PartitionEvaluation",
    "Partitioner",
    "SimulatedAnnealingPartitioner",
    "TreeDPPartitioner",
    "evaluate_partition",
    "pareto_front",
]
