"""Delay-tolerant scheduling (contribution C5).

The defining property of the paper's target workloads is *slack*: nobody
is waiting on the result, so a job released now with a deadline hours away
may be dispatched whenever that is cheapest — as long as it still finishes
in time.  A :class:`Scheduler` maps each released job to a dispatch time
(and a priority for contended local resources):

* :class:`EagerScheduler` — dispatch immediately; the time-critical
  baseline every framework defaults to.
* :class:`EdfScheduler` — dispatch immediately, served earliest-deadline-
  first; the classical real-time baseline.
* :class:`DeadlineBatcher` — align dispatches on window boundaries so
  jobs arrive at the platform together, amortising cold starts and
  keeping instances warm, while never starting later than the job's
  *latest safe start* (deadline minus a safety-padded completion
  estimate).
* :class:`CostWindowScheduler` — additionally scan the slack interval for
  the cheapest dispatch instant under a time-varying price/bandwidth
  signal (off-peak uplink, spot-style pricing).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from repro.apps.jobs import Job


@dataclass(frozen=True)
class ScheduleDecision:
    """When (and how urgently) to dispatch one job."""

    job_id: int
    dispatch_at: float
    priority: float = 0.0
    latest_safe_start: float = math.inf

    def __post_init__(self) -> None:
        if math.isnan(self.dispatch_at):
            raise ValueError("dispatch time must be a number")


class Scheduler(ABC):
    """Interface: decide the dispatch time of each released job.

    ``estimate_completion_s`` is the planner's prediction of the job's
    full response time once dispatched (makespan including transfers) —
    supplied by the controller from the current partition and allocation.
    """

    name: str = "scheduler"

    #: Multiplier applied to the completion estimate before computing the
    #: latest safe start; absorbs estimation error and queueing.
    safety_factor: float = 1.5

    def latest_safe_start(self, job: Job, estimate_completion_s: float) -> float:
        """Latest dispatch time that still (predictably) meets the deadline."""
        if math.isinf(job.deadline):
            return math.inf
        return job.deadline - self.safety_factor * estimate_completion_s

    @abstractmethod
    def decide(
        self, job: Job, now: float, estimate_completion_s: float
    ) -> ScheduleDecision:
        """Schedule one job released at ``now``."""

    def _clamp(self, job: Job, now: float, target: float, estimate: float
               ) -> ScheduleDecision:
        """Clamp a desired dispatch time into [now, latest-safe-start]."""
        latest = self.latest_safe_start(job, estimate)
        dispatch = min(target, latest)
        dispatch = max(dispatch, now)
        return ScheduleDecision(
            job_id=job.job_id,
            dispatch_at=dispatch,
            priority=job.deadline,
            latest_safe_start=latest,
        )


class EagerScheduler(Scheduler):
    """Dispatch the instant a job is released (FIFO priority)."""

    name = "eager"

    def decide(
        self, job: Job, now: float, estimate_completion_s: float
    ) -> ScheduleDecision:
        return ScheduleDecision(
            job_id=job.job_id,
            dispatch_at=now,
            priority=now,  # FIFO
            latest_safe_start=self.latest_safe_start(job, estimate_completion_s),
        )


class EdfScheduler(Scheduler):
    """Dispatch immediately; contended resources serve earliest deadline first."""

    name = "edf"

    def decide(
        self, job: Job, now: float, estimate_completion_s: float
    ) -> ScheduleDecision:
        return ScheduleDecision(
            job_id=job.job_id,
            dispatch_at=now,
            priority=job.deadline,
            latest_safe_start=self.latest_safe_start(job, estimate_completion_s),
        )


class DeadlineBatcher(Scheduler):
    """Defer dispatches to window boundaries, bounded by deadline safety.

    Jobs released anywhere inside one window all dispatch at its end, so
    they hit the platform together: the first pays a cold start, the rest
    land on warm instances (or freshly warm pools).  A job whose slack
    cannot tolerate the full deferral dispatches at its latest safe start
    instead — and immediately if even that has passed.
    """

    name = "batcher"

    def __init__(self, window_s: float = 300.0, safety_factor: float = 1.5) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be > 0, got {window_s}")
        if safety_factor < 1.0:
            raise ValueError("safety factor must be >= 1")
        self.window_s = window_s
        self.safety_factor = safety_factor

    def decide(
        self, job: Job, now: float, estimate_completion_s: float
    ) -> ScheduleDecision:
        boundary = math.floor(now / self.window_s + 1.0) * self.window_s
        return self._clamp(job, now, boundary, estimate_completion_s)


class CostWindowScheduler(Scheduler):
    """Dispatch at the cheapest instant inside the job's slack.

    ``price_fn(t)`` is any time-varying cost signal — an electricity or
    spot-price curve, or the reciprocal of predicted uplink bandwidth
    (transfers are cheaper in energy and time when the link is fast).
    The slack interval is sampled every ``resolution_s`` and the earliest
    minimising instant wins.
    """

    name = "costwindow"

    def __init__(
        self,
        price_fn: Callable[[float], float],
        resolution_s: float = 300.0,
        safety_factor: float = 1.5,
        max_samples: int = 2000,
    ) -> None:
        if resolution_s <= 0:
            raise ValueError("resolution must be > 0")
        if safety_factor < 1.0:
            raise ValueError("safety factor must be >= 1")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.price_fn = price_fn
        self.resolution_s = resolution_s
        self.safety_factor = safety_factor
        self.max_samples = max_samples

    def decide(
        self, job: Job, now: float, estimate_completion_s: float
    ) -> ScheduleDecision:
        latest = self.latest_safe_start(job, estimate_completion_s)
        horizon = min(latest, now + self.resolution_s * self.max_samples)
        if math.isinf(horizon):
            # Unbounded slack: scan one diurnal period.
            horizon = now + 86_400.0
        if horizon <= now:
            return self._clamp(job, now, now, estimate_completion_s)
        best_t = now
        best_price = self.price_fn(now)
        t = now
        while t < horizon:
            t = min(t + self.resolution_s, horizon)
            price = self.price_fn(t)
            if price < best_price - 1e-12:
                best_price = price
                best_t = t
        return self._clamp(job, now, best_t, estimate_completion_s)


class BatteryAwareScheduler(Scheduler):
    """Defers maximally while the device battery is low.

    Radio transmission is the most power-hungry UE activity, so a job
    released on a low battery should wait: the user may reach a charger
    within the slack.  When the battery fraction (read through
    ``battery_fraction_fn``, typically ``lambda: ue.battery_fraction``)
    is below ``threshold``, the job is pushed to its latest safe start;
    otherwise the wrapped inner scheduler decides.
    """

    name = "battery"

    def __init__(
        self,
        battery_fraction_fn: Callable[[], float],
        inner: Optional[Scheduler] = None,
        threshold: float = 0.2,
        safety_factor: float = 1.5,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if safety_factor < 1.0:
            raise ValueError("safety factor must be >= 1")
        self.battery_fraction_fn = battery_fraction_fn
        self.inner = inner if inner is not None else EagerScheduler()
        self.threshold = threshold
        self.safety_factor = safety_factor

    def decide(
        self, job: Job, now: float, estimate_completion_s: float
    ) -> ScheduleDecision:
        if self.battery_fraction_fn() < self.threshold:
            latest = self.latest_safe_start(job, estimate_completion_s)
            if math.isinf(latest):
                # No deadline to anchor on: hold for a conservative grace
                # period rather than forever.
                latest = now + 4 * 3600.0
            return self._clamp(job, now, latest, estimate_completion_s)
        return self.inner.decide(job, now, estimate_completion_s)


__all__ = [
    "BatteryAwareScheduler",
    "CostWindowScheduler",
    "DeadlineBatcher",
    "EagerScheduler",
    "EdfScheduler",
    "ScheduleDecision",
    "Scheduler",
]
