"""Workflow-orchestrated job execution.

The :class:`~repro.core.controller.OffloadController` coordinates every
cloud invocation from the UE, which keeps the device awake-idle for the
whole cloud episode.  When the partition is *phase-shaped* — local
prologue → one contiguous cloud region → local epilogue, the shape every
catalog application's optimal cut has — the cloud region can instead be
handed to a server-side :class:`~repro.serverless.workflow.WorkflowEngine`
in one shot.  The device then **deep-sleeps** until the workflow's
completion push arrives, trading orchestration fees (state transitions)
for coordinator energy.

:func:`is_phase_shaped` tests the precondition;
:class:`WorkflowOffloadRunner` executes jobs in the three phases.
Ablation A6 quantifies the trade against the controller.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.apps.graph import AppGraph
from repro.apps.jobs import Job, JobResult
from repro.core.controller import ControllerReport, Environment, JobFailure
from repro.core.partitioning import Partition
from repro.serverless.function import FunctionSpec
from repro.serverless.retry import RetryPolicy
from repro.serverless.workflow import (
    WorkflowDefinition,
    WorkflowEngine,
    WorkflowStep,
)
from repro.sim import Event


def is_phase_shaped(app: AppGraph, partition: Partition) -> bool:
    """True when no local component sits *between* cloud components.

    Formally: no local component has both a cloud ancestor and a cloud
    descendant.  Under that condition the cloud side can run as one
    uninterrupted server-side workflow.
    """
    partition.validate(app)
    has_cloud_ancestor: Dict[str, bool] = {}
    for name in app.component_names:  # topological
        has_cloud_ancestor[name] = any(
            partition.is_cloud(p) or has_cloud_ancestor[p]
            for p in app.predecessors(name)
        )
    has_cloud_descendant: Dict[str, bool] = {}
    for name in reversed(app.component_names):
        has_cloud_descendant[name] = any(
            partition.is_cloud(s) or has_cloud_descendant[s]
            for s in app.successors(name)
        )
    for name in app.component_names:
        if partition.is_cloud(name):
            continue
        if has_cloud_ancestor[name] and has_cloud_descendant[name]:
            return False
    return True


class WorkflowOffloadRunner:
    """Executes jobs as local-prologue → cloud workflow → local-epilogue.

    The runner deploys one function per cloud component (at the supplied
    memory plan) and registers a workflow over the cloud sub-DAG.  During
    the workflow the UE deep-sleeps; cut-edge data still moves over the
    radio before and after.
    """

    def __init__(
        self,
        env: Environment,
        app: AppGraph,
        partition: Partition,
        memory_plan: Optional[Dict[str, float]] = None,
        engine: Optional[WorkflowEngine] = None,
        retry_policy: Optional[RetryPolicy] = None,
        function_prefix: str = "wf.",
    ) -> None:
        if not is_phase_shaped(app, partition):
            raise ValueError(
                f"partition of {app.name!r} is not phase-shaped; "
                "use OffloadController instead"
            )
        self.env = env
        self.app = app
        self.partition = partition
        self.function_prefix = function_prefix
        self.engine = engine or WorkflowEngine(
            env.sim,
            env.platform,
            retry_policy=retry_policy,
            rng=env.rng.stream(f"workflow.{app.name}"),
        )
        self._exec_rng = env.rng.stream(f"wfrunner.{app.name}.exec")

        memory_plan = memory_plan or {}
        self.cloud_components = [
            n for n in app.component_names if partition.is_cloud(n)
        ]
        for name in self.cloud_components:
            component = app.component(name)
            env.platform.deploy(
                FunctionSpec(
                    name=self._function_name(name),
                    memory_mb=memory_plan.get(name, 1769.0),
                    package_mb=component.package_mb,
                    parallel_fraction=component.parallel_fraction,
                )
            )
        self.definition: Optional[WorkflowDefinition] = None
        if self.cloud_components:
            self.definition = WorkflowDefinition(
                f"{app.name}.cloudside",
                [
                    WorkflowStep(
                        name=name,
                        function=self._function_name(name),
                        depends_on=tuple(
                            p
                            for p in app.predecessors(name)
                            if partition.is_cloud(p)
                        ),
                    )
                    for name in self.cloud_components
                ],
            )

    def _function_name(self, component: str) -> str:
        return f"{self.function_prefix}{self.app.name}.{component}"

    # -- execution ---------------------------------------------------------

    def submit(self, job: Job) -> Event:
        """Execute one job; the process event yields a JobResult."""
        if job.app.name != self.app.name:
            raise ValueError("job belongs to a different application")
        return self.env.sim.spawn(
            self._job_proc(job), name=f"wfjob{job.job_id}"
        )

    def _local_phase(
        self,
        job: Job,
        members: List[str],
        finish_times: Dict[str, float],
    ) -> Generator[Event, Any, float]:
        """Run a set of local components respecting their mutual edges.

        Returns the energy spent.  (Edges to/from the cloud phase are
        handled by the caller.)"""
        sim = self.env.sim
        energy = 0.0
        done: Dict[str, Event] = {name: sim.event() for name in members}
        member_set = set(members)

        def component_proc(name: str) -> Generator[Event, Any, None]:
            nonlocal energy
            upstream = [
                done[p] for p in self.app.predecessors(name) if p in member_set
            ]
            if upstream:
                yield sim.all_of(upstream)
            actual = self.env.actual_work(
                job.component_work(name), self._exec_rng
            )
            execution = yield self.env.ue.execute(actual)
            energy += execution.energy_j
            finish_times[name] = sim.now
            done[name].succeed(None)

        processes = [
            sim.spawn(component_proc(name), name=f"wf.local.{name}")
            for name in members
        ]
        if processes:
            yield sim.all_of(processes)
        return energy

    def _job_proc(self, job: Job) -> Generator[Event, Any, JobResult]:
        sim = self.env.sim
        started = sim.now
        app = self.app
        partition = self.partition
        energy_model = self.env.ue.spec.energy
        energy_j = 0.0
        energy_breakdown: Dict[str, float] = {}
        cost_usd = 0.0
        finish_times: Dict[str, float] = {}

        def charge(kind: str, joules: float) -> None:
            nonlocal energy_j
            energy_j += joules
            energy_breakdown[kind] = energy_breakdown.get(kind, 0.0) + joules

        cloud = set(self.cloud_components)
        prologue = [
            n
            for n in app.component_names
            if n not in cloud
            and not any(p in cloud for p in self._ancestors(n))
        ]
        epilogue = [
            n for n in app.component_names if n not in cloud and n not in prologue
        ]

        charge(
            "compute",
            (yield from self._local_phase(job, prologue, finish_times)),
        )

        if self.definition is not None:
            # Upload every cut edge into the cloud region.
            for flow in app.flows:
                if flow.src in set(prologue) and flow.dst in cloud:
                    nbytes = job.flow_bytes(flow.src, flow.dst)
                    result = yield self.env.ue.transmit(nbytes, self.env.uplink)
                    charge(
                        "tx",
                        energy_model.transmit_energy(result.radio_seconds),
                    )

            # Hand off and deep-sleep until the completion push.
            work = {
                name: self.env.actual_work(
                    job.component_work(name), self._exec_rng
                )
                for name in self.cloud_components
            }
            sleep_start = sim.now
            execution = yield self.engine.run(self.definition, work)
            charge(
                "sleep",
                energy_model.deep_sleep_energy(sim.now - sleep_start),
            )
            cost_usd += execution.total_cost_usd
            for name, invocation in execution.invocations.items():
                finish_times[name] = invocation.finished_at

            # Pull every cut edge back out.
            for flow in app.flows:
                if flow.src in cloud and flow.dst in set(epilogue):
                    nbytes = job.flow_bytes(flow.src, flow.dst)
                    result = yield self.env.ue.receive(nbytes, self.env.downlink)
                    charge(
                        "rx",
                        energy_model.receive_energy(result.radio_seconds),
                    )

        charge(
            "compute",
            (yield from self._local_phase(job, epilogue, finish_times)),
        )

        return JobResult(
            job=job,
            started_at=started,
            finished_at=sim.now,
            ue_energy_j=energy_j,
            cloud_cost_usd=cost_usd,
            component_finish_times=finish_times,
            energy_breakdown=energy_breakdown,
        )

    def _ancestors(self, name: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = list(self.app.predecessors(name))
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self.app.predecessors(node))
        return seen

    def run_workload(self, jobs: List[Job]) -> ControllerReport:
        """Release each job at its ``released_at`` and run to completion."""
        report = ControllerReport()
        sim = self.env.sim

        def release(job: Job) -> Generator[Event, Any, None]:
            if job.released_at > sim.now:
                yield sim.timeout(job.released_at - sim.now)
            try:
                result = yield self.submit(job)
            except BaseException as error:  # noqa: BLE001 - recorded
                report.failures.append(JobFailure(job, sim.now, error))
            else:
                report.results.append(result)

        drivers = [sim.spawn(release(job)) for job in jobs]
        sim.run(until=sim.all_of(drivers))
        report.results.sort(key=lambda r: r.finished_at)
        return report


__all__ = ["WorkflowOffloadRunner", "is_phase_shaped"]
