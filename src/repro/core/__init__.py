"""The paper's primary contribution: serverless offloading for
non-time-critical applications.

The core package wires four mechanisms, one per contribution in the
abstract:

* :mod:`repro.core.demand` — determining computational demands (C1);
* :mod:`repro.core.allocation` — allocating serverless resources (C2);
* :mod:`repro.core.partitioning` — partitioning code between UE and
  cloud (C3);
* :mod:`repro.core.pipeline` — integration into a CI/CD deployment
  process (C4);
* :mod:`repro.core.scheduler` — exploiting non-time-criticality (C5);
* :mod:`repro.core.controller` — the end-to-end runtime combining all of
  the above over the simulated substrates.
"""

from repro.core.allocation import (
    AllocationDecision,
    MemoryAllocator,
    pareto_frontier,
)
from repro.core.controller import ControllerReport, Environment, OffloadController
from repro.core.demand import (
    BayesianLinearEstimator,
    DemandEstimator,
    DemandModel,
    DemandProfile,
    EwmaEstimator,
    MeanEstimator,
    QuantileEstimator,
    RegressionEstimator,
    StaticEstimator,
)
from repro.core.partitioning import (
    ExhaustivePartitioner,
    GreedyPartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
    Partitioner,
    TreeDPPartitioner,
    evaluate_partition,
)
from repro.core.pipeline import (
    OffloadPipeline,
    PipelineConfig,
    PipelineRun,
    StageResult,
)
from repro.core.scheduler import (
    BatteryAwareScheduler,
    CostWindowScheduler,
    DeadlineBatcher,
    EagerScheduler,
    EdfScheduler,
    Scheduler,
)
from repro.core.workflow_runner import WorkflowOffloadRunner, is_phase_shaped

__all__ = [
    "AllocationDecision",
    "BatteryAwareScheduler",
    "BayesianLinearEstimator",
    "ControllerReport",
    "CostWindowScheduler",
    "DeadlineBatcher",
    "DemandEstimator",
    "DemandModel",
    "DemandProfile",
    "EagerScheduler",
    "EdfScheduler",
    "Environment",
    "EwmaEstimator",
    "ExhaustivePartitioner",
    "GreedyPartitioner",
    "MeanEstimator",
    "MemoryAllocator",
    "MinCutPartitioner",
    "ObjectiveWeights",
    "OffloadController",
    "OffloadPipeline",
    "Partition",
    "PartitionContext",
    "Partitioner",
    "PipelineConfig",
    "PipelineRun",
    "QuantileEstimator",
    "RegressionEstimator",
    "Scheduler",
    "StageResult",
    "StaticEstimator",
    "TreeDPPartitioner",
    "WorkflowOffloadRunner",
    "evaluate_partition",
    "is_phase_shaped",
    "pareto_frontier",
]
