"""CI/CD integration of offloading (contribution C4).

:class:`OffloadPipeline` runs the full modern deployment flow with the
offloading decisions embedded as first-class pipeline stages::

    checkout → build → test → profile → partition → allocate
             → deploy-canary → canary-run → promote | abandon

Profiling happens in CI (fresh demand model per revision), the partition
and allocation are computed from those measurements, the plan is deployed
into a *canary* namespace, a small canary workload is driven through it,
and promotion to production is gated on the canary's cost/latency not
regressing beyond a threshold against the last promoted revision —
catching demand regressions (benchmark T4 injects one) before users see
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.apps.graph import AppGraph
from repro.apps.jobs import Job
from repro.cicd.artifacts import Artifact, ArtifactRegistry
from repro.cicd.build import BuildSystem
from repro.cicd.deploy import DeploymentTarget
from repro.cicd.repo import Commit, SourceRepository
from repro.core.allocation import AllocationDecision, MemoryAllocator
from repro.core.controller import Environment, OffloadController
from repro.core.demand import DemandModel, RegressionEstimator
from repro.core.partitioning import (
    FixedPartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    Partitioner,
)
from repro.core.scheduler import EagerScheduler
from repro.sim import Event


@dataclass(frozen=True)
class StageResult:
    """Outcome of one pipeline stage."""

    name: str
    started_at: float
    finished_at: float
    ok: bool
    detail: str = ""

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds the stage took."""
        return self.finished_at - self.started_at


@dataclass
class PipelineRun:
    """The record of one pipeline execution."""

    revision: str
    stages: List[StageResult] = field(default_factory=list)
    promoted: bool = False
    partition: Optional[Partition] = None
    allocation: Dict[str, AllocationDecision] = field(default_factory=dict)
    canary_mean_response_s: float = math.nan
    canary_mean_cost_usd: float = math.nan

    @property
    def ok(self) -> bool:
        """True when every stage succeeded (promotion may still be withheld)."""
        return all(stage.ok for stage in self.stages)

    @property
    def total_duration_s(self) -> float:
        """Sum of stage durations."""
        return sum(stage.duration_s for stage in self.stages)

    def stage(self, name: str) -> StageResult:
        """Look up one stage by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage {name!r} in run {self.revision}")


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline behaviour knobs."""

    profile_input_sizes_mb: Tuple[float, ...] = (0.5, 1.0, 2.0, 5.0)
    profile_repetitions: int = 3
    profile_noise_sigma: float = 0.1
    test_fixed_s: float = 60.0
    test_per_component_s: float = 10.0
    canary_jobs: int = 5
    canary_input_mb: float = 2.0
    canary_slack_s: float = 3600.0
    regression_threshold: float = 0.25
    planning_input_mb: float = 2.0
    latency_slo_s: float = math.inf
    offload_stages_enabled: bool = True

    def __post_init__(self) -> None:
        if self.canary_jobs < 1:
            raise ValueError("canary_jobs must be >= 1")
        if self.regression_threshold < 0:
            raise ValueError("regression threshold must be >= 0")


class OffloadPipeline:
    """The deployment pipeline with embedded offloading stages.

    ``offload_stages_enabled=False`` degenerates to the conventional
    build→test→deploy-everything-local flow, which benchmark T4 uses as
    the overhead baseline.
    """

    def __init__(
        self,
        env: Environment,
        repo: SourceRepository,
        registry: Optional[ArtifactRegistry] = None,
        builder: Optional[BuildSystem] = None,
        canary_target: Optional[DeploymentTarget] = None,
        partitioner: Optional[Partitioner] = None,
        allocator: Optional[MemoryAllocator] = None,
        weights: Optional[ObjectiveWeights] = None,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.env = env
        self.repo = repo
        self.registry = registry if registry is not None else ArtifactRegistry()
        self.builder = builder or BuildSystem(env.sim, self.registry)
        self.canary_target = canary_target or DeploymentTarget(
            env.sim, env.platform, namespace="canary."
        )
        self.partitioner = partitioner or MinCutPartitioner()
        self.allocator = allocator or MemoryAllocator(
            billing=env.platform.config.billing
        )
        self.weights = weights or ObjectiveWeights.non_time_critical()
        self.config = config or PipelineConfig()

        #: metrics of the last promoted revision, the regression baseline
        self.production_baseline: Optional[Dict[str, float]] = None
        self.production_revision: Optional[str] = None
        self.runs: List[PipelineRun] = []

    # -- public API -----------------------------------------------------------

    def run(self, revision: Optional[str] = None) -> Event:
        """Execute the pipeline for ``revision`` (default: repo head).

        Returns a process event whose value is the :class:`PipelineRun`.
        """
        commit = (
            self.repo.head if revision is None else self.repo.checkout(revision)
        )
        return self.env.sim.spawn(
            self._run_proc(commit), name=f"pipeline.{commit.revision}"
        )

    def run_to_completion(self, revision: Optional[str] = None) -> PipelineRun:
        """Run the pipeline and drive the simulator until it finishes."""
        process = self.run(revision)
        return self.env.sim.run(until=process)

    # -- stages -----------------------------------------------------------

    def _run_proc(self, commit: Commit) -> Generator[Event, Any, PipelineRun]:
        sim = self.env.sim
        run = PipelineRun(revision=commit.revision)
        app = commit.app

        started = sim.now
        run.stages.append(
            StageResult("checkout", started, sim.now, True, commit.message)
        )

        started = sim.now
        artifacts: List[Artifact] = yield self.builder.build(commit)
        run.stages.append(
            StageResult("build", started, sim.now, True, f"{len(artifacts)} artifacts")
        )

        started = sim.now
        yield sim.timeout(
            self.config.test_fixed_s + self.config.test_per_component_s * len(app)
        )
        run.stages.append(StageResult("test", started, sim.now, True))

        if not self.config.offload_stages_enabled:
            run.promoted = True
            self.production_revision = commit.revision
            self.runs.append(run)
            return run

        # -- profile (C1): CI measures demands for this revision.
        started = sim.now
        demand = DemandModel(app, RegressionEstimator)
        profile_seconds = self._profile(app, demand)
        yield sim.timeout(profile_seconds)
        run.stages.append(
            StageResult(
                "profile",
                started,
                sim.now,
                True,
                f"{len(self.config.profile_input_sizes_mb)} sizes × "
                f"{self.config.profile_repetitions} reps",
            )
        )

        # -- partition (C3).
        started = sim.now
        controller = OffloadController(
            env=self.env,
            app=app,
            partitioner=self.partitioner,
            allocator=self.allocator,
            scheduler=EagerScheduler(),
            demand_model=demand,
            weights=self.weights,
            latency_slo_s=self.config.latency_slo_s,
            function_prefix=self.canary_target.namespace,
        )
        context = controller.build_context(self.config.planning_input_mb)
        partition = self.partitioner.partition(context)
        run.partition = partition
        run.stages.append(
            StageResult(
                "partition",
                started,
                sim.now,
                True,
                f"cloud={sorted(partition.cloud)}",
            )
        )

        # -- allocate (C2).
        started = sim.now
        allocation = self.allocator.allocate_app(
            app,
            partition,
            demand,
            self.config.planning_input_mb,
            self.config.latency_slo_s,
        )
        run.allocation = allocation
        run.stages.append(
            StageResult(
                "allocate",
                started,
                sim.now,
                True,
                ", ".join(
                    f"{name}={decision.memory_mb:.0f}MB"
                    for name, decision in sorted(allocation.items())
                ),
            )
        )

        # -- deploy the canary namespace.
        started = sim.now
        memory_plan = {n: d.memory_mb for n, d in allocation.items()}
        fractions = {
            c.name: c.parallel_fraction for c in app.components
        }
        yield self.canary_target.deploy_revision(
            commit.revision, artifacts, memory_plan, fractions
        )
        run.stages.append(
            StageResult(
                "deploy-canary", started, sim.now, True, f"{len(memory_plan)} functions"
            )
        )

        # -- canary run.
        started = sim.now
        controller.partition = partition
        controller.allocation = allocation
        jobs = [
            Job(
                app=app,
                input_mb=self.config.canary_input_mb,
                released_at=sim.now,
                deadline=sim.now + self.config.canary_slack_s,
            )
            for _ in range(self.config.canary_jobs)
        ]
        outcomes = []
        for job in jobs:  # sequential: canaries measure, not load-test
            outcome = yield controller.submit(job)
            outcomes.append(outcome)
        mean_response = sum(o.response_time for o in outcomes) / len(outcomes)
        mean_cost = sum(o.cloud_cost_usd for o in outcomes) / len(outcomes)
        run.canary_mean_response_s = mean_response
        run.canary_mean_cost_usd = mean_cost
        run.stages.append(
            StageResult(
                "canary",
                started,
                sim.now,
                True,
                f"response={mean_response:.2f}s cost=${mean_cost:.2e}",
            )
        )

        # -- gate: promote or abandon.
        started = sim.now
        regressed, detail = self._check_regression(mean_response, mean_cost)
        if regressed:
            run.promoted = False
            run.stages.append(StageResult("abandon", started, sim.now, True, detail))
        else:
            run.promoted = True
            self.production_baseline = {
                "mean_response_s": mean_response,
                "mean_cost_usd": mean_cost,
            }
            self.production_revision = commit.revision
            run.stages.append(StageResult("promote", started, sim.now, True, detail))

        self.runs.append(run)
        return run

    def _profile(self, app: AppGraph, demand: DemandModel) -> float:
        """Train the demand model; return the simulated profiling time."""
        from repro.profiling.profiler import Profiler

        profiler = Profiler(
            self.env.rng.stream(f"pipeline.profiler.{app.name}"),
            self.config.profile_noise_sigma,
        )
        observations = profiler.profile(
            app,
            self.config.profile_input_sizes_mb,
            self.config.profile_repetitions,
        )
        demand.observe_profile(observations)
        # Each measured execution costs its single-core reference runtime
        # on the CI worker (2.4 GHz class).
        seconds = 0.0
        for rows in observations.values():
            for observation in rows:
                seconds += observation.measured_gcycles * 1e9 / 2.4e9
        return seconds

    def _check_regression(
        self, mean_response: float, mean_cost: float
    ) -> Tuple[bool, str]:
        if self.production_baseline is None:
            return False, "first promotion (no baseline)"
        threshold = self.config.regression_threshold
        base_response = self.production_baseline["mean_response_s"]
        base_cost = self.production_baseline["mean_cost_usd"]
        response_reg = (
            (mean_response - base_response) / base_response if base_response > 0 else 0.0
        )
        cost_reg = (mean_cost - base_cost) / base_cost if base_cost > 0 else 0.0
        detail = (
            f"Δresponse={response_reg:+.1%} Δcost={cost_reg:+.1%} "
            f"(threshold {threshold:.0%})"
        )
        return (response_reg > threshold or cost_reg > threshold), detail


__all__ = ["OffloadPipeline", "PipelineConfig", "PipelineRun", "StageResult"]
