"""The end-to-end offloading runtime.

:class:`Environment` bundles the simulated world (UE, network paths,
serverless platform); :class:`OffloadController` is the paper's framework
running inside it:

1. **profile** the application offline (C1) and keep learning online;
2. **partition** the component graph between UE and cloud (C3);
3. **allocate** memory for every cloud component (C2);
4. **deploy** the resulting functions to the platform (C4 feeds this);
5. **schedule** released jobs inside their slack (C5) and execute the
   DAG — local components on UE cores, cloud components as serverless
   invocations, cut edges as radio transfers.

The controller optionally *adapts*: online observations update the demand
model and the plan is recomputed every ``replan_every`` jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.apps.graph import AppGraph
from repro.apps.jobs import Job, JobResult
from repro.core.allocation import AllocationDecision, MemoryAllocator
from repro.core.demand import DemandModel, RegressionEstimator
from repro.core.partitioning import (
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
    Partitioner,
    evaluate_partition,
)
from repro.core.scheduler import EagerScheduler, ScheduleDecision, Scheduler
from repro.device.ue import DeviceSpec, UserEquipment
from repro.metrics import MetricRegistry
from repro.network.link import NetworkPath
from repro.network.profiles import cloud_path, profile as connectivity_profile
from repro.profiling.profiler import DemandObservation, Profiler
from repro.faults.policy import DegradationPolicy
from repro.serverless.function import FunctionSpec, InvocationRequest
from repro.serverless.retry import (
    RetriesExhaustedError,
    RetryPolicy,
    invoke_hedged,
    invoke_with_retries,
)
from repro.serverless.platform import (
    InvocationFailedError,
    PlatformConfig,
    ServerlessPlatform,
    ThrottledError,
)
from repro.storage.objectstore import ObjectStore, StoragePricing
from repro.sim import Event, Simulator
from repro.sim.rng import RngStream, SeedSequenceRegistry
from repro.telemetry.tracer import (
    PHASE_COMPONENT,
    PHASE_DOWNLOAD,
    PHASE_EXECUTE,
    PHASE_JOB,
    PHASE_PLAN,
    PHASE_SCHEDULE,
    PHASE_STAGE,
    PHASE_UPLOAD,
)


class Environment:
    """The simulated world one controller operates in."""

    def __init__(
        self,
        sim: Simulator,
        ue: UserEquipment,
        platform: ServerlessPlatform,
        uplink: NetworkPath,
        downlink: NetworkPath,
        rng: SeedSequenceRegistry,
        metrics: Optional[MetricRegistry] = None,
        execution_noise_sigma: float = 0.05,
        storage: Optional[ObjectStore] = None,
    ) -> None:
        self.sim = sim
        self.ue = ue
        self.platform = platform
        self.uplink = uplink
        self.downlink = downlink
        self.rng = rng
        self.metrics = metrics if metrics is not None else MetricRegistry()
        if execution_noise_sigma < 0:
            raise ValueError("noise sigma must be >= 0")
        self.execution_noise_sigma = execution_noise_sigma
        #: Optional object store staging cut-edge data; when present the
        #: controller routes transfers through it and pays its prices.
        self.storage = storage

    @staticmethod
    def build(
        seed: int = 0,
        connectivity: str = "4g",
        device: Optional[DeviceSpec] = None,
        platform_config: Optional[PlatformConfig] = None,
        execution_noise_sigma: float = 0.05,
        with_storage: bool = False,
        storage_pricing: Optional[StoragePricing] = None,
    ) -> "Environment":
        """Assemble a standard environment from a connectivity preset.

        ``with_storage=True`` adds an object store so cut-edge data is
        staged through the cloud data plane (request latency, egress
        pricing) instead of moving point to point.
        """
        sim = Simulator()
        rng = SeedSequenceRegistry(seed)
        metrics = MetricRegistry()
        ue = UserEquipment(sim, device, metrics=metrics)
        platform = ServerlessPlatform(
            sim, platform_config, metrics=metrics, rng=rng.stream("platform")
        )
        prof = connectivity_profile(connectivity)
        storage = None
        if with_storage or storage_pricing is not None:
            storage = ObjectStore(sim, storage_pricing, metrics=metrics)
        return Environment(
            sim=sim,
            ue=ue,
            platform=platform,
            uplink=cloud_path(sim, prof, uplink=True, metrics=metrics),
            downlink=cloud_path(sim, prof, uplink=False, metrics=metrics),
            rng=rng,
            metrics=metrics,
            execution_noise_sigma=execution_noise_sigma,
            storage=storage,
        )

    @staticmethod
    def build_custom(
        seed: int = 0,
        uplink_bandwidth: "float | object" = 1.25e6,
        downlink_bandwidth: "Optional[float | object]" = None,
        access_latency_s: float = 0.025,
        wan_latency_s: float = 0.040,
        device: Optional[DeviceSpec] = None,
        platform_config: Optional[PlatformConfig] = None,
        execution_noise_sigma: float = 0.05,
        with_storage: bool = False,
        storage_pricing: Optional[StoragePricing] = None,
    ) -> "Environment":
        """Assemble an environment with explicit link characteristics.

        ``uplink_bandwidth``/``downlink_bandwidth`` accept either a rate
        in bytes/second or a :class:`~repro.traces.bandwidth.BandwidthTrace`
        (e.g. a Markov good/bad channel), which is how time-varying
        connectivity experiments are built.  The downlink defaults to 4x
        the uplink when given as a number, or to the same trace object.
        """
        from repro.network.link import Link

        sim = Simulator()
        rng = SeedSequenceRegistry(seed)
        metrics = MetricRegistry()
        if downlink_bandwidth is None:
            downlink_bandwidth = (
                uplink_bandwidth * 4
                if isinstance(uplink_bandwidth, (int, float))
                else uplink_bandwidth
            )

        def path(bandwidth, direction: str) -> NetworkPath:
            wan_rate = (
                bandwidth * 4 if isinstance(bandwidth, (int, float)) else 1e9
            )
            access = Link(
                sim,
                bandwidth=bandwidth,
                latency_s=access_latency_s,
                per_request_overhead_bytes=1500.0,
                name=f"custom.access.{direction}",
                metrics=metrics,
            )
            wan = Link(
                sim,
                bandwidth=wan_rate,
                latency_s=wan_latency_s,
                name=f"custom.wan.{direction}",
                metrics=metrics,
            )
            return NetworkPath(sim, [access, wan], name=f"custom.{direction}")

        storage = None
        if with_storage or storage_pricing is not None:
            storage = ObjectStore(sim, storage_pricing, metrics=metrics)
        return Environment(
            sim=sim,
            ue=UserEquipment(sim, device, metrics=metrics),
            platform=ServerlessPlatform(
                sim, platform_config, metrics=metrics, rng=rng.stream("platform")
            ),
            uplink=path(uplink_bandwidth, "up"),
            downlink=path(downlink_bandwidth, "down"),
            rng=rng,
            metrics=metrics,
            execution_noise_sigma=execution_noise_sigma,
            storage=storage,
        )

    def actual_work(self, nominal_gcycles: float, stream: RngStream) -> float:
        """Perturb a nominal demand with run-to-run execution noise."""
        if self.execution_noise_sigma <= 0 or nominal_gcycles <= 0:
            return nominal_gcycles
        return nominal_gcycles * stream.lognormal_bounded(
            1.0, self.execution_noise_sigma, low=0.2, high=5.0
        )


class JobRejectedError(RuntimeError):
    """Admission control refused a job whose deadline is unmeetable."""

    def __init__(self, job: Job, estimate_s: float) -> None:
        super().__init__(
            f"job {job.job_id}: deadline {job.deadline:.1f} unmeetable "
            f"(needs ~{estimate_s:.1f}s from release)"
        )
        self.job = job
        self.estimate_s = estimate_s


@dataclass
class JobFailure:
    """A job that did not complete."""

    job: Job
    failed_at: float
    error: BaseException


@dataclass
class ControllerReport:
    """Aggregate outcome of a workload run."""

    results: List[JobResult] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)

    @property
    def jobs_completed(self) -> int:
        """Number of jobs that finished."""
        return len(self.results)

    @property
    def rejections(self) -> int:
        """Jobs turned away by admission control."""
        return sum(
            1
            for failure in self.failures
            if isinstance(failure.error, JobRejectedError)
        )

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed jobs that missed their deadline
        (failures count as misses)."""
        total = len(self.results) + len(self.failures)
        if total == 0:
            return 0.0
        missed = sum(1 for r in self.results if not r.met_deadline)
        return (missed + len(self.failures)) / total

    @property
    def mean_response_s(self) -> float:
        """Mean release-to-completion time across completed jobs."""
        if not self.results:
            return math.nan
        return sum(r.response_time for r in self.results) / len(self.results)

    @property
    def total_ue_energy_j(self) -> float:
        """Total UE energy across completed jobs."""
        return sum(r.ue_energy_j for r in self.results)

    @property
    def total_cloud_cost_usd(self) -> float:
        """Total serverless bill across completed jobs."""
        return sum(r.cloud_cost_usd for r in self.results)

    def percentile_response_s(self, p: float) -> float:
        """Exact percentile of response times (p in [0, 100])."""
        if not self.results:
            return math.nan
        data = sorted(r.response_time for r in self.results)
        position = (p / 100.0) * (len(data) - 1)
        lower, upper = int(math.floor(position)), int(math.ceil(position))
        if lower == upper:
            return data[lower]
        weight = position - lower
        return data[lower] * (1 - weight) + data[upper] * weight


class OffloadController:
    """Runs one application under the paper's offloading framework."""

    def __init__(
        self,
        env: Environment,
        app: AppGraph,
        partitioner: Optional[Partitioner] = None,
        allocator: Optional[MemoryAllocator] = None,
        scheduler: Optional[Scheduler] = None,
        demand_model: Optional[DemandModel] = None,
        weights: Optional[ObjectiveWeights] = None,
        latency_slo_s: float = math.inf,
        adaptive: bool = False,
        replan_every: int = 20,
        function_prefix: str = "",
        retry_policy: Optional[RetryPolicy] = None,
        dvfs: bool = False,
        admission_control: bool = False,
        degradation: Optional[DegradationPolicy] = None,
        observed_signals: bool = False,
        monitor: Optional[Any] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.partitioner = partitioner or MinCutPartitioner()
        self.allocator = allocator or MemoryAllocator(
            billing=env.platform.config.billing
        )
        self.scheduler = scheduler or EagerScheduler()
        self.demand = demand_model or DemandModel(app, RegressionEstimator)
        self.weights = weights or ObjectiveWeights.non_time_critical()
        self.latency_slo_s = latency_slo_s
        self.adaptive = adaptive
        if replan_every < 1:
            raise ValueError("replan_every must be >= 1")
        self.replan_every = replan_every
        self.function_prefix = function_prefix
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=1.0, multiplier=2.0
        )
        #: When True, local components run at the lowest DVFS point that
        #: still (predictably) meets the job's deadline — the classic
        #: race-to-idle vs crawl-to-deadline trade, resolved toward
        #: crawling because E ∝ f² while nobody is waiting.
        self.dvfs = dvfs
        #: When True, jobs whose deadline is predictably unmeetable are
        #: rejected at submission instead of burning energy and dollars
        #: on a guaranteed miss.
        self.admission_control = admission_control
        #: Optional graceful-degradation responses (outage-aware backoff,
        #: hedged duplicates, fallback-to-local).  None keeps the legacy
        #: retry-only cloud path, byte-identical to pre-fault behaviour.
        self.degradation = degradation
        #: When True, the controller consumes only signals a production
        #: system could observe: demand observations are derived from
        #: measured execution durations (not the oracle's actual
        #: gigacycles), :meth:`profile_offline` is a no-op, and planning
        #: link rates come from the attached ``monitor``'s windowed
        #: goodput when available.  Ablation A10 compares the two modes.
        self.observed_signals = observed_signals
        #: Optional :class:`~repro.monitor.monitor.Monitor` supplying
        #: observed link-throughput history for planning.
        self.monitor = monitor

        self.partition: Optional[Partition] = None
        self.allocation: Dict[str, AllocationDecision] = {}
        self._jobs_since_replan = 0
        #: Per-controller job sequence used for trace span labels.  Job
        #: ids come from a process-global counter, so two same-seed runs
        #: in one process would otherwise emit different traces.
        self._trace_job_seq = 0
        self._exec_rng = env.rng.stream(f"controller.{app.name}.exec")
        self._planned_input_mb: float = 1.0
        #: Last-known-good link rates, held across injected outages so
        #: planning mid-outage uses the estimator's memory instead of an
        #: unusable instantaneous zero.
        self._last_rates: Dict[str, float] = {}
        #: Remediation seams (driven by :mod:`repro.remediate`): jobs
        #: dispatched before ``_hold_local_until`` run fully local
        #: regardless of the current partition; ``plan_rate_overrides``
        #: pins planning link rates to a forecast instead of the
        #: estimator; ``memory_floor_mb`` floors deployed function sizes.
        self._hold_local_until: float = 0.0
        self.plan_rate_overrides: Dict[str, float] = {}
        self.memory_floor_mb: float = 0.0

    @property
    def planned_input_mb(self) -> float:
        """The input size the current plan was computed for."""
        return self._planned_input_mb

    def hold_local(self, until: float) -> bool:
        """Route jobs dispatched before sim time ``until`` fully local.

        The partition itself is untouched (planning state survives), but
        :meth:`_job_body` snapshots a local-only partition for any job
        whose execution starts inside the hold window — the
        shift-traffic remediation action.  Returns True when the window
        actually extended (False lets the caller skip a no-op log line).
        """
        if until <= self._hold_local_until:
            return False
        self._hold_local_until = until
        return True

    # -- planning --------------------------------------------------------

    def profile_offline(
        self,
        input_sizes_mb: Tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0),
        repetitions: int = 3,
        noise_sigma: float = 0.1,
    ) -> None:
        """Run the CI-style profiling sweep and train the demand model.

        In observed-signal mode this is a no-op: the oracle profiler is
        exactly the signal that mode forswears, so the demand model
        starts from its priors and learns from monitored executions.
        """
        if self.observed_signals:
            return
        profiler = Profiler(
            self.env.rng.stream(f"profiler.{self.app.name}"), noise_sigma
        )
        observations = profiler.profile(self.app, input_sizes_mb, repetitions)
        self.demand.observe_profile(observations)

    def _usable_rate(self, path: NetworkPath, key: str) -> float:
        """Bottleneck rate for planning, riding through link outages.

        An injected outage makes the instantaneous rate zero, which no
        plan can use; real bandwidth estimators hold their last estimate
        instead.  A link never yet seen up prices in at 1 kbit/s, which
        makes remote work prohibitively expensive and plans the job
        locally — the right call while the radio is dark.

        In observed-signal mode with a monitor attached, the windowed
        goodput measured from completed transfers is preferred; the
        legacy estimator only bootstraps planning before any transfer
        has been observed.

        A remediation rate override (a short-horizon forecast of the
        link's goodput) takes precedence over every other source: the
        whole point of proactive re-planning is to price the *predicted*
        rate before the estimator has caught up.
        """
        override = self.plan_rate_overrides.get(key)
        if override is not None and override > 0:
            return override
        if self.observed_signals and self.monitor is not None:
            observed = self.monitor.link_rate(key, self.env.sim.now)
            if observed is not None and observed > 0:
                self._last_rates[key] = observed
                return observed
        rate = path.bottleneck_rate(self.env.sim.now)
        if rate > 0:
            self._last_rates[key] = rate
            return rate
        return self._last_rates.get(key, 125.0)

    def build_context(self, input_mb: float) -> PartitionContext:
        """A planning context at the current network conditions."""
        work = {
            name: self.demand.predict(name, input_mb)
            for name in self.app.component_names
        }
        memory_plan = {
            name: decision.memory_mb for name, decision in self.allocation.items()
        }
        return PartitionContext(
            app=self.app,
            input_mb=input_mb,
            work=work,
            ue_cycles_per_second=self.env.ue.spec.cycles_per_second,
            energy=self.env.ue.spec.energy,
            billing=self.env.platform.config.billing,
            memory_plan=memory_plan,
            uplink_bps=self._usable_rate(self.env.uplink, "uplink"),
            uplink_latency_s=self.env.uplink.total_latency_s,
            downlink_bps=self._usable_rate(self.env.downlink, "downlink"),
            downlink_latency_s=self.env.downlink.total_latency_s,
            egress_price_per_gb=(
                self.env.storage.pricing.egress_price_per_gb
                if self.env.storage is not None
                else 0.0
            ),
            weights=self.weights,
        )

    def plan(self, input_mb: float = 1.0) -> Partition:
        """Partition, allocate, and deploy for the expected input size.

        Safe to call repeatedly: only functions whose memory changed are
        redeployed (a redeploy recycles the warm pool, so needless churn
        is avoided).
        """
        self._planned_input_mb = input_mb
        tracer = self.env.sim.tracer
        meter = self.env.sim.meter
        plan_started = perf_counter() if meter.enabled else 0.0
        plan_span = tracer.start_span(
            "plan", category=PHASE_PLAN, app=self.app.name, input_mb=input_mb
        )
        # First pass at default memory, then refine: the partition decides
        # *what* runs in the cloud, the allocation decides *at which size*,
        # and sizes feed back into partition economics.
        context = self.build_context(input_mb)
        partition = self.partitioner.partition(context)
        partition.validate(self.app)
        allocation = self.allocator.allocate_app(
            self.app, partition, self.demand, input_mb, self.latency_slo_s
        )
        self.allocation = allocation
        context = self.build_context(input_mb)
        partition = self.partitioner.partition(context)
        partition.validate(self.app)
        self.partition = partition
        self.allocation = self.allocator.allocate_app(
            self.app, partition, self.demand, input_mb, self.latency_slo_s
        )
        self._deploy()
        tracer.end_span(
            plan_span,
            n_cloud=len(partition.cloud),
            n_local=len(self.app.component_names) - len(partition.cloud),
        )
        meter.plans_computed += 1
        if meter.enabled:
            meter.plan_wall_s += perf_counter() - plan_started
        return partition

    def _function_name(self, component: str) -> str:
        return f"{self.function_prefix}{self.app.name}.{component}"

    def _deploy(self) -> None:
        assert self.partition is not None
        platform = self.env.platform
        for component, decision in sorted(self.allocation.items()):
            spec = self.app.component(component)
            fn = FunctionSpec(
                name=self._function_name(component),
                memory_mb=max(decision.memory_mb, self.memory_floor_mb),
                package_mb=spec.package_mb,
                parallel_fraction=spec.parallel_fraction,
            )
            if (
                not platform.is_deployed(fn.name)
                or platform.spec(fn.name) != fn
            ):
                platform.deploy(fn)

    def estimate_completion(
        self, job: Job, frequency_fraction: float = 1.0
    ) -> float:
        """Predicted response time once dispatched (for the scheduler).

        Uses the DAG makespan of the current plan plus one cold start per
        cloud component — conservative, which is what deadline math wants.
        ``frequency_fraction`` scales the UE speed (DVFS planning).
        """
        from dataclasses import replace as _replace

        if self.partition is None:
            self.plan(job.input_mb)
        assert self.partition is not None
        context = self.build_context(job.input_mb)
        if frequency_fraction != 1.0:
            context = _replace(
                context,
                ue_cycles_per_second=(
                    context.ue_cycles_per_second * frequency_fraction
                ),
            )
        evaluation = evaluate_partition(context, self.partition)
        cold_allowance = sum(
            self.env.platform.config.cold_start_duration(
                self.env.platform.spec(self._function_name(name))
            )
            for name in self.partition.cloud
            if self.env.platform.is_deployed(self._function_name(name))
        )
        return evaluation.makespan_s + cold_allowance

    def select_frequency(self, job: Job, now: float) -> float:
        """Lowest DVFS point that still meets the deadline with the
        scheduler's safety margin; 1.0 when DVFS is off.

        With no deadline the lowest point wins outright — nobody is
        waiting, and energy falls with f².
        """
        if not self.dvfs:
            return 1.0
        steps = sorted(self.env.ue.spec.frequency_steps)
        if math.isinf(job.deadline):
            return steps[0]
        budget = job.deadline - now
        safety = self.scheduler.safety_factor
        for fraction in steps:
            if safety * self.estimate_completion(job, fraction) <= budget:
                return fraction
        return 1.0

    # -- execution ---------------------------------------------------------

    def submit(self, job: Job) -> Event:
        """Schedule and execute one job; process event yields JobResult."""
        if job.app.name != self.app.name:
            raise ValueError(
                f"job for app {job.app.name!r} submitted to controller "
                f"for {self.app.name!r}"
            )
        if self.partition is None:
            self.plan(job.input_mb)
        if self.admission_control and not math.isinf(job.deadline):
            estimate = self.estimate_completion(job)
            if self.env.sim.now + estimate > job.deadline:
                rejected = self.env.sim.event()
                rejected.fail(JobRejectedError(job, estimate))
                return rejected
        return self.env.sim.spawn(
            self._job_proc(job), name=f"job{job.job_id}.{self.app.name}"
        )

    def _job_proc(self, job: Job) -> Generator[Event, Any, JobResult]:
        sim = self.env.sim
        tracer = sim.tracer
        trace_seq = self._trace_job_seq
        self._trace_job_seq += 1
        job_span = tracer.start_span(
            f"job{trace_seq}",
            category=PHASE_JOB,
            job_id=trace_seq,
            app=self.app.name,
            input_mb=job.input_mb,
            released_at=job.released_at,
            deadline=job.deadline,
        )
        try:
            result = yield from self._job_body(job, job_span)
        except BaseException as error:  # noqa: BLE001 - close spans, relay
            # A dying job abandons whatever spans its component/transfer
            # processes had open; close the whole subtree so the trace
            # stays complete.
            tracer.end_subtree(job_span, error=type(error).__name__)
            raise
        tracer.end_span(
            job_span,
            met_deadline=result.met_deadline,
            ue_energy_j=result.ue_energy_j,
            cloud_cost_usd=result.cloud_cost_usd,
        )
        if tracer.enabled:
            tracer.metrics.counter(
                "jobs_total", app=self.app.name,
                met_deadline=str(result.met_deadline).lower(),
            ).increment()
            tracer.metrics.summary(
                "job_response_s", app=self.app.name
            ).observe(result.response_time)
        return result

    def _job_body(
        self, job: Job, job_span
    ) -> Generator[Event, Any, JobResult]:
        sim = self.env.sim
        tracer = sim.tracer
        estimate = self.estimate_completion(job)
        decision = self.scheduler.decide(job, sim.now, estimate)
        if decision.dispatch_at > sim.now:
            wait_span = tracer.start_span(
                "deferral",
                category=PHASE_SCHEDULE,
                parent=job_span,
                dispatch_at=decision.dispatch_at,
            )
            yield sim.timeout(decision.dispatch_at - sim.now)
            tracer.end_span(wait_span)
        started = sim.now
        frequency = self.select_frequency(job, sim.now)

        assert self.partition is not None
        partition = self.partition
        if sim.now < self._hold_local_until:
            # Shift-traffic remediation: the zone (or its uplink) is
            # burning, so this job runs fully local.  Snapshotting the
            # override here keeps component and edge processes coherent
            # for the whole job, exactly like the normal partition
            # snapshot below.
            partition = Partition.local_only(self.app)
        app = self.app
        energy_j = 0.0
        energy_breakdown: Dict[str, float] = {}
        cost_usd = 0.0
        finish_times: Dict[str, float] = {}

        def charge(kind: str, joules: float) -> None:
            nonlocal energy_j
            energy_j += joules
            energy_breakdown[kind] = energy_breakdown.get(kind, 0.0) + joules

        component_done: Dict[str, Event] = {
            name: sim.event() for name in app.component_names
        }
        edge_done: Dict[Tuple[str, str], Event] = {}

        observations: List[DemandObservation] = []

        def component_proc(name: str) -> Generator[Event, Any, None]:
            nonlocal cost_usd
            incoming = [edge_done[(pred, name)] for pred in app.predecessors(name)]
            if incoming:
                yield sim.all_of(incoming)
            nominal = job.component_work(name)
            actual = self.env.actual_work(nominal, self._exec_rng)
            observed_gcycles: Optional[float] = None
            tier = "cloud" if partition.is_cloud(name) else "local"
            comp_span = tracer.start_span(
                name,
                category=PHASE_COMPONENT,
                parent=job_span,
                tier=tier,
                work_gcycles=actual,
            )
            if tracer.enabled:
                tracer.metrics.counter(
                    "components_total", app=app.name, tier=tier
                ).increment()
            if partition.is_cloud(name):
                request = InvocationRequest(
                    function=self._function_name(name),
                    work_gcycles=actual,
                    payload_bytes=0.0,
                    tag=f"job{job.job_id}",
                    trace_parent=comp_span if tracer.enabled else None,
                )
                if self.degradation is None:
                    entered = sim.now
                    outcome = yield invoke_with_retries(
                        self.env.platform,
                        request,
                        policy=self.retry_policy,
                        rng=self._exec_rng,
                    )
                    cost_usd += outcome.total_cost
                    if self.observed_signals:
                        observed_gcycles = self._observed_cloud_gcycles(
                            outcome.invocation
                        )
                    # The UE idles for the whole cloud episode, retries
                    # included.
                    charge(
                        "idle",
                        self.env.ue.spec.energy.idle_energy(sim.now - entered),
                    )
                else:
                    episode_cost, episode_observed = (
                        yield from self._degraded_cloud_episode(
                            job, request, actual, frequency, charge, comp_span
                        )
                    )
                    cost_usd += episode_cost
                    observed_gcycles = episode_observed
            else:
                exec_span = tracer.start_span(
                    name,
                    category=PHASE_EXECUTE,
                    parent=comp_span,
                    tier="local",
                )
                execution = yield self.env.ue.execute(
                    actual, frequency_fraction=frequency
                )
                tracer.end_span(exec_span, energy_j=execution.energy_j)
                charge("compute", execution.energy_j)
                if self.observed_signals:
                    observed_gcycles = self._observed_local_gcycles(
                        execution, frequency
                    )
            tracer.end_span(comp_span)
            if self.observed_signals:
                # Feed what a production system could measure: gigacycles
                # recovered from wall-clock durations through the known
                # duration model, never the oracle's `actual`.
                measured = (
                    observed_gcycles if observed_gcycles is not None else actual
                )
            else:
                measured = actual
            observations.append(
                DemandObservation(
                    component=name,
                    input_mb=job.input_mb,
                    measured_gcycles=measured,
                    at_time=sim.now,
                )
            )
            finish_times[name] = sim.now
            component_done[name].succeed(None)

        def edge_proc(src: str, dst: str) -> Generator[Event, Any, None]:
            nonlocal cost_usd
            yield component_done[src]
            src_cloud = partition.is_cloud(src)
            dst_cloud = partition.is_cloud(dst)
            store = self.env.storage
            nbytes = job.flow_bytes(src, dst)
            key = f"job{job.job_id}/{src}->{dst}"
            if not src_cloud and dst_cloud:
                # UE uploads; with a store the payload is staged there.
                up_span = tracer.start_span(
                    f"{src}->{dst}",
                    category=PHASE_UPLOAD,
                    parent=job_span,
                    bytes=nbytes,
                )
                result = yield self.env.ue.transmit(
                    nbytes, self.env.uplink, parent=up_span
                )
                tracer.end_span(up_span, radio_s=result.radio_seconds)
                charge(
                    "tx",
                    self.env.ue.spec.energy.transmit_energy(
                        result.radio_seconds
                    ),
                )
                if store is not None:
                    stage_span = tracer.start_span(
                        f"stage.{src}->{dst}",
                        category=PHASE_STAGE,
                        parent=job_span,
                        bytes=nbytes,
                    )
                    yield store.put(key, nbytes)
                    tracer.end_span(stage_span)
                    cost_usd += store.pricing.price_per_put
                    store.delete(key)  # consumed by the dst function
            elif src_cloud and not dst_cloud:
                if store is not None:
                    # The cloud function writes its result, the UE reads it
                    # out — paying the egress rate.
                    stage_span = tracer.start_span(
                        f"stage.{src}->{dst}",
                        category=PHASE_STAGE,
                        parent=job_span,
                        bytes=nbytes,
                    )
                    yield store.put(key, nbytes)
                    yield store.get(key, external=True)
                    tracer.end_span(stage_span)
                    cost_usd += (
                        store.pricing.price_per_put
                        + store.pricing.price_per_get
                        + store.pricing.transfer_cost(nbytes, external=True)
                    )
                    store.delete(key)
                down_span = tracer.start_span(
                    f"{src}->{dst}",
                    category=PHASE_DOWNLOAD,
                    parent=job_span,
                    bytes=nbytes,
                )
                result = yield self.env.ue.receive(
                    nbytes, self.env.downlink, parent=down_span
                )
                tracer.end_span(down_span, radio_s=result.radio_seconds)
                charge(
                    "rx",
                    self.env.ue.spec.energy.receive_energy(
                        result.radio_seconds
                    ),
                )
            elif src_cloud and dst_cloud and store is not None:
                # Intra-cloud handoff through the store: request latency
                # and fees, no radio involvement.
                stage_span = tracer.start_span(
                    f"stage.{src}->{dst}",
                    category=PHASE_STAGE,
                    parent=job_span,
                    bytes=nbytes,
                )
                yield store.put(key, nbytes)
                yield store.get(key, external=False)
                tracer.end_span(stage_span)
                cost_usd += (
                    store.pricing.price_per_put
                    + store.pricing.price_per_get
                    + store.pricing.transfer_cost(nbytes, external=False)
                )
                store.delete(key)
            edge_done[(src, dst)].succeed(None)

        processes = []
        for flow in app.flows:
            edge_done[(flow.src, flow.dst)] = sim.event()
        for flow in app.flows:
            processes.append(
                sim.spawn(edge_proc(flow.src, flow.dst), name=f"edge.{flow.src}->{flow.dst}")
            )
        for name in app.component_names:
            processes.append(sim.spawn(component_proc(name), name=f"comp.{name}"))
        yield sim.all_of(processes)

        for observation in observations:
            self.demand.observe(observation)
        self._maybe_replan(job)

        result = JobResult(
            job=job,
            started_at=started,
            finished_at=sim.now,
            ue_energy_j=energy_j,
            cloud_cost_usd=cost_usd,
            component_finish_times=finish_times,
            energy_breakdown=energy_breakdown,
        )
        metrics = self.env.metrics
        metrics.summary(f"{app.name}.response_s").observe(result.response_time)
        metrics.counter(f"{app.name}.jobs").increment()
        if not result.met_deadline:
            metrics.counter(f"{app.name}.deadline_misses").increment()
        return result

    def _degraded_cloud_episode(
        self,
        job: Job,
        request: InvocationRequest,
        actual_gcycles: float,
        frequency: float,
        charge: Callable[[str, float], None],
        parent=None,
    ) -> Generator[Event, Any, Tuple[float, Optional[float]]]:
        """One cloud component under the degradation policy.

        Delegated into from the job process (``yield from``); returns the
        USD cost attributed to the job plus the duration-derived demand
        estimate (gigacycles) when observed-signal mode is on, else
        ``None``.  The cloud episode (hedged,
        outage-aware retries) races a fallback budget derived from the
        job's remaining deadline slack: when the budget elapses or the
        cloud fails terminally, the component runs on the UE instead — an
        abandoned cloud lane keeps billing the platform ledger, exactly
        like a real request nobody is waiting for anymore.
        """
        sim = self.env.sim
        degradation = self.degradation
        assert degradation is not None
        metrics = self.env.metrics
        entered = sim.now
        episode = invoke_hedged(
            self.env.platform,
            request,
            policy=self.retry_policy,
            rng=self._exec_rng,
            hedge_after_s=degradation.hedge_after_s,
            outage_aware=degradation.outage_aware_backoff,
        )

        def guarded() -> Generator[Event, Any, tuple]:
            try:
                value = yield episode
            except BaseException as error:  # noqa: BLE001 - relayed below
                return (False, error)
            return (True, value)

        guard = sim.spawn(guarded(), name=f"{self.app.name}.cloud.guard")
        budget = degradation.fallback_budget(entered, job.deadline)
        if budget is None:
            ok, payload = yield guard
        else:
            yield sim.any_of([guard, sim.timeout(budget)])
            if guard.triggered:
                ok, payload = guard.value
            else:
                episode.interrupt("fallback-to-local")
                ok, payload = False, None

        # The UE idles for the whole cloud episode, retries included.
        charge("idle", self.env.ue.spec.energy.idle_energy(sim.now - entered))
        cost = 0.0
        if ok:
            cost += payload.total_cost
            if payload.attempts > 1:
                metrics.counter(f"{self.app.name}.attempts_wasted").increment(
                    payload.attempts - 1
                )
            observed = (
                self._observed_cloud_gcycles(payload.invocation)
                if self.observed_signals
                else None
            )
            return cost, observed

        cloud_errors = (RetriesExhaustedError, InvocationFailedError, ThrottledError)
        if payload is not None and not isinstance(payload, cloud_errors):
            raise payload  # a programming error, not infrastructure trouble
        if isinstance(payload, RetriesExhaustedError):
            cost += payload.wasted_usd
            metrics.counter(f"{self.app.name}.attempts_wasted").increment(
                payload.attempts
            )
        if not degradation.fallback_local:
            assert payload is not None  # budget requires fallback_local
            raise payload
        metrics.counter(f"{self.app.name}.fallbacks").increment()
        tracer = sim.tracer
        tracer.instant(
            "fallback_local",
            parent=parent,
            cause=type(payload).__name__ if payload is not None else "budget",
        )
        fallback_span = tracer.start_span(
            request.function,
            category=PHASE_EXECUTE,
            parent=parent,
            tier="local",
            fallback=True,
        )
        if tracer.enabled:
            tracer.metrics.counter(
                "fallbacks_total", app=self.app.name
            ).increment()
        execution = yield self.env.ue.execute(
            actual_gcycles, frequency_fraction=frequency
        )
        tracer.end_span(fallback_span, energy_j=execution.energy_j)
        charge("compute", execution.energy_j)
        observed = (
            self._observed_local_gcycles(execution, frequency)
            if self.observed_signals
            else None
        )
        return cost, observed

    def _observed_cloud_gcycles(self, invocation) -> float:
        """Demand implied by a cloud invocation's measured duration.

        Inverts the deployed function's duration model at the memory the
        invocation actually ran with; a straggler-inflated runtime
        honestly inflates the estimate — that is the point.
        """
        spec = self.env.platform.spec(invocation.request.function)
        if spec.memory_mb != invocation.memory_mb:
            spec = spec.with_memory(invocation.memory_mb)
        return spec.work_for_duration(invocation.execution_time)

    def _observed_local_gcycles(
        self, execution, frequency: float
    ) -> float:
        """Demand implied by a local execution's wall-clock latency.

        Uses the device's known clock rate at the chosen DVFS point;
        core-contention wait inflates the estimate, as it would for any
        on-device profiler reading timestamps.
        """
        cycles_per_second = self.env.ue.spec.cycles_per_second * frequency
        return execution.latency * cycles_per_second / 1e9

    def _maybe_replan(self, job: Job) -> None:
        if not self.adaptive:
            return
        self._jobs_since_replan += 1
        if self._jobs_since_replan >= self.replan_every:
            self._jobs_since_replan = 0
            self.plan(job.input_mb)

    # -- workload driver ----------------------------------------------------

    def run_workload(
        self,
        jobs: List[Job],
        until: Optional[float] = None,
    ) -> ControllerReport:
        """Release each job at its ``released_at`` and run to completion."""
        report = ControllerReport()
        sim = self.env.sim

        def release(job: Job) -> Generator[Event, Any, None]:
            if job.released_at > sim.now:
                yield sim.timeout(job.released_at - sim.now)
            process = self.submit(job)
            try:
                result = yield process
            except BaseException as error:  # noqa: BLE001 - record, don't crash
                report.failures.append(
                    JobFailure(job=job, failed_at=sim.now, error=error)
                )
            else:
                report.results.append(result)

        drivers = [
            sim.spawn(release(job), name=f"release.job{job.job_id}") for job in jobs
        ]
        if until is not None:
            sim.run(until=until)
        else:
            sim.run(until=sim.all_of(drivers))
        report.results.sort(key=lambda r: r.finished_at)
        return report


__all__ = [
    "ControllerReport",
    "Environment",
    "JobFailure",
    "JobRejectedError",
    "OffloadController",
]
