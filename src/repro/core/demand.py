"""Demand determination (contribution C1).

Every offloading decision downstream — partitioning, memory allocation,
scheduling — consumes a prediction of how many gigacycles a component will
burn for a given input.  This module provides a family of estimators that
turn :class:`~repro.profiling.profiler.DemandObservation` streams into
predictions, plus :class:`DemandModel`, the per-application bundle the
controller carries.

Estimator zoo (ablation A2 compares them):

* :class:`StaticEstimator` — a fixed developer guess; the no-profiling
  baseline.
* :class:`MeanEstimator` — sample mean, ignoring input size.
* :class:`EwmaEstimator` — exponentially weighted mean; tracks drift.
* :class:`QuantileEstimator` — a conservative upper quantile; protects
  deadline-sensitive decisions from underestimation.
* :class:`RegressionEstimator` — least-squares ``base + slope*input_mb``;
  the right model when demand scales with input, as it does for all the
  catalog applications.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.apps.graph import AppGraph
from repro.profiling.profiler import DemandObservation


@dataclass(frozen=True)
class DemandProfile:
    """A point summary of one component's demand model.

    ``base_gcycles`` and ``per_mb_gcycles`` describe the affine demand
    curve; ``uncertainty`` is a one-sigma relative error estimate used by
    conservative consumers.
    """

    component: str
    base_gcycles: float
    per_mb_gcycles: float
    uncertainty: float = 0.0
    observation_count: int = 0

    def predict(self, input_mb: float) -> float:
        """Expected demand in gigacycles at ``input_mb``."""
        if input_mb < 0:
            raise ValueError("input size must be >= 0")
        return max(self.base_gcycles + self.per_mb_gcycles * input_mb, 0.0)

    def conservative(self, input_mb: float, sigmas: float = 2.0) -> float:
        """Demand inflated by ``sigmas`` standard deviations."""
        return self.predict(input_mb) * (1.0 + sigmas * self.uncertainty)


class DemandEstimator(ABC):
    """Interface: consume observations, emit predictions."""

    def __init__(self, component: str) -> None:
        self.component = component
        self.observation_count = 0

    def observe(self, observation: DemandObservation) -> None:
        """Feed one measurement into the estimator."""
        if observation.component != self.component:
            raise ValueError(
                f"estimator for {self.component!r} fed observation "
                f"for {observation.component!r}"
            )
        self.observation_count += 1
        self._update(observation)

    def observe_all(self, observations: Iterable[DemandObservation]) -> None:
        """Feed a batch of measurements."""
        for observation in observations:
            self.observe(observation)

    @abstractmethod
    def _update(self, observation: DemandObservation) -> None:
        """Estimator-specific state update."""

    @abstractmethod
    def predict(self, input_mb: float) -> float:
        """Predicted demand in gigacycles at ``input_mb``."""

    def profile(self) -> DemandProfile:
        """Export the current state as a :class:`DemandProfile`.

        The default fits no slope: base = prediction at 0 MB, slope =
        finite difference over 1 MB.  Estimators with richer state
        override this.
        """
        base = self.predict(0.0)
        slope = self.predict(1.0) - base
        return DemandProfile(
            component=self.component,
            base_gcycles=base,
            per_mb_gcycles=max(slope, 0.0),
            observation_count=self.observation_count,
        )


class StaticEstimator(DemandEstimator):
    """A fixed developer-supplied guess; never learns."""

    def __init__(self, component: str, guess_gcycles: float) -> None:
        super().__init__(component)
        if guess_gcycles < 0:
            raise ValueError("guess must be >= 0")
        self.guess_gcycles = guess_gcycles

    def _update(self, observation: DemandObservation) -> None:
        pass  # deliberately ignores evidence

    def predict(self, input_mb: float) -> float:
        return self.guess_gcycles


class MeanEstimator(DemandEstimator):
    """Sample mean of all measurements, independent of input size."""

    def __init__(self, component: str, prior_gcycles: float = 1.0) -> None:
        super().__init__(component)
        self._sum = 0.0
        self._sum_sq = 0.0
        self._prior = prior_gcycles

    def _update(self, observation: DemandObservation) -> None:
        self._sum += observation.measured_gcycles
        self._sum_sq += observation.measured_gcycles ** 2

    def predict(self, input_mb: float) -> float:
        if self.observation_count == 0:
            return self._prior
        return self._sum / self.observation_count

    def profile(self) -> DemandProfile:
        mean = self.predict(0.0)
        uncertainty = 0.0
        if self.observation_count > 1 and mean > 0:
            variance = max(
                self._sum_sq / self.observation_count - mean * mean, 0.0
            )
            uncertainty = math.sqrt(variance) / mean
        return DemandProfile(
            component=self.component,
            base_gcycles=mean,
            per_mb_gcycles=0.0,
            uncertainty=uncertainty,
            observation_count=self.observation_count,
        )


class EwmaEstimator(DemandEstimator):
    """Exponentially weighted moving average; tracks demand drift."""

    def __init__(
        self, component: str, alpha: float = 0.2, prior_gcycles: float = 1.0
    ) -> None:
        super().__init__(component)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = prior_gcycles
        self._seeded = False

    def _update(self, observation: DemandObservation) -> None:
        if not self._seeded:
            self._value = observation.measured_gcycles
            self._seeded = True
        else:
            self._value = (
                self.alpha * observation.measured_gcycles
                + (1.0 - self.alpha) * self._value
            )

    def predict(self, input_mb: float) -> float:
        return self._value


class QuantileEstimator(DemandEstimator):
    """An upper quantile of the measurements (conservative planning).

    Retains observations (profiling sets are small) and reports the exact
    empirical quantile.
    """

    def __init__(
        self, component: str, quantile: float = 0.95, prior_gcycles: float = 1.0
    ) -> None:
        super().__init__(component)
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        self.quantile = quantile
        self._samples: List[float] = []
        self._prior = prior_gcycles

    def _update(self, observation: DemandObservation) -> None:
        self._samples.append(observation.measured_gcycles)

    def predict(self, input_mb: float) -> float:
        if not self._samples:
            return self._prior
        data = sorted(self._samples)
        position = self.quantile * (len(data) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return data[lower]
        weight = position - lower
        return data[lower] * (1 - weight) + data[upper] * weight


class RegressionEstimator(DemandEstimator):
    """Least-squares affine fit ``demand = base + slope * input_mb``.

    Maintains the normal-equation sufficient statistics incrementally, so
    memory is O(1) regardless of stream length.  Falls back to the mean
    when all observations share one input size (the system is singular).
    """

    def __init__(self, component: str, prior_gcycles: float = 1.0) -> None:
        super().__init__(component)
        self._n = 0
        self._sum_x = 0.0
        self._sum_y = 0.0
        self._sum_xx = 0.0
        self._sum_xy = 0.0
        self._sum_yy = 0.0
        self._prior = prior_gcycles

    def _update(self, observation: DemandObservation) -> None:
        x, y = observation.input_mb, observation.measured_gcycles
        self._n += 1
        self._sum_x += x
        self._sum_y += y
        self._sum_xx += x * x
        self._sum_xy += x * y
        self._sum_yy += y * y

    def _fit(self) -> tuple[float, float]:
        if self._n == 0:
            return self._prior, 0.0
        denom = self._n * self._sum_xx - self._sum_x ** 2
        if abs(denom) < 1e-12:  # all inputs identical: slope unidentifiable
            return self._sum_y / self._n, 0.0
        slope = (self._n * self._sum_xy - self._sum_x * self._sum_y) / denom
        base = (self._sum_y - slope * self._sum_x) / self._n
        # Demands are non-negative; clamp pathological fits.
        slope = max(slope, 0.0)
        base = max(base, 0.0)
        return base, slope

    def predict(self, input_mb: float) -> float:
        base, slope = self._fit()
        return max(base + slope * input_mb, 0.0)

    def profile(self) -> DemandProfile:
        base, slope = self._fit()
        uncertainty = 0.0
        if self._n > 2:
            mean_y = self._sum_y / self._n
            ss_tot = max(self._sum_yy - self._n * mean_y * mean_y, 0.0)
            # Residual sum of squares from the sufficient statistics.
            ss_res = max(
                self._sum_yy
                - 2 * (base * self._sum_y + slope * self._sum_xy)
                + self._n * base * base
                + 2 * base * slope * self._sum_x
                + slope * slope * self._sum_xx,
                0.0,
            )
            if mean_y > 0:
                uncertainty = math.sqrt(ss_res / self._n) / mean_y
        return DemandProfile(
            component=self.component,
            base_gcycles=base,
            per_mb_gcycles=slope,
            uncertainty=uncertainty,
            observation_count=self.observation_count,
        )


class BayesianLinearEstimator(DemandEstimator):
    """Bayesian affine regression with calibrated uncertainty.

    Conjugate normal model over weights ``w = (base, slope)`` with a
    Gaussian prior and (assumed-known) observation noise: the posterior
    stays Gaussian, so updates are exact 2x2 linear algebra and the
    *predictive* standard deviation is available in closed form — the
    quantity conservative consumers (deadline math, admission control)
    actually want, and which the point estimators can only fake.

    Parameters
    ----------
    prior_base_gcycles / prior_slope:
        Prior means for intercept and per-MB slope.
    prior_std:
        Prior standard deviation on both weights (weak by default).
    noise_std:
        Assumed observation noise (absolute, in gigacycles).
    """

    def __init__(
        self,
        component: str,
        prior_base_gcycles: float = 1.0,
        prior_slope: float = 0.0,
        prior_std: float = 10.0,
        noise_std: float = 0.5,
    ) -> None:
        super().__init__(component)
        if prior_std <= 0 or noise_std <= 0:
            raise ValueError("prior and noise stds must be > 0")
        self.noise_variance = noise_std ** 2
        # Posterior as precision form: Λ = S⁻¹ (2x2), b = Λ·μ (2-vector).
        precision0 = 1.0 / prior_std ** 2
        self._lambda = [[precision0, 0.0], [0.0, precision0]]
        self._b = [
            precision0 * prior_base_gcycles,
            precision0 * prior_slope,
        ]

    # -- linear algebra on 2x2 systems, kept dependency-free -----------------

    def _mean(self) -> tuple[float, float]:
        (a, b_), (c, d) = self._lambda
        det = a * d - b_ * c
        if det == 0:  # pragma: no cover - prior guarantees det > 0
            return self._b[0], self._b[1]
        inv = [[d / det, -b_ / det], [-c / det, a / det]]
        mu0 = inv[0][0] * self._b[0] + inv[0][1] * self._b[1]
        mu1 = inv[1][0] * self._b[0] + inv[1][1] * self._b[1]
        return mu0, mu1

    def _update(self, observation: DemandObservation) -> None:
        x = (1.0, observation.input_mb)
        weight = 1.0 / self.noise_variance
        for i in range(2):
            for j in range(2):
                self._lambda[i][j] += weight * x[i] * x[j]
            self._b[i] += weight * x[i] * observation.measured_gcycles

    def predict(self, input_mb: float) -> float:
        base, slope = self._mean()
        return max(base + slope * input_mb, 0.0)

    def predictive_std(self, input_mb: float) -> float:
        """Standard deviation of the posterior predictive at ``input_mb``."""
        x = (1.0, input_mb)
        (a, b_), (c, d) = self._lambda
        det = a * d - b_ * c
        inv = [[d / det, -b_ / det], [-c / det, a / det]]
        variance = sum(
            x[i] * inv[i][j] * x[j] for i in range(2) for j in range(2)
        )
        return math.sqrt(max(variance, 0.0) + self.noise_variance)

    def credible_upper(self, input_mb: float, sigmas: float = 2.0) -> float:
        """A conservative demand bound: mean + ``sigmas``·predictive std."""
        return self.predict(input_mb) + sigmas * self.predictive_std(input_mb)

    def profile(self) -> DemandProfile:
        base, slope = self._mean()
        mean = max(base + slope * 1.0, 1e-12)
        return DemandProfile(
            component=self.component,
            base_gcycles=max(base, 0.0),
            per_mb_gcycles=max(slope, 0.0),
            uncertainty=self.predictive_std(1.0) / mean,
            observation_count=self.observation_count,
        )


class DemandModel:
    """The per-application bundle of estimators the controller carries.

    ``estimator_factory`` builds one estimator per component; the default
    is the regression estimator, the best performer in ablation A2.
    """

    def __init__(
        self,
        app: AppGraph,
        estimator_factory: Optional[type] = None,
        **estimator_kwargs,
    ) -> None:
        factory = estimator_factory or RegressionEstimator
        self.app = app
        self.estimators: Dict[str, DemandEstimator] = {
            name: factory(name, **estimator_kwargs) for name in app.component_names
        }

    def observe(self, observation: DemandObservation) -> None:
        """Route one observation to its component's estimator."""
        if observation.component not in self.estimators:
            raise KeyError(
                f"unknown component {observation.component!r} "
                f"for app {self.app.name!r}"
            )
        self.estimators[observation.component].observe(observation)

    def observe_profile(
        self, observations: Dict[str, List[DemandObservation]]
    ) -> None:
        """Ingest a whole profiler output."""
        for rows in observations.values():
            for observation in rows:
                self.observe(observation)

    def ingest_history(
        self, observations: Iterable[DemandObservation], strict: bool = False
    ) -> int:
        """Feed monitored-history observations; returns how many landed.

        The observed-signal path (:mod:`repro.monitor.observed`) derives
        observations from telemetry rather than the oracle profiler, so
        records for components this app does not know (another app's
        functions sharing the platform) are skipped unless ``strict``.
        """
        ingested = 0
        for observation in observations:
            if observation.component not in self.estimators:
                if strict:
                    raise KeyError(
                        f"unknown component {observation.component!r} "
                        f"for app {self.app.name!r}"
                    )
                continue
            self.estimators[observation.component].observe(observation)
            ingested += 1
        return ingested

    def predict(self, component: str, input_mb: float) -> float:
        """Predicted demand of ``component`` at ``input_mb``."""
        return self.estimators[component].predict(input_mb)

    def profiles(self) -> Dict[str, DemandProfile]:
        """Export every component's :class:`DemandProfile`."""
        return {name: est.profile() for name, est in self.estimators.items()}

    def mean_relative_error(self, input_mb: float) -> float:
        """Mean |predicted-true|/true against the app's ground truth.

        Only meaningful in simulation, where the true coefficients are
        known; the ablation uses it as its accuracy metric.
        """
        errors = []
        for component in self.app.components:
            truth = component.work_for(input_mb)
            if truth <= 0:
                continue
            predicted = self.predict(component.name, input_mb)
            errors.append(abs(predicted - truth) / truth)
        return sum(errors) / len(errors) if errors else 0.0


__all__ = [
    "BayesianLinearEstimator",
    "DemandEstimator",
    "DemandModel",
    "DemandProfile",
    "EwmaEstimator",
    "MeanEstimator",
    "QuantileEstimator",
    "RegressionEstimator",
    "StaticEstimator",
]
