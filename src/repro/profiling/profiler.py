"""Demand measurement.

Real profilers observe wall-clock times and hardware counters and back out
work estimates; the dominant error sources are scheduling jitter and
input-dependent control flow.  We model both: every observation of a
component's true demand is multiplied by lognormal noise, and the true
demand itself varies with input size through the component's per-MB
coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.apps.graph import AppGraph, Component
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class DemandObservation:
    """One measured execution of one component."""

    component: str
    input_mb: float
    measured_gcycles: float
    at_time: float = 0.0

    def __post_init__(self) -> None:
        if self.input_mb < 0:
            raise ValueError("input size must be >= 0")
        if self.measured_gcycles < 0:
            raise ValueError("measured work must be >= 0")


class Profiler:
    """Offline profiler: sweeps input sizes, collects noisy observations.

    Parameters
    ----------
    rng:
        Randomness source for measurement noise.
    noise_sigma:
        Lognormal sigma of the multiplicative measurement noise; 0.1
        corresponds to roughly ±10% run-to-run variation, typical of
        userspace timing.
    """

    def __init__(self, rng: RngStream, noise_sigma: float = 0.1) -> None:
        if noise_sigma < 0:
            raise ValueError("noise sigma must be >= 0")
        self.rng = rng
        self.noise_sigma = noise_sigma

    def measure(
        self, component: Component, input_mb: float, at_time: float = 0.0
    ) -> DemandObservation:
        """One noisy measurement of ``component`` at ``input_mb``."""
        true_demand = component.work_for(input_mb)
        if self.noise_sigma > 0 and true_demand > 0:
            noise = self.rng.lognormal_bounded(1.0, self.noise_sigma, low=0.2, high=5.0)
        else:
            noise = 1.0
        return DemandObservation(
            component=component.name,
            input_mb=input_mb,
            measured_gcycles=true_demand * noise,
            at_time=at_time,
        )

    def profile(
        self,
        app: AppGraph,
        input_sizes_mb: Sequence[float],
        repetitions: int = 3,
    ) -> Dict[str, List[DemandObservation]]:
        """Profile every component over a grid of input sizes.

        Returns observations keyed by component name — the raw material
        the demand estimators in :mod:`repro.core.demand` consume.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if not input_sizes_mb:
            raise ValueError("at least one input size is required")
        observations: Dict[str, List[DemandObservation]] = {}
        for component in app.components:
            rows: List[DemandObservation] = []
            for size in input_sizes_mb:
                for _ in range(repetitions):
                    rows.append(self.measure(component, size))
            observations[component.name] = rows
        return observations


class OnlineProfiler:
    """Streams production observations into a sink (usually an estimator).

    Attach :meth:`record` wherever the controller completes a component
    execution; the sink receives a :class:`DemandObservation` built from
    the actual run.
    """

    def __init__(
        self,
        sink: Callable[[DemandObservation], None],
        rng: Optional[RngStream] = None,
        noise_sigma: float = 0.05,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise sigma must be >= 0")
        self.sink = sink
        self.rng = rng
        self.noise_sigma = noise_sigma
        self.observation_count = 0

    def record(
        self,
        component: Component,
        input_mb: float,
        at_time: float,
    ) -> DemandObservation:
        """Measure one production execution and push it to the sink."""
        true_demand = component.work_for(input_mb)
        noise = 1.0
        if self.rng is not None and self.noise_sigma > 0 and true_demand > 0:
            noise = self.rng.lognormal_bounded(
                1.0, self.noise_sigma, low=0.2, high=5.0
            )
        observation = DemandObservation(
            component=component.name,
            input_mb=input_mb,
            measured_gcycles=true_demand * noise,
            at_time=at_time,
        )
        self.sink(observation)
        self.observation_count += 1
        return observation


__all__ = ["DemandObservation", "OnlineProfiler", "Profiler"]
