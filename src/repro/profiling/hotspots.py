"""Deterministic hot-function profiling for simulator scenarios.

``repro profile`` answers "where do the cycles go?" for any sweep
scenario without leaving the CLI.  The catch with stock ``cProfile``
output is that sorting by time makes the row *order* jitter between
reruns — two functions microseconds apart swap places and a diff lights
up.  Scenarios are deterministic in their config, so their *call counts*
are exactly reproducible; this module therefore ranks by total call
count (ties broken by primitive calls, then name), which makes the
top-N table byte-stable across reruns while still carrying the measured
``tottime``/``cumtime`` columns as context.

The profiled region is only ``scenario(config)`` — import and
environment construction happen before the profiler is enabled.
"""

from __future__ import annotations

import cProfile
import gc
import pstats
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.metrics import Table
from repro.sweep.spec import resolve_scenario, scenario_ref

#: Shorthand scenario names resolve against the built-in scenario module.
DEFAULT_SCENARIO_MODULE = "repro.sweep.scenarios"


def expand_scenario_ref(name: str) -> str:
    """Allow bare names (``offload_run``) for the built-in scenarios."""
    return name if ":" in name else f"{DEFAULT_SCENARIO_MODULE}:{name}"


def _short_site(filename: str, lineno: int, funcname: str) -> str:
    """A stable, machine-independent label for one profiled function.

    Absolute paths differ between checkouts; everything from the last
    ``repro`` path component on is identical, so the label keeps that
    suffix (or the basename for code outside the package).  C builtins
    profile with filename ``~`` and keep just their function name.
    """
    if filename in ("~", ""):
        return funcname
    parts = filename.replace("\\", "/").split("/")
    if "repro" in parts:
        tail = "/".join(parts[len(parts) - parts[::-1].index("repro") - 1:])
    else:
        tail = parts[-1]
    return f"{tail}:{lineno}:{funcname}"


@dataclass(frozen=True)
class HotSpot:
    """One row of the hot-function table."""

    site: str
    ncalls: int
    primcalls: int
    tottime_s: float
    cumtime_s: float


@dataclass(frozen=True)
class ProfileResult:
    """Everything one profiled scenario run produced."""

    scenario: str
    config: Dict[str, Any]
    top: Tuple[HotSpot, ...]
    total_calls: int
    total_prim_calls: int
    wall_s: float
    value: Any  # the scenario's own return value

    def render(self) -> Table:
        table = Table(
            ["calls", "prim", "tottime s", "cumtime s", "function"],
            title=f"Hot functions — {self.scenario} "
                  f"({self.total_calls} calls, {self.wall_s:.3f} s)",
            precision=4,
        )
        for row in self.top:
            table.add_row(
                row.ncalls, row.primcalls, row.tottime_s, row.cumtime_s,
                row.site,
            )
        return table

    def to_dict(self) -> Dict[str, Any]:
        """JSON shape; call counts and row order are reproducible, the
        two time columns and ``wall_s`` are wall-clock noise."""
        return {
            "scenario": self.scenario,
            "config": self.config,
            "total_calls": self.total_calls,
            "total_prim_calls": self.total_prim_calls,
            "wall_s": self.wall_s,
            "top": [
                {
                    "site": row.site,
                    "ncalls": row.ncalls,
                    "primcalls": row.primcalls,
                    "tottime_s": row.tottime_s,
                    "cumtime_s": row.cumtime_s,
                }
                for row in self.top
            ],
        }


def profile_scenario(
    scenario: str,
    config: Optional[Dict[str, Any]] = None,
    top: int = 15,
    warmup: bool = True,
) -> ProfileResult:
    """Run ``scenario(config)`` under cProfile; return the stable top-N.

    ``scenario`` is a ``module:function`` reference or a bare built-in
    scenario name.  Rows are ranked by (total calls desc, primitive
    calls desc, site name) — fully determined by the scenario's config,
    so two runs of the same config produce identically ordered tables.

    ``warmup`` runs the scenario once *before* the profiler is enabled.
    A cold first run profiles lazy imports and one-time cache fills that
    never recur; the warm run is both the steady-state cost picture and
    the thing that is reproducible whether or not the scenario has run
    earlier in the same process.  The cyclic garbage collector is
    drained before the profiler starts and paused until it stops, so
    finalizers of unrelated garbage cannot land inside the window.
    """
    ref = expand_scenario_ref(scenario)
    fn = resolve_scenario(ref)
    config = dict(config or {})
    if warmup:
        fn(dict(config))

    # A cyclic-GC pass landing inside the profiled window runs Python
    # finalizers of whatever unrelated garbage the process accumulated
    # earlier, so its call counts would leak into the table.  Drain the
    # collector first and keep it off while the profiler is enabled.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        profiler = cProfile.Profile()
        profiler.enable()
        value = fn(config)
        profiler.disable()
    finally:
        if gc_was_enabled:
            gc.enable()

    stats = pstats.Stats(profiler)
    rows = []
    total_calls = 0
    total_prim = 0
    for (filename, lineno, funcname), entry in stats.stats.items():
        primcalls, ncalls, tottime, cumtime = entry[:4]
        total_calls += ncalls
        total_prim += primcalls
        rows.append(
            HotSpot(
                site=_short_site(filename, lineno, funcname),
                ncalls=ncalls,
                primcalls=primcalls,
                tottime_s=tottime,
                cumtime_s=cumtime,
            )
        )
    rows.sort(key=lambda r: (-r.ncalls, -r.primcalls, r.site))
    return ProfileResult(
        scenario=scenario_ref(ref),
        config=config,
        top=tuple(rows[:top]),
        total_calls=total_calls,
        total_prim_calls=total_prim,
        wall_s=getattr(stats, "total_tt", 0.0),
        value=value,
    )


__all__ = [
    "HotSpot",
    "ProfileResult",
    "expand_scenario_ref",
    "profile_scenario",
]
