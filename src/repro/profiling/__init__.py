"""Profiling substrate: measuring computational demands.

Contribution C1 ("determine computational demands") needs measurements to
learn from.  The :class:`Profiler` runs an application's components over a
set of input sizes and records noisy demand observations — the simulation
stand-in for instrumented profiling runs in a CI environment.  The
:class:`OnlineProfiler` harvests the same observations from production
executions so estimators keep learning after deployment.
"""

from repro.profiling.profiler import (
    DemandObservation,
    OnlineProfiler,
    Profiler,
)

__all__ = ["DemandObservation", "OnlineProfiler", "Profiler"]
