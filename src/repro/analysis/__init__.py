"""Post-run analysis and planning calculators.

Downstream users keep re-deriving the same quantities from reports and
planning models; this package provides them directly:

* :func:`crossover_bandwidth` — the uplink rate at which offloading
  starts beating local execution (the analytic form of benchmark F1);
* :func:`edge_breakeven_rate` — the workload intensity at which a
  provisioned edge node becomes cheaper than serverless (F5b's knee);
* :func:`compare_reports` / :func:`savings_table` — relative deltas
  between policy runs;
* :func:`energy_summary` — fleet-level per-activity energy aggregation.
"""

from repro.analysis.calculators import (
    compare_reports,
    crossover_bandwidth,
    edge_breakeven_rate,
    energy_summary,
    savings_table,
)

__all__ = [
    "compare_reports",
    "crossover_bandwidth",
    "edge_breakeven_rate",
    "energy_summary",
    "savings_table",
]
