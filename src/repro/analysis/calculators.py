"""Breakeven calculators and report comparison helpers."""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.apps.graph import AppGraph
from repro.core.controller import ControllerReport
from repro.core.partitioning import (
    ObjectiveWeights,
    Partition,
    PartitionContext,
    evaluate_partition,
)
from repro.edge.node import EdgeNodeSpec
from repro.metrics import Table
from repro.serverless.billing import BillingModel


def _objective_at(
    app: AppGraph,
    input_mb: float,
    uplink_bps: float,
    partition: Partition,
    weights: ObjectiveWeights,
    ue_cycles_per_second: float,
) -> float:
    work = {c.name: c.work_for(input_mb) for c in app.components}
    ctx = PartitionContext(
        app=app,
        input_mb=input_mb,
        work=work,
        uplink_bps=uplink_bps,
        downlink_bps=uplink_bps * 4,
        ue_cycles_per_second=ue_cycles_per_second,
        weights=weights,
    )
    return evaluate_partition(ctx, partition).objective


def crossover_bandwidth(
    app: AppGraph,
    input_mb: float = 4.0,
    weights: Optional[ObjectiveWeights] = None,
    lo_bps: float = 1e3,
    hi_bps: float = 1e9,
    ue_cycles_per_second: float = 1.2e9,
    tolerance: float = 1e-3,
) -> Optional[float]:
    """Uplink rate (bytes/s) where full-offload matches local-only.

    Uses the planning model, bisecting on the objective difference
    ``full_offload − local_only`` (which is monotone decreasing in
    bandwidth: transfers get cheaper, local does not change).  Returns
    ``None`` when one side dominates over the whole range — e.g. a
    compute-heavy app whose offload wins even at ``lo_bps``.
    """
    weights = weights or ObjectiveWeights()
    local = Partition.local_only(app)
    full = Partition.full_offload(app)

    def gap(bps: float) -> float:
        return _objective_at(
            app, input_mb, bps, full, weights, ue_cycles_per_second
        ) - _objective_at(
            app, input_mb, bps, local, weights, ue_cycles_per_second
        )

    gap_lo, gap_hi = gap(lo_bps), gap(hi_bps)
    if gap_lo <= 0 or gap_hi >= 0:
        return None  # no crossover inside the range
    lo, hi = lo_bps, hi_bps
    while hi / lo > 1 + tolerance:
        mid = math.sqrt(lo * hi)  # bisect in log space
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


def edge_breakeven_rate(
    app: AppGraph,
    input_mb: float = 4.0,
    edge_spec: Optional[EdgeNodeSpec] = None,
    billing: Optional[BillingModel] = None,
    memory_mb: float = 1769.0,
) -> float:
    """Jobs/hour above which a provisioned edge node is cheaper than
    serverless for this app's offloadable work.

    Serverless bills per job; the edge bills per hour regardless.  The
    breakeven is ``hourly_cost / serverless_cost_per_job``.  (Capacity
    limits are ignored — the returned rate may exceed what one node can
    actually serve; compare against ``edge_spec`` throughput separately.)
    """
    edge_spec = edge_spec or EdgeNodeSpec()
    billing = billing or BillingModel()
    per_job = 0.0
    for component in app.components:
        if not component.offloadable:
            continue
        work = component.work_for(input_mb)
        from repro.serverless.function import execution_time

        duration = execution_time(work, memory_mb, component.parallel_fraction)
        per_job += billing.invocation_cost(duration, memory_mb).total
    if per_job <= 0:
        return math.inf
    return edge_spec.hourly_cost_usd / per_job


def compare_reports(
    baseline: ControllerReport, other: ControllerReport
) -> Dict[str, float]:
    """Relative deltas of ``other`` vs ``baseline`` (negative = lower).

    Keys: ``energy``, ``cost``, ``response`` (each ``other/baseline − 1``)
    and ``miss_delta`` (absolute difference in miss rate).
    """

    def ratio(a: float, b: float) -> float:
        if b == 0:
            return math.inf if a > 0 else 0.0
        return a / b - 1.0

    return {
        "energy": ratio(other.total_ue_energy_j, baseline.total_ue_energy_j),
        "cost": ratio(other.total_cloud_cost_usd, baseline.total_cloud_cost_usd),
        "response": ratio(other.mean_response_s, baseline.mean_response_s),
        "miss_delta": other.deadline_miss_rate - baseline.deadline_miss_rate,
    }


def energy_summary(report: ControllerReport) -> Dict[str, float]:
    """Per-activity energy totals across every completed job."""
    totals: Dict[str, float] = {}
    for result in report.results:
        for kind, joules in result.energy_breakdown.items():
            totals[kind] = totals.get(kind, 0.0) + joules
    return totals


def savings_table(
    reports: Mapping[str, ControllerReport],
    baseline: str,
    title: str = "Policy comparison",
) -> Table:
    """A table of each policy's deltas against ``baseline``."""
    if baseline not in reports:
        raise KeyError(f"baseline {baseline!r} not among reports")
    table = Table(
        ["policy", "energy Δ%", "cost Δ%", "response Δ%", "miss Δpp"],
        title=title,
        precision=1,
    )
    base = reports[baseline]
    for name, report in reports.items():
        deltas = compare_reports(base, report)
        table.add_row(
            name + (" (baseline)" if name == baseline else ""),
            100 * deltas["energy"],
            100 * deltas["cost"] if math.isfinite(deltas["cost"]) else None,
            100 * deltas["response"],
            100 * deltas["miss_delta"],
        )
    return table


__all__ = [
    "compare_reports",
    "crossover_bandwidth",
    "edge_breakeven_rate",
    "energy_summary",
    "savings_table",
]
