"""Declarative sweep specifications.

A sweep names a *scenario* — an importable function that takes one JSON
config dict and returns a JSON-serialisable result — plus the configs to
feed it: a shared ``base`` dict, a ``grid`` of parameter axes expanded as
a cartesian product, optional explicit ``points``, and a ``seeds``
replication count.  Everything is canonicalised:

* :func:`config_key` — the canonical JSON of a config, the sweep's sort
  and merge key (completion order never leaks into output);
* :func:`config_hash` — SHA-256 over scenario name + config key, the
  on-disk cache key, so re-running a grown grid only executes the delta.

Scenario functions referenced as ``"package.module:function"`` strings
stay importable from worker processes; bare callables are accepted for
in-process (single-worker) runs.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Sequence, Union

ScenarioRef = Union[str, Callable[[Dict[str, Any]], Any]]


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to canonical JSON: sorted keys, compact
    separators, non-finite floats rejected.  Byte-identical for equal
    values regardless of dict insertion order."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def config_key(config: Mapping[str, Any]) -> str:
    """The canonical merge/sort key of one scenario config."""
    return canonical_json(dict(config))


def config_hash(scenario: str, config: Mapping[str, Any]) -> str:
    """SHA-256 cache key of (scenario name, canonical config)."""
    digest = hashlib.sha256()
    digest.update(scenario.encode("utf-8"))
    digest.update(b"\n")
    digest.update(config_key(config).encode("utf-8"))
    return digest.hexdigest()


def scenario_ref(scenario: ScenarioRef) -> str:
    """The ``module:qualname`` name of a scenario (cache-key identity)."""
    if isinstance(scenario, str):
        if ":" not in scenario:
            raise ValueError(
                f"scenario reference {scenario!r} must look like "
                "'package.module:function'"
            )
        return scenario
    return f"{scenario.__module__}:{scenario.__qualname__}"


def resolve_scenario(scenario: ScenarioRef) -> Callable[[Dict[str, Any]], Any]:
    """Import a ``module:qualname`` reference (callables pass through)."""
    if callable(scenario):
        return scenario
    module_name, _, qualname = scenario_ref(scenario).partition(":")
    module = importlib.import_module(module_name)
    try:
        target = functools.reduce(getattr, qualname.split("."), module)
    except AttributeError as error:
        raise ValueError(
            f"module {module_name!r} has no attribute {qualname!r}"
        ) from error
    if not callable(target):
        raise TypeError(f"scenario {scenario!r} resolved to non-callable {target!r}")
    return target


@dataclass(frozen=True)
class SweepSpec:
    """What to run: one scenario over a deterministic set of configs.

    Parameters
    ----------
    scenario:
        ``"module:function"`` reference (required for multi-worker runs)
        or a callable.
    base:
        Key/values merged into every config.
    grid:
        Parameter axes; the cartesian product is taken over the axes in
        sorted-name order, values in the given order.
    points:
        Explicit config dicts, each merged over ``base`` (listed before
        the grid's product).
    seeds:
        Replication count; when > 1 every config is repeated with
        ``seed_key`` set to ``0 .. seeds-1``.
    """

    scenario: ScenarioRef
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    points: Sequence[Mapping[str, Any]] = ()
    seeds: int = 1
    seed_key: str = "seed"

    def __post_init__(self) -> None:
        scenario_ref(self.scenario)  # validate the reference shape early
        if self.seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {self.seeds}")
        for name, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise TypeError(
                    f"grid axis {name!r} must be a sequence of values, "
                    f"got {values!r}"
                )

    @property
    def scenario_name(self) -> str:
        """The scenario's ``module:qualname`` reference."""
        return scenario_ref(self.scenario)

    def expand(self) -> List[Dict[str, Any]]:
        """Every config of the sweep, duplicates removed, in declaration
        order (points first, then the grid product, seeds innermost)."""
        bases: List[Dict[str, Any]] = [
            {**self.base, **point} for point in self.points
        ]
        if self.grid:
            names = sorted(self.grid)
            for combo in itertools.product(*(self.grid[n] for n in names)):
                bases.append({**self.base, **dict(zip(names, combo))})
        if not self.points and not self.grid:
            bases.append(dict(self.base))
        configs: List[Dict[str, Any]] = []
        for base in bases:
            if self.seeds > 1:
                configs.extend(
                    {**base, self.seed_key: seed} for seed in range(self.seeds)
                )
            else:
                configs.append(base)
        seen: set[str] = set()
        unique: List[Dict[str, Any]] = []
        for config in configs:
            key = config_key(config)
            if key not in seen:
                seen.add(key)
                unique.append(config)
        return unique

    def to_dict(self) -> Dict[str, Any]:
        """JSON form of the spec (scenario stored by reference)."""
        return {
            "scenario": self.scenario_name,
            "base": dict(self.base),
            "grid": {name: list(values) for name, values in self.grid.items()},
            "points": [dict(point) for point in self.points],
            "seeds": self.seeds,
            "seed_key": self.seed_key,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict`."""
        return SweepSpec(
            scenario=data["scenario"],
            base=data.get("base", {}),
            grid=data.get("grid", {}),
            points=tuple(data.get("points", ())),
            seeds=int(data.get("seeds", 1)),
            seed_key=data.get("seed_key", "seed"),
        )

    @staticmethod
    def from_file(path: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a JSON file."""
        return SweepSpec.from_dict(json.loads(Path(path).read_text()))


__all__ = [
    "SweepSpec",
    "canonical_json",
    "config_hash",
    "config_key",
    "resolve_scenario",
    "scenario_ref",
]
