"""Parallel scenario sweeps: fan out, merge deterministically, cache.

The evaluation side of the reproduction is grid-shaped — parameter axes
crossed with seed replications, every cell an independent simulation.
:class:`SweepSpec` declares such a grid, :class:`SweepRunner` fans it out
across worker processes, merges results ordered by canonical config key
(byte-identical output regardless of worker count), and caches completed
cells on disk keyed by config hash so re-runs only execute the delta.

Quickstart::

    from repro.sweep import SweepRunner, SweepSpec

    spec = SweepSpec(
        scenario="repro.sweep.scenarios:offload_run",
        base={"app": "photo_backup", "jobs": 4},
        grid={"connectivity": ["3g", "4g", "wifi"]},
        seeds=3,
    )
    result = SweepRunner(spec, workers=4, cache_dir=".sweep_cache").run()
    print(result.merged_json())

The same flow is exposed on the command line as ``python -m repro sweep``.
"""

from repro.sweep.runner import (
    DEFAULT_CACHE_DIR,
    SweepEntry,
    SweepProgress,
    SweepResult,
    SweepRunner,
    run_sweep,
)
from repro.sweep.spec import (
    SweepSpec,
    canonical_json,
    config_hash,
    config_key,
    resolve_scenario,
    scenario_ref,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SweepEntry",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "canonical_json",
    "config_hash",
    "config_key",
    "resolve_scenario",
    "run_sweep",
    "scenario_ref",
]
