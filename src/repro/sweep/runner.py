"""Parallel sweep execution: fan out, merge deterministically, cache.

:class:`SweepRunner` runs every config of a :class:`~repro.sweep.spec.SweepSpec`
— across ``multiprocessing`` worker processes when ``workers > 1`` — and
returns a :class:`SweepResult` whose entries are ordered by canonical
config key.  Completion order never influences the output, so the merged
JSON is byte-identical regardless of the worker count.

Results are JSON-normalised (round-tripped through canonical JSON) the
moment they arrive, so a result served from the on-disk cache is
indistinguishable from a freshly executed one.  The cache keys one file
per config under ``cache_dir`` by :func:`~repro.sweep.spec.config_hash`;
re-running a grown grid executes only the delta.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.perf.meter import RuntimeMeter
from repro.sweep.spec import (
    SweepSpec,
    canonical_json,
    config_hash,
    config_key,
    resolve_scenario,
    scenario_ref,
)

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".sweep_cache"

_MISS = object()


@dataclass(frozen=True)
class SweepEntry:
    """One completed scenario run inside a sweep."""

    key: str
    digest: str
    config: Dict[str, Any]
    result: Any
    cached: bool


@dataclass(frozen=True)
class SweepProgress:
    """One live heartbeat: a config just finished (or hit the cache).

    Fired in completion order — which is *not* deterministic across
    worker counts — so heartbeats are for liveness display only and
    never feed the merged document.  ``wall_s`` is wall-clock time since
    the sweep started.
    """

    key: str
    config: Dict[str, Any]
    result: Any
    completed: int
    total: int
    cached: bool
    wall_s: float


class SweepResult:
    """The merged outcome of one sweep, ordered by canonical config key."""

    def __init__(
        self,
        scenario: str,
        entries: Iterable[SweepEntry],
        meter: Optional[RuntimeMeter] = None,
    ) -> None:
        self.scenario = scenario
        self.entries: List[SweepEntry] = sorted(entries, key=lambda e: e.key)
        self._by_key = {entry.key: entry for entry in self.entries}
        #: The runner's self-metering (cache hits/misses, wall).  Kept out
        #: of :meth:`merged` — which is byte-compared across cache states —
        #: and surfaced through :meth:`manifest` instead.
        self.meter = meter

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SweepEntry]:
        return iter(self.entries)

    @property
    def executed(self) -> int:
        """How many configs actually ran (cache misses)."""
        return sum(1 for entry in self.entries if not entry.cached)

    @property
    def cached(self) -> int:
        """How many configs were served from the cache."""
        return sum(1 for entry in self.entries if entry.cached)

    def result_for(self, config: Mapping[str, Any]) -> Any:
        """The result of one config (raises ``KeyError`` if absent)."""
        return self._by_key[config_key(config)].result

    def results_for(self, configs: Iterable[Mapping[str, Any]]) -> List[Any]:
        """Results in the order ``configs`` is given — the bridge between
        the key-ordered merge and a benchmark's presentation order."""
        return [self.result_for(config) for config in configs]

    def merged(self) -> Dict[str, Any]:
        """The canonical merged document: every (config, result) pair in
        key order.  Worker count, timing, and cache state are deliberately
        excluded so the document is byte-stable across runs."""
        return {
            "scenario": self.scenario,
            "runs": [
                {"config": entry.config, "result": entry.result}
                for entry in self.entries
            ],
        }

    def merged_json(self) -> str:
        """Canonical JSON of :meth:`merged`, newline-terminated."""
        return canonical_json(self.merged()) + "\n"

    def manifest(self) -> Dict[str, Any]:
        """Execution manifest: per-config cache keys and hit/miss state."""
        meter = self.meter
        return {
            "scenario": self.scenario,
            "total": len(self.entries),
            "executed": self.executed,
            "cached": self.cached,
            "meter": meter.snapshot() if meter is not None else {},
            "timings": meter.timings() if meter is not None else {},
            "entries": [
                {
                    "key": entry.key,
                    "hash": entry.digest,
                    "cached": entry.cached,
                }
                for entry in self.entries
            ],
        }


def _pool_initializer(parent_path: List[str]) -> None:
    """Mirror the parent's ``sys.path`` so scenario modules that live
    outside installed packages (benchmarks, tools) stay importable."""
    for entry in reversed(parent_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def _run_point(task: Tuple[str, Dict[str, Any]]) -> Tuple[str, str]:
    """Worker body: resolve the scenario, run one config, return the
    result as canonical JSON text (normalised at the source)."""
    ref, config = task
    scenario = resolve_scenario(ref)
    return config_key(config), canonical_json(scenario(dict(config)))


class SweepRunner:
    """Executes a :class:`SweepSpec` and merges the results.

    Parameters
    ----------
    spec:
        What to run.
    workers:
        Worker processes; ``1`` (the default) runs in-process.  A bare
        callable scenario is only allowed in-process — multi-worker runs
        need an importable ``module:function`` reference.
    cache_dir:
        Directory for the per-config result cache; ``None`` disables
        caching entirely.
    progress:
        Optional callback fired with a :class:`SweepProgress` as each
        config completes (cache hits fire immediately).  Completion
        order is nondeterministic under a pool; the callback must not
        raise and must not influence results.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        cache_dir: Optional[str | Path] = None,
        progress: Optional[Callable[[SweepProgress], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.progress = progress
        #: Runner self-metering: configs, cache hit/miss, sweep wall.
        self.meter = RuntimeMeter()

    def run(self) -> SweepResult:
        """Execute every non-cached config and return the merged result."""
        started = time.perf_counter()
        ref = self.spec.scenario_name
        keyed = [
            (config_key(config), config_hash(ref, config), config)
            for config in self.spec.expand()
        ]
        total = len(keyed)
        config_by_key = {key: config for key, _, config in keyed}
        completed = 0

        def _notify(key: str, result: Any, cached: bool) -> None:
            nonlocal completed
            completed += 1
            if self.progress is not None:
                self.progress(
                    SweepProgress(
                        key=key,
                        config=config_by_key[key],
                        result=result,
                        completed=completed,
                        total=total,
                        cached=cached,
                        wall_s=time.perf_counter() - started,
                    )
                )

        meter = self.meter
        meter.sweep_configs += total
        results: Dict[str, Any] = {}
        cached_keys: set[str] = set()
        pending: List[Tuple[str, str, Dict[str, Any]]] = []
        for key, digest, config in keyed:
            hit = self._cache_load(digest)
            if hit is not _MISS:
                results[key] = hit
                cached_keys.add(key)
                meter.sweep_cache_hits += 1
                _notify(key, hit, True)
            else:
                pending.append((key, digest, config))
        meter.sweep_cache_misses += len(pending)

        if pending:
            fresh = self._execute(
                ref,
                [config for _, _, config in pending],
                on_result=lambda key, result: _notify(key, result, False),
            )
            for key, digest, config in pending:
                results[key] = fresh[key]
                self._cache_store(digest, config, fresh[key])

        entries = [
            SweepEntry(
                key=key,
                digest=digest,
                config=config,
                result=results[key],
                cached=key in cached_keys,
            )
            for key, digest, config in keyed
        ]
        if meter.enabled:
            meter.sweep_wall_s += time.perf_counter() - started
        return SweepResult(ref, entries, meter=meter)

    # -- execution ---------------------------------------------------------

    def _execute(
        self,
        ref: str,
        configs: List[Dict[str, Any]],
        on_result: Optional[Callable[[str, Any], None]] = None,
    ) -> Dict[str, Any]:
        if self.workers == 1 or len(configs) == 1:
            scenario = resolve_scenario(self.spec.scenario)
            out: Dict[str, Any] = {}
            for config in configs:
                key = config_key(config)
                out[key] = json.loads(canonical_json(scenario(dict(config))))
                if on_result is not None:
                    on_result(key, out[key])
            return out
        if callable(self.spec.scenario) and not isinstance(self.spec.scenario, str):
            # Re-resolvable by name in the worker; the ref was validated
            # by scenario_ref, but a lambda/closure would not import.
            resolve_scenario(ref)
        tasks = [(ref, config) for config in configs]
        processes = min(self.workers, len(tasks))
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes,
            initializer=_pool_initializer,
            initargs=(list(sys.path),),
        ) as pool:
            # imap_unordered keeps workers saturated; keying by canonical
            # config key makes the collection order-independent.
            out = {}
            for key, text in pool.imap_unordered(_run_point, tasks):
                out[key] = json.loads(text)
                if on_result is not None:
                    on_result(key, out[key])
            return out

    # -- cache -------------------------------------------------------------

    def _cache_path(self, digest: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.json"

    def _cache_load(self, digest: str) -> Any:
        path = self._cache_path(digest)
        if path is None or not path.exists():
            return _MISS
        try:
            return json.loads(path.read_text())["result"]
        except (OSError, ValueError, KeyError):
            return _MISS  # unreadable entries are re-executed, not fatal

    def _cache_store(
        self, digest: str, config: Mapping[str, Any], result: Any
    ) -> None:
        path = self._cache_path(digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_json(
            {"scenario": self.spec.scenario_name, "config": dict(config),
             "result": result}
        )
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload + "\n")
        tmp.replace(path)  # atomic: concurrent sweeps never see partials


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[str | Path] = None,
    progress: Optional[Callable[[SweepProgress], None]] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        spec, workers=workers, cache_dir=cache_dir, progress=progress
    ).run()


__all__ = [
    "DEFAULT_CACHE_DIR",
    "SweepEntry",
    "SweepProgress",
    "SweepResult",
    "SweepRunner",
    "run_sweep",
]
