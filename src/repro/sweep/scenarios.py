"""Built-in sweep scenarios.

A scenario is a module-level function taking one JSON config dict and
returning a JSON-serialisable result.  Scenarios must be deterministic in
their config — all randomness seeded from it — because the sweep cache
and the byte-identical merge guarantee both assume that equal configs
mean equal results.

These are referenced from the CLI as e.g.
``repro.sweep.scenarios:offload_run``; projects add their own by pointing
the ``sweep`` subcommand at any importable function of the same shape.
"""

from __future__ import annotations

import math
from typing import Any, Dict


def _finite(value: float) -> Any:
    """JSON-safe float: canonical JSON rejects NaN/inf, so map them to
    ``None`` rather than poisoning a whole merged document."""
    return value if math.isfinite(value) else None


def offload_run(config: Dict[str, Any]) -> Dict[str, Any]:
    """One end-to-end controller workload run (the default CLI scenario).

    Config keys (all optional): ``app``, ``seed``, ``connectivity``,
    ``input_mb``, ``jobs``, ``spacing_s``, ``slack_s``, ``scheduler``
    (``eager`` | ``edf`` | ``batcher``), ``window_s``, ``weights``
    (``balanced`` | ``interactive`` | ``non-time-critical``).
    """
    from repro.apps.catalog import CATALOG
    from repro.core.controller import Environment, OffloadController
    from repro.core.partitioning import ObjectiveWeights
    from repro.core.scheduler import DeadlineBatcher, EagerScheduler, EdfScheduler
    from repro.apps.jobs import Job

    app_name = config.get("app", "photo_backup")
    if app_name not in CATALOG:
        raise ValueError(f"unknown app {app_name!r}; choose from {sorted(CATALOG)}")
    seed = int(config.get("seed", 0))
    input_mb = float(config.get("input_mb", 4.0))
    n_jobs = int(config.get("jobs", 5))
    spacing_s = float(config.get("spacing_s", 60.0))
    slack_s = float(config.get("slack_s", 3600.0))

    schedulers = {
        "eager": EagerScheduler,
        "edf": EdfScheduler,
        "batcher": lambda: DeadlineBatcher(
            window_s=float(config.get("window_s", 300.0))
        ),
    }
    scheduler_name = config.get("scheduler", "eager")
    if scheduler_name not in schedulers:
        raise ValueError(
            f"unknown scheduler {scheduler_name!r}; "
            f"choose from {sorted(schedulers)}"
        )
    weights = {
        "balanced": ObjectiveWeights,
        "interactive": ObjectiveWeights.interactive,
        "non-time-critical": ObjectiveWeights.non_time_critical,
    }
    weights_name = config.get("weights", "non-time-critical")
    if weights_name not in weights:
        raise ValueError(
            f"unknown weights {weights_name!r}; choose from {sorted(weights)}"
        )

    env = Environment.build(
        seed=seed, connectivity=config.get("connectivity", "4g")
    )
    controller = OffloadController(
        env,
        CATALOG[app_name](),
        scheduler=schedulers[scheduler_name](),
        weights=weights[weights_name](),
    )
    controller.profile_offline()
    controller.plan(input_mb=input_mb)
    jobs = [
        Job(
            controller.app,
            input_mb=input_mb,
            released_at=spacing_s * i,
            deadline=spacing_s * i + slack_s,
        )
        for i in range(n_jobs)
    ]
    report = controller.run_workload(jobs)
    assert controller.partition is not None
    return {
        "jobs_completed": report.jobs_completed,
        "failures": len(report.failures),
        "deadline_miss_rate": report.deadline_miss_rate,
        "mean_response_s": _finite(report.mean_response_s),
        "p95_response_s": _finite(report.percentile_response_s(95)),
        "ue_energy_j": report.total_ue_energy_j,
        "cloud_cost_usd": report.total_cloud_cost_usd,
        "cold_start_fraction": env.platform.cold_start_fraction(),
        "cloud_components": sorted(controller.partition.cloud),
        "sim_events": env.sim.events_processed,
        "sim_end_s": env.sim.now,
    }


def monitored_run(config: Dict[str, Any]) -> Dict[str, Any]:
    """The monitored golden scenario as a sweep cell.

    Config keys (all optional): ``faults`` (default true), ``seed``.
    Returns the canonical alert log plus its digest, so a sweep across
    worker counts proves the monitoring plane's byte-identity claim —
    the merged JSON must not depend on scheduling of worker processes.
    """
    import hashlib

    from repro.testing.golden import GOLDEN_SEED, run_monitored_scenario

    result = run_monitored_scenario(
        bool(config.get("faults", True)),
        seed=int(config.get("seed", GOLDEN_SEED)),
    )
    log = result["alert_log"]
    return {
        "faults": result["with_faults"],
        "seed": result["seed"],
        "jobs_completed": result["jobs_completed"],
        "failures": result["failures"],
        "sim_end_s": result["sim_end_s"],
        "fired_slos": result["fired_slos"],
        "alert_log": log,
        "alert_digest": hashlib.sha256(log.encode("utf-8")).hexdigest(),
        "health": result["health"],
    }


def kernel_smoke(config: Dict[str, Any]) -> Dict[str, Any]:
    """A pure-kernel micro-simulation — fast enough for smoke tests.

    Spawns ``processes`` sleepers with staggered timeouts, interrupts
    every ``interrupt_every``-th one, and reports event counts plus a
    delivery log.  Exercises exactly the interrupt path the kernel
    regression suite guards, so a sweep smoke doubles as a kernel check.
    """
    from repro.sim import Interrupt, Simulator

    n_processes = int(config.get("processes", 8))
    interrupt_every = int(config.get("interrupt_every", 3))
    base_delay = float(config.get("base_delay_s", 5.0))
    sim = Simulator()
    deliveries: list[str] = []

    def sleeper(sim, index):
        try:
            yield sim.timeout(base_delay * (index + 1))
            deliveries.append(f"done:{index}")
        except Interrupt:
            deliveries.append(f"interrupt:{index}")
        yield sim.timeout(1.0)
        deliveries.append(f"after:{index}")

    def killer(sim, victims):
        yield sim.timeout(base_delay / 2)
        for victim in victims:
            victim.interrupt("smoke")

    processes = [sim.spawn(sleeper(sim, i), name=f"sleeper.{i}") for i in range(n_processes)]
    victims = [p for i, p in enumerate(processes) if interrupt_every and i % interrupt_every == 0]
    sim.spawn(killer(sim, victims))
    sim.run()
    return {
        "processes": n_processes,
        "interrupted": len(victims),
        "events_processed": sim.events_processed,
        "finished_at": sim.now,
        "deliveries": deliveries,
    }


def fleet_shard(config: Dict[str, Any]) -> Dict[str, Any]:
    """One fleet shard as a sweep cell (alias for the sharded runner's
    scenario, so ``repro sweep`` can address shards directly).

    Config keys: ``spec`` (a ``ShardedFleetSpec.to_dict()``), ``zones``
    (zone names on this shard), ``shard`` (index).  See
    :func:`repro.fleet.sharded.shard_run`.
    """
    from repro.fleet.sharded import shard_run

    return shard_run(config)


__all__ = ["fleet_shard", "kernel_smoke", "monitored_run", "offload_run"]
