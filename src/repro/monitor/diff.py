"""Cross-run comparison of trace and report files (``repro diff``).

Loads two artifacts of the same kind — Chrome trace-event exports
(``repro run --trace``) or saved controller reports (``repro run
--save-report``) — reduces each to a flat metric profile, and compares
them metric by metric:

* a **trace** profile carries per-phase attributed seconds
  (``phase/upload``, ``phase/execute``, …), job count, total makespan,
  total cloud cost (from job spans) and wasted spend;
* a **report** profile carries the saved summary scalars (jobs
  completed, failures, deadline-miss rate, mean response, energy,
  cost);
* a **fleet** profile (``repro fleet --out``) carries the merged
  document's aggregates;
* a **fleet-health** profile (``repro fleet --health-out``) carries the
  counter rollups, alert counts, and per-zone health tallies.

Each metric knows its good direction (``jobs_completed`` up, everything
else down), so a *regression* is a worsening by at least
``threshold`` (relative) **and** ``abs_floor`` (absolute — float noise
is not a regression).  The CLI maps regressions to a non-zero exit for
use as a cheap perf gate locally and in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

__all__ = [
    "DiffRow",
    "TraceDiff",
    "diff_files",
    "diff_profiles",
    "load_profile",
]

#: Metrics where a larger value is an improvement, not a regression.
_HIGHER_IS_BETTER = frozenset(
    {"jobs", "jobs_completed", "jobs_submitted", "zones_ok"}
)

#: Schema tags of the fleet artifacts (kept literal: importing the fleet
#: layer from here would cycle through ``repro.monitor``'s package init).
_FLEET_SCHEMA = "repro.fleet.sharded/1"
_FLEET_HEALTH_SCHEMA = "repro.monitor.fleet/1"


@dataclass(frozen=True)
class Profile:
    """One artifact reduced to comparable scalars."""

    kind: str  # "trace" | "report"
    path: str
    metrics: Dict[str, float]


@dataclass(frozen=True)
class DiffRow:
    """One metric compared across the two artifacts."""

    metric: str
    before: float
    after: float
    delta: float
    relative: float  # delta / |before|, inf when before == 0 and delta != 0
    regressed: bool


@dataclass
class TraceDiff:
    """The full comparison of two artifacts."""

    kind: str
    before_path: str
    after_path: str
    rows: List[DiffRow]
    threshold: float

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "kind": self.kind,
            "before": self.before_path,
            "after": self.after_path,
            "threshold": self.threshold,
            "ok": self.ok,
            "rows": [
                {
                    "metric": row.metric,
                    "before": row.before,
                    "after": row.after,
                    "delta": row.delta,
                    "relative": row.relative,
                    "regressed": row.regressed,
                }
                for row in self.rows
            ],
        }


def load_profile(path: Union[str, Path]) -> Profile:
    """Reduce one artifact file to a :class:`Profile`.

    Raises ``OSError`` for unreadable paths, ``json.JSONDecodeError``
    for truncated/non-JSON content, and ``ValueError`` for JSON that is
    neither a Chrome trace nor a saved report — the CLI turns each into
    a one-line error.
    """
    text = Path(path).read_text(encoding="utf-8")
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a trace, report, or fleet file")
    if "traceEvents" in payload:
        return _trace_profile(path)
    if "summary" in payload and payload.get("version") is not None:
        return _report_profile(path, payload)
    if payload.get("schema") == _FLEET_SCHEMA:
        return _fleet_profile(path, payload)
    if payload.get("schema") == _FLEET_HEALTH_SCHEMA:
        return _fleet_health_profile(path, payload)
    raise ValueError(f"{path}: not a trace, report, or fleet file")


def _trace_profile(path: Union[str, Path]) -> Profile:
    from repro.telemetry.exporters import load_chrome_trace
    from repro.telemetry.report import build_report
    from repro.telemetry.tracer import PHASE_JOB

    spans, metadata, metrics = load_chrome_trace(path)
    report = build_report(spans, metadata=metadata, metrics=metrics)
    out: Dict[str, float] = {}
    for phase, seconds in report.phase_totals().items():
        out[f"phase/{phase}"] = seconds
    out["jobs"] = float(len(report.jobs))
    out["makespan_total_s"] = sum(job.makespan for job in report.jobs)
    out["wasted_usd"] = sum(
        usd for _, usd in report.wasted_totals().values()
    )
    out["cloud_cost_usd"] = sum(
        float(span.attributes.get("cloud_cost_usd", 0.0))
        for span in spans
        if span.category == PHASE_JOB
    )
    return Profile(kind="trace", path=str(path), metrics=out)


def _report_profile(path: Union[str, Path], payload: Dict) -> Profile:
    summary = payload["summary"]
    if not isinstance(summary, dict):
        raise ValueError(f"{path}: malformed report summary")
    out: Dict[str, float] = {}
    for name, value in summary.items():
        if isinstance(value, (int, float)) and value is not None:
            out[name] = float(value)
    return Profile(kind="report", path=str(path), metrics=out)


def _fleet_profile(path: Union[str, Path], payload: Dict) -> Profile:
    aggregates = payload.get("aggregates")
    if not isinstance(aggregates, dict):
        raise ValueError(f"{path}: malformed fleet document (no aggregates)")
    out = {
        name: float(value)
        for name, value in aggregates.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    return Profile(kind="fleet", path=str(path), metrics=out)


def _fleet_health_profile(path: Union[str, Path], payload: Dict) -> Profile:
    out: Dict[str, float] = {}
    for section in ("counters", "fleet"):
        entries = payload.get(section, {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: malformed fleet health ({section})")
        for name, value in entries.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[name] = float(value)
    zones = payload.get("zones", {})
    if isinstance(zones, dict):
        for status in ("ok", "degraded", "critical"):
            out[f"zones_{status}"] = float(
                sum(
                    1 for entry in zones.values()
                    if entry.get("status") == status
                )
            )
    out["log_lines"] = float(len(payload.get("log", ())))
    return Profile(kind="fleet-health", path=str(path), metrics=out)


def diff_profiles(
    before: Profile,
    after: Profile,
    threshold: float = 0.05,
    abs_floor: float = 1e-9,
) -> TraceDiff:
    """Compare two profiles; rows sorted by metric name.

    A row regresses when the *bad* direction moves by at least
    ``threshold`` relatively and ``abs_floor`` absolutely.  Metrics
    present in only one profile compare against 0.0.
    """
    if before.kind != after.kind:
        raise ValueError(
            f"cannot diff a {before.kind} file against a {after.kind} file"
        )
    rows: List[DiffRow] = []
    for metric in sorted(set(before.metrics) | set(after.metrics)):
        a = before.metrics.get(metric, 0.0)
        b = after.metrics.get(metric, 0.0)
        delta = b - a
        if delta == 0.0:
            relative = 0.0
        elif a != 0.0:
            relative = delta / abs(a)
        else:
            relative = float("inf") if delta > 0 else float("-inf")
        worsening = -delta if metric in _HIGHER_IS_BETTER else delta
        worse_rel = -relative if metric in _HIGHER_IS_BETTER else relative
        regressed = worsening >= abs_floor and worse_rel >= threshold
        rows.append(
            DiffRow(
                metric=metric,
                before=a,
                after=b,
                delta=delta,
                relative=relative,
                regressed=regressed,
            )
        )
    return TraceDiff(
        kind=before.kind,
        before_path=before.path,
        after_path=after.path,
        rows=rows,
        threshold=threshold,
    )


def diff_files(
    before: Union[str, Path],
    after: Union[str, Path],
    threshold: float = 0.05,
    abs_floor: float = 1e-9,
) -> TraceDiff:
    """Load and compare two artifact files of the same kind."""
    return diff_profiles(
        load_profile(before),
        load_profile(after),
        threshold=threshold,
        abs_floor=abs_floor,
    )
