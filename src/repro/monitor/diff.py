"""Cross-run comparison of trace and report files (``repro diff``).

Loads two artifacts of the same kind — Chrome trace-event exports
(``repro run --trace``) or saved controller reports (``repro run
--save-report``) — reduces each to a flat metric profile, and compares
them metric by metric:

* a **trace** profile carries per-phase attributed seconds
  (``phase/upload``, ``phase/execute``, …), job count, total makespan,
  total cloud cost (from job spans) and wasted spend;
* a **report** profile carries the saved summary scalars (jobs
  completed, failures, deadline-miss rate, mean response, energy,
  cost).

Each metric knows its good direction (``jobs_completed`` up, everything
else down), so a *regression* is a worsening by at least
``threshold`` (relative) **and** ``abs_floor`` (absolute — float noise
is not a regression).  The CLI maps regressions to a non-zero exit for
use as a cheap perf gate locally and in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

__all__ = [
    "DiffRow",
    "TraceDiff",
    "diff_files",
    "diff_profiles",
    "load_profile",
]

#: Metrics where a larger value is an improvement, not a regression.
_HIGHER_IS_BETTER = frozenset({"jobs", "jobs_completed"})


@dataclass(frozen=True)
class Profile:
    """One artifact reduced to comparable scalars."""

    kind: str  # "trace" | "report"
    path: str
    metrics: Dict[str, float]


@dataclass(frozen=True)
class DiffRow:
    """One metric compared across the two artifacts."""

    metric: str
    before: float
    after: float
    delta: float
    relative: float  # delta / |before|, inf when before == 0 and delta != 0
    regressed: bool


@dataclass
class TraceDiff:
    """The full comparison of two artifacts."""

    kind: str
    before_path: str
    after_path: str
    rows: List[DiffRow]
    threshold: float

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "kind": self.kind,
            "before": self.before_path,
            "after": self.after_path,
            "threshold": self.threshold,
            "ok": self.ok,
            "rows": [
                {
                    "metric": row.metric,
                    "before": row.before,
                    "after": row.after,
                    "delta": row.delta,
                    "relative": row.relative,
                    "regressed": row.regressed,
                }
                for row in self.rows
            ],
        }


def load_profile(path: Union[str, Path]) -> Profile:
    """Reduce one artifact file to a :class:`Profile`.

    Raises ``OSError`` for unreadable paths, ``json.JSONDecodeError``
    for truncated/non-JSON content, and ``ValueError`` for JSON that is
    neither a Chrome trace nor a saved report — the CLI turns each into
    a one-line error.
    """
    text = Path(path).read_text(encoding="utf-8")
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a trace or report file")
    if "traceEvents" in payload:
        return _trace_profile(path)
    if "summary" in payload and payload.get("version") is not None:
        return _report_profile(path, payload)
    raise ValueError(f"{path}: not a trace or report file")


def _trace_profile(path: Union[str, Path]) -> Profile:
    from repro.telemetry.exporters import load_chrome_trace
    from repro.telemetry.report import build_report
    from repro.telemetry.tracer import PHASE_JOB

    spans, metadata, metrics = load_chrome_trace(path)
    report = build_report(spans, metadata=metadata, metrics=metrics)
    out: Dict[str, float] = {}
    for phase, seconds in report.phase_totals().items():
        out[f"phase/{phase}"] = seconds
    out["jobs"] = float(len(report.jobs))
    out["makespan_total_s"] = sum(job.makespan for job in report.jobs)
    out["wasted_usd"] = sum(
        usd for _, usd in report.wasted_totals().values()
    )
    out["cloud_cost_usd"] = sum(
        float(span.attributes.get("cloud_cost_usd", 0.0))
        for span in spans
        if span.category == PHASE_JOB
    )
    return Profile(kind="trace", path=str(path), metrics=out)


def _report_profile(path: Union[str, Path], payload: Dict) -> Profile:
    summary = payload["summary"]
    if not isinstance(summary, dict):
        raise ValueError(f"{path}: malformed report summary")
    out: Dict[str, float] = {}
    for name, value in summary.items():
        if isinstance(value, (int, float)) and value is not None:
            out[name] = float(value)
    return Profile(kind="report", path=str(path), metrics=out)


def diff_profiles(
    before: Profile,
    after: Profile,
    threshold: float = 0.05,
    abs_floor: float = 1e-9,
) -> TraceDiff:
    """Compare two profiles; rows sorted by metric name.

    A row regresses when the *bad* direction moves by at least
    ``threshold`` relatively and ``abs_floor`` absolutely.  Metrics
    present in only one profile compare against 0.0.
    """
    if before.kind != after.kind:
        raise ValueError(
            f"cannot diff a {before.kind} file against a {after.kind} file"
        )
    rows: List[DiffRow] = []
    for metric in sorted(set(before.metrics) | set(after.metrics)):
        a = before.metrics.get(metric, 0.0)
        b = after.metrics.get(metric, 0.0)
        delta = b - a
        if delta == 0.0:
            relative = 0.0
        elif a != 0.0:
            relative = delta / abs(a)
        else:
            relative = float("inf") if delta > 0 else float("-inf")
        worsening = -delta if metric in _HIGHER_IS_BETTER else delta
        worse_rel = -relative if metric in _HIGHER_IS_BETTER else relative
        regressed = worsening >= abs_floor and worse_rel >= threshold
        rows.append(
            DiffRow(
                metric=metric,
                before=a,
                after=b,
                delta=delta,
                relative=relative,
                regressed=regressed,
            )
        )
    return TraceDiff(
        kind=before.kind,
        before_path=before.path,
        after_path=after.path,
        rows=rows,
        threshold=threshold,
    )


def diff_files(
    before: Union[str, Path],
    after: Union[str, Path],
    threshold: float = 0.05,
    abs_floor: float = 1e-9,
) -> TraceDiff:
    """Load and compare two artifact files of the same kind."""
    return diff_profiles(
        load_profile(before),
        load_profile(after),
        threshold=threshold,
        abs_floor=abs_floor,
    )
