"""Online monitoring plane: streaming aggregates, SLOs, alerts, diffing.

The observability loop the paper's C1 presumes: a
:class:`~repro.monitor.monitor.Monitor` subscribes to telemetry events
on the sim clock and keeps sliding-window aggregates (rates, quantile
sketches, error ratios, queue depth) per zone/function/link; an
:class:`~repro.monitor.slo.SLOEngine` evaluates burn-rate alert rules
against latency/availability/cost objectives and emits a deterministic
alert log plus per-entity health; :mod:`repro.monitor.observed` feeds
monitored history back into demand estimation (the observed-signal
mode, ablation A10); :mod:`repro.monitor.diff` compares two runs'
artifacts for the ``repro diff`` CLI.

Everything runs on simulated time and is an *observer* of the trace:
attaching the plane never perturbs the simulation, and all outputs are
byte-deterministic across same-seed runs and sweep worker counts.
"""

from repro.monitor.diff import (
    DiffRow,
    TraceDiff,
    diff_files,
    diff_profiles,
    load_profile,
)
from repro.monitor.fleet import (
    FLEET_HEALTH_SCHEMA,
    FLEET_RULES,
    FleetSLOEngine,
    MonitorSnapshot,
    default_fleet_slos,
    fleet_health_to_prometheus,
    merge_snapshots,
    restore_monitor,
)
from repro.monitor.monitor import Monitor, ObservedExecution, attach_monitor
from repro.monitor.observed import ObservedDemandFeed, observations_from_history
from repro.monitor.sketch import QuantileSketch
from repro.monitor.slo import (
    DEFAULT_RULES,
    SLO,
    Alert,
    AvailabilitySLO,
    BurnRateRule,
    ColdStartSLO,
    CostSLO,
    LatencySLO,
    MonitoringPlane,
    SLOEngine,
    attach_monitoring,
)
from repro.monitor.window import WindowAggregate, WindowedSeries

__all__ = [
    "Alert",
    "AvailabilitySLO",
    "BurnRateRule",
    "ColdStartSLO",
    "CostSLO",
    "DEFAULT_RULES",
    "DiffRow",
    "FLEET_HEALTH_SCHEMA",
    "FLEET_RULES",
    "FleetSLOEngine",
    "LatencySLO",
    "Monitor",
    "MonitorSnapshot",
    "MonitoringPlane",
    "ObservedDemandFeed",
    "ObservedExecution",
    "QuantileSketch",
    "SLO",
    "SLOEngine",
    "TraceDiff",
    "WindowAggregate",
    "WindowedSeries",
    "attach_monitor",
    "attach_monitoring",
    "default_fleet_slos",
    "diff_files",
    "diff_profiles",
    "fleet_health_to_prometheus",
    "load_profile",
    "merge_snapshots",
    "observations_from_history",
    "restore_monitor",
]
