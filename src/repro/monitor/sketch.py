"""A deterministic, mergeable quantile sketch (DDSketch-style).

The monitoring plane needs streaming percentiles (p50/p95/p99) over
sliding windows, which means per-bucket sketches that merge cheaply
when a window is aggregated.  Exact summaries (``repro.metrics``) keep
every sample — fine for end-of-run reporting, wrong for an always-on
monitor.  This sketch stores only logarithmic bucket counts:

* values are mapped to buckets by ``ceil(log_gamma(value))`` with
  ``gamma = (1 + alpha) / (1 - alpha)``, which bounds the *relative*
  error of any reported quantile by ``alpha`` (default 1%);
* zero and sub-``min_value`` observations land in a dedicated zero
  bucket (simulated durations are never negative);
* merging two sketches adds bucket counts — associative, commutative,
  and byte-deterministic regardless of merge order.

Nothing here reads a wall clock, draws randomness, or depends on dict
iteration order of *inputs*: quantile queries walk bucket indices in
sorted order, so two same-seed runs produce bit-identical answers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

__all__ = ["QuantileSketch"]

#: Observations below this magnitude collapse into the zero bucket.
_MIN_TRACKED = 1e-9


class QuantileSketch:
    """Relative-error quantile sketch over non-negative observations."""

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_zero_count", "_buckets")

    def __init__(self, alpha: float = 0.01) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._zero_count = 0
        self._buckets: Dict[int, int] = {}

    # -- recording ---------------------------------------------------------

    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(f"sketch values must be finite and >= 0: {value}")
        if value < _MIN_TRACKED:
            self._zero_count += count
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + count

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (alphas must match)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {other.alpha} != {self.alpha}"
            )
        self._zero_count += other._zero_count
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count

    def copy(self) -> "QuantileSketch":
        """An independent copy (used when aggregating windows)."""
        twin = QuantileSketch(self.alpha)
        twin._zero_count = self._zero_count
        twin._buckets = dict(self._buckets)
        return twin

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"], alpha: float = 0.01
               ) -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches``."""
        out = cls(alpha)
        for sketch in sketches:
            out.merge(sketch)
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe state: alpha, zero count, bucket counts keyed by index.

        Bucket keys are stringified ints (JSON object keys must be
        strings); counts are exact ints, so a round trip through
        canonical JSON is lossless and merge-compatible.
        """
        return {
            "alpha": self.alpha,
            "zero": self._zero_count,
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(alpha=float(data["alpha"]))  # type: ignore[arg-type]
        sketch._zero_count = int(data.get("zero", 0))  # type: ignore[arg-type]
        buckets: Mapping[str, int] = data.get("buckets", {})  # type: ignore[assignment]
        for key in buckets:
            count = int(buckets[key])
            if count < 0:
                raise ValueError(f"bucket counts must be >= 0: {key}={count}")
            if count:
                sketch._buckets[int(key)] = count
        return sketch

    # -- querying ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._zero_count + sum(self._buckets.values())

    def quantile(self, q: float) -> Optional[float]:
        """The value at quantile ``q`` (0..1), or ``None`` when empty.

        Returns the geometric midpoint of the owning bucket, so the
        answer is within ``alpha`` relative error of the true quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return None
        rank = q * (total - 1)
        seen = self._zero_count
        if rank < seen or not self._buckets:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                break
        # Geometric midpoint of (gamma^(i-1), gamma^i].
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def count_at_most(self, threshold: float) -> int:
        """Observations ``<= threshold`` (bucket-resolution, deterministic).

        The workhorse of threshold SLIs ("fraction of requests under
        300 ms"): a bucket counts as under the threshold when its upper
        bound is.
        """
        if threshold < 0.0:
            return 0
        total = self._zero_count
        if threshold < _MIN_TRACKED:
            return total
        limit = math.ceil(math.log(threshold) / self._log_gamma)
        for index, count in self._buckets.items():
            if index <= limit:
                total += count
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch alpha={self.alpha} count={self.count} "
            f"buckets={len(self._buckets)}>"
        )
