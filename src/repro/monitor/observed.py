"""Observed-signal demand: monitored history → demand observations.

The controller's in-flight observed mode (``observed_signals=True``)
already derives per-job demand from measured durations.  This module
closes the *offline* half of the loop: given a
:class:`~repro.monitor.monitor.Monitor` that watched a run, replay its
execution history into a :class:`~repro.core.demand.DemandModel` — the
monitored analogue of :meth:`OffloadController.profile_offline`, built
purely from signals a production platform exports (function name, wall
duration, memory size), never the oracle's gigacycles.

The inversion is exact because the duration model is linear in work
(see :meth:`FunctionSpec.work_for_duration`); what the oracle-free
estimate *honestly* inherits is every runtime distortion the platform
injected — stragglers, contention — which is precisely the signal a
real tuner like COSE or Lambda Power Tuning consumes.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.demand import DemandModel
from repro.monitor.monitor import Monitor, ObservedExecution
from repro.profiling.profiler import DemandObservation

__all__ = ["ObservedDemandFeed", "observations_from_history"]


def observations_from_history(
    executions: List[ObservedExecution],
    platform: Any,
    app: Any,
    input_mb: float,
    function_prefix: str = "",
) -> List[DemandObservation]:
    """Convert monitored executions into demand observations.

    Function names follow the controller's ``{prefix}{app}.{component}``
    convention; records for functions of other apps sharing the platform
    are skipped.  ``input_mb`` is the workload's input size — execute
    spans do not carry it, so the feed assumes the homogeneous-input
    workloads the benchmarks run (heterogeneous sizes would need the
    size threaded through the invocation tag).
    """
    prefix = f"{function_prefix}{app.name}."
    known = set(app.component_names)
    out: List[DemandObservation] = []
    for record in executions:
        if not record.function.startswith(prefix):
            continue
        component = record.function[len(prefix):]
        if component not in known:
            continue
        spec = platform.spec(record.function)
        if record.memory_mb > 0 and spec.memory_mb != record.memory_mb:
            spec = spec.with_memory(record.memory_mb)
        out.append(
            DemandObservation(
                component=component,
                input_mb=input_mb,
                measured_gcycles=spec.work_for_duration(record.duration_s),
                at_time=record.at,
            )
        )
    return out


class ObservedDemandFeed:
    """Incrementally pumps a monitor's execution history into a model.

    Keeps a cursor into ``monitor.executions`` so repeated :meth:`pump`
    calls (e.g. on every replan) ingest each record exactly once.
    """

    def __init__(
        self,
        monitor: Monitor,
        platform: Any,
        app: Any,
        input_mb: float,
        function_prefix: str = "",
    ) -> None:
        self.monitor = monitor
        self.platform = platform
        self.app = app
        self.input_mb = input_mb
        self.function_prefix = function_prefix
        self._cursor = 0

    def pump(self, demand_model: Optional[DemandModel] = None,
             ) -> List[DemandObservation]:
        """Convert history since the last pump; optionally ingest it.

        Returns the new observations (so callers can inspect or route
        them); when ``demand_model`` is given they are ingested into it.
        """
        history = self.monitor.executions
        fresh = history[self._cursor:]
        self._cursor = len(history)
        observations = observations_from_history(
            fresh, self.platform, self.app, self.input_mb,
            self.function_prefix,
        )
        if demand_model is not None and observations:
            demand_model.ingest_history(observations)
        return observations
