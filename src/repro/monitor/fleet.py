"""Fleet-wide observability: mergeable monitor snapshots + SLO rollups.

The per-process :class:`~repro.monitor.monitor.Monitor` folds one
simulator's telemetry into windowed series.  A sharded fleet run (see
:mod:`repro.fleet.sharded`) has one monitor per coupling-group
simulator, spread across worker processes — so fleet-level alerting
needs three pieces, all byte-deterministic:

* :class:`MonitorSnapshot` — a canonical-JSON serializable freeze of a
  monitor's full state (every series, bucket by bucket, sketch bucket
  counts included), cheap to ship through the sweep machinery alongside
  the shard's report;
* :func:`merge_snapshots` — a key-ordered fold of shard snapshots into
  one fleet snapshot.  Series maps union (same key ⇒
  :meth:`~repro.monitor.window.WindowedSeries.merge`, bucket-aligned),
  inputs are sorted by zone label before folding, so the merged bytes
  are identical for any shard/worker count *given the same group
  decomposition* — exactly the regime where the sharded fleet report
  itself is exact (no split coupling links);
* :class:`FleetSLOEngine` — restores a monitor from the merged snapshot
  and **replays** the stock :class:`~repro.monitor.slo.SLOEngine`
  cadence over it offline (tick by tick up to the snapshot's end time),
  so availability / latency / cold-start / cost SLOs and multi-window
  burn-rate rules evaluate over the *merged* streams and emit the same
  canonical alert log the live engine would.

Per-group zone-availability series are keyed by the coupling-group
label (zones sharing a warm pool share fate), while function and link
series share names across groups and therefore merge into fleet-wide
streams — the uplink-stall SLO, for instance, watches every group's
uplink transfers at once.

:func:`fleet_health_to_prometheus` renders a fleet health document (the
``repro.monitor.fleet/1`` schema assembled by
:func:`repro.fleet.sharded.run_sharded`) through the labeled-metrics
Prometheus exporter, inheriting its label-value escaping.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.monitor.monitor import (
    KIND_FUNCTION,
    KIND_LINK,
    KIND_ZONE,
    Monitor,
    SeriesId,
)
from repro.monitor.slo import (
    SLO,
    Alert,
    AvailabilitySLO,
    BurnRateRule,
    ColdStartSLO,
    CostSLO,
    LatencySLO,
    SLOEngine,
)
from repro.monitor.window import WindowedSeries

__all__ = [
    "FLEET_HEALTH_SCHEMA",
    "FLEET_RULES",
    "FleetSLOEngine",
    "MonitorSnapshot",
    "SNAPSHOT_SCHEMA",
    "default_fleet_rule_overrides",
    "default_fleet_slos",
    "fleet_health_to_prometheus",
    "live_fleet_slos",
    "merge_snapshots",
    "restore_monitor",
]

#: Schema tag of one serialized monitor snapshot.
SNAPSHOT_SCHEMA = "repro.monitor.snapshot/1"

#: Schema tag of the merged fleet health document.
FLEET_HEALTH_SCHEMA = "repro.monitor.fleet/1"

#: Default burn-rate rules for fleet replay.  Fleet workloads are batch
#: release windows, not request streams: event rates per window are low,
#: so the gates are smaller than the stock ``DEFAULT_RULES`` while the
#: two-window structure (recent *and* sustained) is kept.
FLEET_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast", short_s=60.0, long_s=300.0, factor=2.0,
                 min_events=4, severity="page"),
    BurnRateRule("slow", short_s=300.0, long_s=1800.0, factor=1.0,
                 min_events=8, severity="ticket"),
)

#: Rules for sparse transfer series (a handful of events per minute): a
#: single stalled window must be allowed to page, as in the golden
#: monitoring scenario.
_SPARSE_LINK_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("outage", short_s=120.0, long_s=600.0, factor=1.0,
                 min_events=1, severity="page"),
)

#: Health status ranking used by the Prometheus exporter.
_STATUS_CODE = {"ok": 0, "degraded": 1, "critical": 2}


class _FrozenClock:
    """A stand-in clock for restored monitors (replay never reads it)."""

    __slots__ = ("now",)

    def __init__(self, now: float) -> None:
        self.now = now


class MonitorSnapshot:
    """A serializable, mergeable freeze of one monitor's series state."""

    __slots__ = ("zone", "bucket_s", "horizon_s", "alpha", "end_s", "series")

    def __init__(
        self,
        zone: str,
        bucket_s: float = 10.0,
        horizon_s: float = 3600.0,
        alpha: float = 0.01,
        end_s: float = 0.0,
        series: Optional[Dict[SeriesId, WindowedSeries]] = None,
    ) -> None:
        self.zone = zone
        self.bucket_s = bucket_s
        self.horizon_s = horizon_s
        self.alpha = alpha
        self.end_s = end_s
        self.series: Dict[SeriesId, WindowedSeries] = series or {}

    # -- construction ------------------------------------------------------

    @classmethod
    def capture(
        cls, monitor: Monitor, end_s: Optional[float] = None
    ) -> "MonitorSnapshot":
        """Freeze ``monitor``; ``end_s`` defaults to its clock's now."""
        if end_s is None:
            end_s = float(getattr(monitor.clock, "now", 0.0))
        snapshot = cls(
            zone=monitor.zone,
            bucket_s=monitor.bucket_s,
            horizon_s=monitor.horizon_s,
            alpha=monitor.alpha,
            end_s=end_s,
        )
        for key in monitor.entities():
            kind, name, signal = key
            twin = WindowedSeries.from_dict(
                monitor.series(kind, name, signal).to_dict()
            )
            snapshot.series[key] = twin
        return snapshot

    @property
    def total_events(self) -> int:
        """Events recorded across every series."""
        return sum(s.total_count for s in self.series.values())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe state; series keyed ``kind/name/signal``, sorted."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "zone": self.zone,
            "bucket_s": self.bucket_s,
            "horizon_s": self.horizon_s,
            "alpha": self.alpha,
            "end_s": self.end_s,
            "series": {
                "/".join(key): self.series[key].to_dict()
                for key in sorted(self.series)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MonitorSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output."""
        schema = data.get("schema", SNAPSHOT_SCHEMA)
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(f"not a monitor snapshot: schema {schema!r}")
        snapshot = cls(
            zone=str(data["zone"]),
            bucket_s=float(data["bucket_s"]),
            horizon_s=float(data["horizon_s"]),
            alpha=float(data["alpha"]),
            end_s=float(data.get("end_s", 0.0)),
        )
        series: Mapping[str, Mapping[str, Any]] = data.get("series", {})
        for key_text in series:
            parts = key_text.split("/")
            if len(parts) != 3:
                raise ValueError(f"bad series key {key_text!r}")
            key = (parts[0], parts[1], parts[2])
            snapshot.series[key] = WindowedSeries.from_dict(series[key_text])
        return snapshot

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MonitorSnapshot") -> None:
        """Fold ``other``'s series into this snapshot, key-aligned.

        Bucket width and sketch alpha must match; the horizon and end
        time extend to cover both.  Same series key ⇒ bucket-aligned
        :meth:`~repro.monitor.window.WindowedSeries.merge`; new keys
        copy over via a serialization round trip (so the two snapshots
        never share mutable state).
        """
        if other.bucket_s != self.bucket_s:
            raise ValueError(
                f"cannot merge snapshots with bucket_s {other.bucket_s} != "
                f"{self.bucket_s}"
            )
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge snapshots with alpha {other.alpha} != "
                f"{self.alpha}"
            )
        if other.horizon_s > self.horizon_s:
            self.horizon_s = other.horizon_s
        if other.end_s > self.end_s:
            self.end_s = other.end_s
        for key in sorted(other.series):
            theirs = other.series[key]
            mine = self.series.get(key)
            if mine is None:
                self.series[key] = WindowedSeries.from_dict(theirs.to_dict())
            else:
                mine.merge(theirs)


def merge_snapshots(
    snapshots: Iterable[MonitorSnapshot], zone: str = "fleet"
) -> MonitorSnapshot:
    """Fold shard snapshots into one fleet snapshot, deterministically.

    Inputs are sorted by ``(zone label, end_s)`` before folding, so the
    merged bytes do not depend on the order shards completed in — the
    same property the sharded report merge has.  An empty input yields
    an empty snapshot (bucket/alpha defaults), which merges as identity.
    """
    ordered = sorted(snapshots, key=lambda s: (s.zone, s.end_s))
    if not ordered:
        return MonitorSnapshot(zone=zone)
    first = ordered[0]
    out = MonitorSnapshot(
        zone=zone,
        bucket_s=first.bucket_s,
        horizon_s=first.horizon_s,
        alpha=first.alpha,
        end_s=first.end_s,
    )
    for snapshot in ordered:
        out.merge(snapshot)
    return out


def restore_monitor(snapshot: MonitorSnapshot) -> Monitor:
    """A :class:`Monitor` whose series mirror ``snapshot``.

    The monitor gets a frozen clock pinned at the snapshot's end time
    and is only meant for offline queries (aggregate / stats / SLO
    replay), not for subscribing to a live tracer.
    """
    monitor = Monitor(
        _FrozenClock(snapshot.end_s),
        zone=snapshot.zone,
        bucket_s=snapshot.bucket_s,
        horizon_s=snapshot.horizon_s,
        alpha=snapshot.alpha,
    )
    for key in sorted(snapshot.series):
        monitor._series[key] = WindowedSeries.from_dict(
            snapshot.series[key].to_dict()
        )
    return monitor


# -- default fleet SLO set --------------------------------------------------


def default_fleet_slos(
    snapshot: MonitorSnapshot,
    availability_objective: float = 0.99,
    uplink_stall_threshold_s: float = 30.0,
    uplink_stall_objective: float = 0.75,
    cold_start_objective: Optional[float] = None,
    cost_usd_per_hour: Optional[float] = None,
) -> List[SLO]:
    """The SLO set a fleet replay evaluates, derived from the snapshot.

    Per coupling-group entity: an availability SLO always; a cold-start
    SLO and a cost SLO when objectives/budgets are given (both are
    noisy on fault-free batch fleets — initial cold starts are
    expected — so they are opt-in).  Per link entity: a latency SLO on
    transfer durations, the link-outage detector (a stalled transfer
    takes far longer than the threshold).
    """
    slos: List[SLO] = []
    zones = sorted(
        {name for kind, name, _ in snapshot.series if kind == KIND_ZONE}
    )
    for entity in zones:
        slos.append(
            AvailabilitySLO(
                f"availability:{entity}",
                entity=entity,
                objective=availability_objective,
            )
        )
        if cold_start_objective is not None:
            slos.append(
                ColdStartSLO(
                    f"cold-start:{entity}",
                    entity=entity,
                    objective=cold_start_objective,
                )
            )
        if cost_usd_per_hour is not None:
            slos.append(
                CostSLO(
                    f"cost:{entity}",
                    usd_per_hour=cost_usd_per_hour,
                    entity=entity,
                )
            )
    links = sorted(
        {name for kind, name, _ in snapshot.series if kind == KIND_LINK}
    )
    for link in links:
        slos.append(
            LatencySLO(
                f"{link}-stall",
                kind=KIND_LINK,
                entity=link,
                threshold_s=uplink_stall_threshold_s,
                objective=uplink_stall_objective,
                signal="throughput",
            )
        )
    return slos


def default_fleet_rule_overrides(
    slos: Sequence[SLO],
) -> Dict[str, Tuple[BurnRateRule, ...]]:
    """Sparse-series rule overrides: link-stall SLOs page on one event."""
    return {
        slo.name: _SPARSE_LINK_RULES
        for slo in slos
        if slo.kind == KIND_LINK
    }


def live_fleet_slos(
    group_label: str,
    availability_objective: float = 0.99,
    uplink_stall_threshold_s: float = 30.0,
    uplink_stall_objective: float = 0.75,
) -> List[SLO]:
    """The SLO set a *live* per-group engine evaluates during the sim.

    Mirrors :func:`default_fleet_slos`'s vocabulary (``availability:<group>``,
    ``uplink-stall`` / ``downlink-stall``) but is built up front from the
    coupling-group label rather than derived from an end-of-run snapshot —
    a live engine cannot know which series will exist.  SLOs over series
    that never record data simply never fire.
    """
    slos: List[SLO] = [
        AvailabilitySLO(
            f"availability:{group_label}",
            entity=group_label,
            objective=availability_objective,
        )
    ]
    for link in ("uplink", "downlink"):
        slos.append(
            LatencySLO(
                f"{link}-stall",
                kind=KIND_LINK,
                entity=link,
                threshold_s=uplink_stall_threshold_s,
                objective=uplink_stall_objective,
                signal="throughput",
            )
        )
    return slos


class FleetSLOEngine:
    """Offline burn-rate replay over a merged fleet snapshot.

    Wraps the stock :class:`~repro.monitor.slo.SLOEngine`: the snapshot
    is restored into a monitor, then :meth:`evaluate` replays the
    engine's cadence tick by tick from ``eval_interval_s`` up past the
    snapshot's end time.  Because the merged snapshot is byte-identical
    for any shard/worker count, so are the alert log, the alerts, and
    the health rollup.
    """

    def __init__(
        self,
        snapshot: MonitorSnapshot,
        slos: Optional[Sequence[SLO]] = None,
        rules: Sequence[BurnRateRule] = FLEET_RULES,
        eval_interval_s: float = 60.0,
        rule_overrides: Optional[
            Mapping[str, Sequence[BurnRateRule]]
        ] = None,
    ) -> None:
        self.snapshot = snapshot
        self.monitor = restore_monitor(snapshot)
        if slos is None:
            slos = default_fleet_slos(snapshot)
        if rule_overrides is None:
            rule_overrides = default_fleet_rule_overrides(slos)
        self.engine = SLOEngine(
            self.monitor,
            slos,
            rules=rules,
            eval_interval_s=eval_interval_s,
            rule_overrides=rule_overrides,
        )
        self._evaluated = False

    @property
    def eval_interval_s(self) -> float:
        return self.engine.eval_interval_s

    def evaluate(self) -> "FleetSLOEngine":
        """Replay every evaluation tick over the snapshot (idempotent).

        The replay ends with :meth:`~repro.monitor.slo.SLOEngine.finalize`
        at the last tick time, so an outage window that straddles the
        snapshot's end still produces a terminal ``CLEARED ... final=true``
        line and the log is complete at any horizon.
        """
        if self._evaluated:
            return self
        interval = self.engine.eval_interval_s
        ticks = int(math.ceil(self.snapshot.end_s / interval))
        for k in range(1, ticks + 1):
            self.engine.evaluate(k * interval)
        # Finalize at the last tick (>= end_s) to keep the log's
        # timestamps monotonic; with no ticks, at the end time itself.
        self.engine.finalize(ticks * interval if ticks else self.snapshot.end_s)
        self._evaluated = True
        return self

    # -- reading -----------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        return self.engine.alerts

    def alert_log(self) -> str:
        """The canonical fleet alert log (newline-terminated when non-empty)."""
        return self.engine.alert_log()

    def health(self) -> Dict[str, Dict[str, Any]]:
        """Per-entity (coupling group / link) health at the end time."""
        return self.engine.health(self.snapshot.end_s)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Merged per-series statistics over the full snapshot horizon."""
        return self.monitor.stats(self.snapshot.end_s)

    def report(self) -> Dict[str, Any]:
        """The engine-level slice of the fleet health document."""
        self.evaluate()
        return {
            "evaluated_at": self.snapshot.end_s,
            "eval_interval_s": self.engine.eval_interval_s,
            "slos": [slo.name for slo in self.engine.slos],
            "alerts": [alert.to_dict() for alert in self.engine.alerts],
            "log": list(self.engine.log),
            "health": self.health(),
            "stats": self.stats(),
        }


# -- Prometheus export ------------------------------------------------------

#: Label name used for a series entity, per monitor kind.
_KIND_LABEL = {KIND_ZONE: "zone", KIND_FUNCTION: "function", KIND_LINK: "link"}


def fleet_health_to_prometheus(document: Mapping[str, Any]) -> str:
    """Render a ``repro.monitor.fleet/1`` health document as Prometheus text.

    Goes through :class:`~repro.telemetry.registry.LabeledMetricsRegistry`
    so zone/function/link label values ride the exporter's escaping path
    (backslash, quote, newline) and family ordering.
    """
    from repro.telemetry.registry import LabeledMetricsRegistry

    if document.get("schema") != FLEET_HEALTH_SCHEMA:
        raise ValueError(
            f"not a fleet health document: schema {document.get('schema')!r}"
        )
    registry = LabeledMetricsRegistry()
    fleet = document.get("fleet", {})
    registry.gauge("fleet_status").set(
        float(_STATUS_CODE.get(fleet.get("status", "ok"), 0))
    )
    for name in ("zones", "ues", "groups", "alerts_fired", "alerts_active"):
        if name in fleet:
            registry.gauge(f"fleet_{name}").set(float(fleet[name]))
    zones: Mapping[str, Mapping[str, Any]] = document.get("zones", {})
    for zone in sorted(zones):
        entry = zones[zone]
        registry.gauge("fleet_zone_status", zone=zone).set(
            float(_STATUS_CODE.get(entry.get("status", "ok"), 0))
        )
        for name in (
            "ues", "jobs", "completed", "failures", "deadline_misses",
            "cold_starts", "invocations",
        ):
            if name in entry:
                registry.gauge(f"fleet_zone_{name}", zone=zone).set(
                    float(entry[name])
                )
        if "mean_response_s" in entry:
            registry.gauge(
                "fleet_zone_mean_response_seconds", zone=zone
            ).set(float(entry["mean_response_s"]))
        if "cost_usd" in entry:
            registry.gauge("fleet_zone_cost_usd", zone=zone).set(
                float(entry["cost_usd"])
            )
    meter_snapshot = document.get("meter", {})
    if meter_snapshot:
        from repro.perf.meter import RuntimeMeter

        meter = RuntimeMeter()
        meter.absorb_snapshot(meter_snapshot)
        # Counters only: a snapshot carries no wall clocks, so the
        # timing gauges would all read a misleading zero.
        meter.publish(registry, include_timings=False)
    alert_counts: Dict[Tuple[str, str, str], int] = {}
    for alert in document.get("alerts", ()):
        key = (alert["slo"], alert["rule"], alert["severity"])
        alert_counts[key] = alert_counts.get(key, 0) + 1
    for (slo, rule, severity) in sorted(alert_counts):
        counter = registry.counter(
            "fleet_alerts", slo=slo, rule=rule, severity=severity
        )
        counter.increment(alert_counts[(slo, rule, severity)])
    stats: Mapping[str, Mapping[str, float]] = document.get("stats", {})
    for key_text in sorted(stats):
        kind, name, signal = key_text.split("/", 2)
        label = _KIND_LABEL.get(kind, "entity")
        labels = {label: name, "signal": signal}
        entry = stats[key_text]
        registry.gauge("fleet_series_events", **labels).set(entry["count"])
        registry.gauge("fleet_series_error_ratio", **labels).set(
            entry["error_ratio"]
        )
        if "p95" in entry:
            registry.gauge("fleet_series_p95_seconds", **labels).set(
                entry["p95"]
            )
    return registry.to_prometheus()
