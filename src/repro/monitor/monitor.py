"""The monitoring plane: a tracer listener feeding windowed aggregates.

:class:`Monitor` subscribes to a recording
:class:`~repro.telemetry.tracer.Tracer` and turns finished spans and
instant events into sliding-window series keyed by entity — a *zone*
(the serverless platform as a whole), a *function*, or a *link*
(uplink/downlink) — and a signal name:

=========  ==========  ============================================
entity     signal      fed by
=========  ==========  ============================================
function   latency     cloud ``execute`` spans (bad = errored)
function   queue       ``queue`` spans (max depth, wait time)
function   cold_start  ``cold_start`` spans
zone       availability cloud ``execute`` spans + ``outage_rejected``
zone       job         ``job`` spans (latency, deadline misses, cost)
zone       wasted      ``attempt_failed`` instants (wasted spend)
zone       hedges      ``hedge_started`` instants
zone       fallbacks   ``fallback_local`` instants
link       throughput  ``upload`` / ``download`` spans (bytes, radio)
=========  ==========  ============================================

The monitor is an *observer*: it never mutates spans, never schedules
simulator events, and reads only the data the trace already carries, so
attaching it cannot perturb a run (golden fixtures stay byte-identical)
and two same-seed runs produce bit-equal aggregates.  It also keeps an
append-only log of successful cloud executions for the observed-signal
demand feed (:mod:`repro.monitor.observed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.monitor.window import WindowAggregate, WindowedSeries
from repro.telemetry.tracer import (
    PHASE_COLD_START,
    PHASE_DOWNLOAD,
    PHASE_EXECUTE,
    PHASE_JOB,
    PHASE_QUEUE,
    PHASE_UPLOAD,
)

__all__ = ["Monitor", "ObservedExecution", "attach_monitor"]

#: Entity kinds the monitor tracks.
KIND_ZONE = "zone"
KIND_FUNCTION = "function"
KIND_LINK = "link"

#: One series identity: (kind, entity name, signal).
SeriesId = Tuple[str, str, str]


@dataclass(frozen=True)
class ObservedExecution:
    """One successful cloud invocation as the monitor saw it."""

    function: str
    at: float
    duration_s: float
    memory_mb: float
    cold: bool


class Monitor:
    """Streaming aggregates over telemetry events, on the sim clock.

    Parameters
    ----------
    clock:
        Object with a float ``now`` (normally the Simulator).
    zone:
        Entity name for platform-wide signals (default ``"faas"``,
        matching the platform name in the stock environment).
    bucket_s / horizon_s / alpha:
        Window granularity, retention, and sketch accuracy shared by
        every series.
    """

    def __init__(
        self,
        clock: Any,
        zone: str = "faas",
        bucket_s: float = 10.0,
        horizon_s: float = 3600.0,
        alpha: float = 0.01,
    ) -> None:
        self.clock = clock
        self.zone = zone
        self.bucket_s = bucket_s
        self.horizon_s = horizon_s
        self.alpha = alpha
        self._series: Dict[SeriesId, WindowedSeries] = {}
        self.executions: List[ObservedExecution] = []

    # -- series access -----------------------------------------------------

    def series(self, kind: str, name: str, signal: str) -> WindowedSeries:
        """Get or create the series for ``(kind, name, signal)``."""
        key = (kind, name, signal)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = WindowedSeries(
                bucket_s=self.bucket_s,
                horizon_s=self.horizon_s,
                alpha=self.alpha,
            )
        return series

    def entities(self) -> List[SeriesId]:
        """Sorted identities of every series with at least one event."""
        return sorted(self._series)

    def aggregate(
        self, kind: str, name: str, signal: str, now: float, window_s: float
    ) -> WindowAggregate:
        """Windowed fold of one series (empty aggregate if unknown)."""
        series = self._series.get((kind, name, signal))
        if series is None:
            return WindowAggregate(window_s, self.alpha)
        return series.aggregate(now, window_s)

    def link_rate(
        self, link: str, now: float, window_s: Optional[float] = None
    ) -> Optional[float]:
        """Observed link goodput (bytes / radio-second), or ``None``.

        The denominator is *radio* time (the airtime the transfer
        actually used), so the estimate reflects achieved throughput
        rather than queueing delay.
        """
        agg = self.aggregate(
            KIND_LINK, link, "throughput", now, window_s or self.horizon_s
        )
        radio_s = agg.extra("radio_s")
        if radio_s <= 0.0:
            return None
        return agg.extra("bytes") / radio_s

    def link_goodput_points(
        self, link: str, now: float, window_s: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Per-bucket link goodput samples over the window, oldest first.

        Each point is ``(bucket_end_s, bytes / radio_s)`` for a bucket
        that saw transfer airtime; buckets without radio time are
        skipped (no transfer finished there, so there is no rate to
        report).  This is the time series the short-horizon forecaster
        fits — :meth:`link_rate` is the same quantity folded to one
        number.
        """
        series = self._series.get((KIND_LINK, link, "throughput"))
        if series is None:
            return []
        points: List[Tuple[float, float]] = []
        for end, extras in series.bucket_extras(
            now, window_s or self.horizon_s, ("bytes", "radio_s")
        ):
            radio_s = extras["radio_s"]
            if radio_s > 0.0:
                points.append((end, extras["bytes"] / radio_s))
        return points

    def queue_depth(
        self, function: str, now: float, window_s: Optional[float] = None
    ) -> float:
        """Peak observed queue depth for ``function`` over the window."""
        agg = self.aggregate(
            KIND_FUNCTION, function, "queue", now,
            window_s or self.horizon_s,
        )
        return agg.extra_max("depth")

    # -- tracer listener protocol -----------------------------------------

    def on_span_end(self, span: Any) -> None:
        category = span.category
        attrs = span.attributes
        end = span.end
        if category == PHASE_EXECUTE:
            if attrs.get("tier") != "cloud":
                return
            errored = "error" in attrs
            cold = bool(attrs.get("cold", False))
            extras = {"cold": 1.0 if cold else 0.0}
            if "billed_usd" in attrs:
                extras["billed_usd"] = float(attrs["billed_usd"])
            self.series(KIND_FUNCTION, span.name, "latency").observe(
                end, value=span.duration, bad=errored, extras=extras
            )
            self.series(KIND_ZONE, self.zone, "availability").observe(
                end, value=span.duration, bad=errored, extras=extras
            )
            if not errored:
                self.executions.append(
                    ObservedExecution(
                        function=span.name,
                        at=end,
                        duration_s=span.duration,
                        memory_mb=float(attrs.get("memory_mb", 0.0)),
                        cold=cold,
                    )
                )
        elif category == PHASE_QUEUE:
            self.series(KIND_FUNCTION, span.name, "queue").observe(
                end,
                value=span.duration,
                extras_max={"depth": float(attrs.get("depth", 0.0))},
            )
        elif category == PHASE_COLD_START:
            self.series(KIND_FUNCTION, span.name, "cold_start").observe(
                end, value=span.duration
            )
        elif category == PHASE_UPLOAD or category == PHASE_DOWNLOAD:
            link = "uplink" if category == PHASE_UPLOAD else "downlink"
            self.series(KIND_LINK, link, "throughput").observe(
                end,
                value=span.duration,
                extras={
                    "bytes": float(attrs.get("bytes", 0.0)),
                    "radio_s": float(attrs.get("radio_s", 0.0)),
                },
            )
        elif category == PHASE_JOB:
            bad = "error" in attrs or attrs.get("met_deadline") is False
            self.series(KIND_ZONE, self.zone, "job").observe(
                end,
                value=span.duration,
                bad=bad,
                extras={"cost_usd": float(attrs.get("cloud_cost_usd", 0.0))},
            )

    def on_instant(
        self, at: float, name: str, attributes: Dict[str, Any], parent: Any
    ) -> None:
        if name == "outage_rejected":
            # No execute span exists for a control-plane rejection, so it
            # only appears here; errored attempts that *ran* are counted
            # by their execute span instead (never both).
            self.series(KIND_ZONE, self.zone, "availability").observe(
                at, bad=True, extras={"rejected": 1.0}
            )
        elif name == "attempt_failed":
            self.series(KIND_ZONE, self.zone, "wasted").observe(
                at,
                bad=True,
                extras={"wasted_usd": float(attributes.get("wasted_usd", 0.0))},
            )
        elif name == "hedge_started":
            self.series(KIND_ZONE, self.zone, "hedges").observe(at)
        elif name == "fallback_local":
            self.series(KIND_ZONE, self.zone, "fallbacks").observe(at)

    # -- snapshots ---------------------------------------------------------

    def stats(
        self, now: float, window_s: Optional[float] = None
    ) -> Dict[str, Dict[str, float]]:
        """Canonical per-series statistics over one window.

        Keys are ``kind/name/signal`` strings in sorted order; values
        hold count, rate, error ratio, mean and p50/p95/p99 — floats
        only, so the dict JSON-dumps byte-identically across runs.
        """
        window = window_s or self.horizon_s
        out: Dict[str, Dict[str, float]] = {}
        for kind, name, signal in self.entities():
            agg = self.aggregate(kind, name, signal, now, window)
            entry: Dict[str, float] = {
                "count": float(agg.count),
                "rate_per_s": agg.rate_per_s,
                "error_ratio": agg.error_ratio,
                "mean": agg.mean,
            }
            for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                value = agg.quantile(q)
                if value is not None:
                    entry[label] = value
            for extra in sorted(agg.extras):
                entry[f"sum_{extra}"] = agg.extras[extra]
            for extra in sorted(agg.extras_max):
                entry[f"max_{extra}"] = agg.extras_max[extra]
            out[f"{kind}/{name}/{signal}"] = entry
        return out

    def snapshot(self, end_s: Optional[float] = None) -> "Any":
        """Freeze this monitor's state as a mergeable `MonitorSnapshot`.

        ``end_s`` defaults to the clock's current time; it records how
        far simulated time had advanced (needed to replay SLO
        evaluation offline), which can exceed the last observation.
        """
        from repro.monitor.fleet import MonitorSnapshot

        return MonitorSnapshot.capture(self, end_s=end_s)


def attach_monitor(env: Any, monitor: Optional[Monitor] = None) -> Monitor:
    """Subscribe a (new) :class:`Monitor` to ``env``'s tracer.

    Requires a recording tracer on ``env.sim`` (attach one first with
    :func:`~repro.telemetry.tracer.attach_tracer`); raises
    ``RuntimeError`` against the null tracer so a silently-blind
    monitor cannot happen.
    """
    if monitor is None:
        monitor = Monitor(env.sim)
    env.sim.tracer.subscribe(monitor)
    return monitor
