"""Sliding-window aggregation over bucketed sim-time observations.

A :class:`WindowedSeries` accepts timestamped observations (an optional
value, a good/bad flag, and named extras) and bins them into fixed-width
time buckets.  Querying :meth:`aggregate` folds every bucket that
intersects ``(now - window_s, now]`` into one :class:`WindowAggregate`:
event count, bad count, value sum, a merged
:class:`~repro.monitor.sketch.QuantileSketch`, summed extras (bytes,
cost, cold starts) and maxed extras (queue depth).

Buckets are the determinism boundary: windows are aligned to bucket
edges, so an aggregate covers *at least* ``window_s`` and at most one
extra bucket of history — the same answer for the same sim clock, every
run.  Buckets older than the retention horizon are pruned on write, so
memory stays bounded by ``horizon_s / bucket_s`` regardless of run
length.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.monitor.sketch import QuantileSketch

__all__ = ["WindowAggregate", "WindowedSeries"]


class _Bucket:
    __slots__ = ("count", "bad", "value_sum", "sketch", "extras", "extras_max")

    def __init__(self, alpha: float) -> None:
        self.count = 0
        self.bad = 0
        self.value_sum = 0.0
        self.sketch = QuantileSketch(alpha)
        self.extras: Dict[str, float] = {}
        self.extras_max: Dict[str, float] = {}


class WindowAggregate:
    """The fold of every bucket intersecting one query window."""

    __slots__ = (
        "window_s", "count", "bad", "value_sum", "sketch", "extras",
        "extras_max",
    )

    def __init__(self, window_s: float, alpha: float) -> None:
        self.window_s = window_s
        self.count = 0
        self.bad = 0
        self.value_sum = 0.0
        self.sketch = QuantileSketch(alpha)
        self.extras: Dict[str, float] = {}
        self.extras_max: Dict[str, float] = {}

    @property
    def rate_per_s(self) -> float:
        """Events per second over the window."""
        return self.count / self.window_s if self.window_s > 0 else 0.0

    @property
    def error_ratio(self) -> float:
        """Bad events / all events (0.0 when the window is empty)."""
        return self.bad / self.count if self.count else 0.0

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when no values were recorded)."""
        valued = self.sketch.count
        return self.value_sum / valued if valued else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Windowed value quantile, or ``None`` with no valued events."""
        return self.sketch.quantile(q)

    def extra(self, name: str, default: float = 0.0) -> float:
        """Summed extra ``name`` over the window."""
        return self.extras.get(name, default)

    def extra_max(self, name: str, default: float = 0.0) -> float:
        """Maxed extra ``name`` over the window."""
        return self.extras_max.get(name, default)


class WindowedSeries:
    """Time-bucketed observations supporting sliding-window queries."""

    __slots__ = ("bucket_s", "horizon_s", "alpha", "_buckets", "total_count")

    def __init__(
        self,
        bucket_s: float = 10.0,
        horizon_s: float = 3600.0,
        alpha: float = 0.01,
    ) -> None:
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be positive, got {bucket_s}")
        if horizon_s < bucket_s:
            raise ValueError("horizon_s must cover at least one bucket")
        self.bucket_s = bucket_s
        self.horizon_s = horizon_s
        self.alpha = alpha
        self._buckets: Dict[int, _Bucket] = {}
        self.total_count = 0

    def observe(
        self,
        at: float,
        value: Optional[float] = None,
        bad: bool = False,
        extras: Optional[Mapping[str, float]] = None,
        extras_max: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Record one event at sim time ``at``.

        ``value`` (when given) feeds the quantile sketch and value sum;
        ``bad`` feeds the error ratio; ``extras`` accumulate by sum and
        ``extras_max`` by max within the bucket.
        """
        if not math.isfinite(at) or at < 0.0:
            raise ValueError(f"observation time must be finite and >= 0: {at}")
        index = int(at // self.bucket_s)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = _Bucket(self.alpha)
            self._prune(index)
        bucket.count += 1
        self.total_count += 1
        if bad:
            bucket.bad += 1
        if value is not None:
            bucket.value_sum += value
            bucket.sketch.add(value)
        if extras:
            for name in extras:
                bucket.extras[name] = bucket.extras.get(name, 0.0) + extras[name]
        if extras_max:
            for name in extras_max:
                prev = bucket.extras_max.get(name)
                if prev is None or extras_max[name] > prev:
                    bucket.extras_max[name] = extras_max[name]

    def _prune(self, newest_index: int) -> None:
        floor_index = newest_index - int(self.horizon_s // self.bucket_s) - 1
        if floor_index <= min(self._buckets, default=newest_index):
            return
        for index in [i for i in self._buckets if i < floor_index]:
            del self._buckets[index]

    def merge(self, other: "WindowedSeries") -> None:
        """Fold ``other`` into this series, bucket-index aligned.

        Counts and value sums add, sketches merge, summed extras add and
        maxed extras take the max — bucket by bucket, walked in sorted
        index order so a fixed merge order yields byte-identical floats.
        Bucket width and sketch alpha must match (the horizon is taken
        as ``max`` of the two); no pruning happens here, so merging
        disjoint shards never drops history the caller recorded.
        """
        if other.bucket_s != self.bucket_s:
            raise ValueError(
                f"cannot merge series with bucket_s {other.bucket_s} != "
                f"{self.bucket_s}"
            )
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge series with alpha {other.alpha} != {self.alpha}"
            )
        if other.horizon_s > self.horizon_s:
            self.horizon_s = other.horizon_s
        for index in sorted(other._buckets):
            theirs = other._buckets[index]
            bucket = self._buckets.get(index)
            if bucket is None:
                bucket = self._buckets[index] = _Bucket(self.alpha)
            bucket.count += theirs.count
            bucket.bad += theirs.bad
            bucket.value_sum += theirs.value_sum
            bucket.sketch.merge(theirs.sketch)
            for name in theirs.extras:
                bucket.extras[name] = (
                    bucket.extras.get(name, 0.0) + theirs.extras[name]
                )
            for name in theirs.extras_max:
                prev = bucket.extras_max.get(name)
                if prev is None or theirs.extras_max[name] > prev:
                    bucket.extras_max[name] = theirs.extras_max[name]
        self.total_count += other.total_count

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe state; bucket keys are stringified indices.

        Extras maps are emitted key-sorted so the canonical JSON of two
        equal series is byte-identical.
        """
        buckets: Dict[str, object] = {}
        for index in sorted(self._buckets):
            bucket = self._buckets[index]
            entry: Dict[str, object] = {
                "count": bucket.count,
                "bad": bucket.bad,
                "value_sum": bucket.value_sum,
                "sketch": bucket.sketch.to_dict(),
            }
            if bucket.extras:
                entry["extras"] = {
                    k: bucket.extras[k] for k in sorted(bucket.extras)
                }
            if bucket.extras_max:
                entry["extras_max"] = {
                    k: bucket.extras_max[k] for k in sorted(bucket.extras_max)
                }
            buckets[str(index)] = entry
        return {
            "bucket_s": self.bucket_s,
            "horizon_s": self.horizon_s,
            "alpha": self.alpha,
            "total_count": self.total_count,
            "buckets": buckets,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WindowedSeries":
        """Rebuild a series from :meth:`to_dict` output."""
        series = cls(
            bucket_s=float(data["bucket_s"]),  # type: ignore[arg-type]
            horizon_s=float(data["horizon_s"]),  # type: ignore[arg-type]
            alpha=float(data["alpha"]),  # type: ignore[arg-type]
        )
        series.total_count = int(data.get("total_count", 0))  # type: ignore[arg-type]
        buckets: Mapping[str, Mapping[str, object]]
        buckets = data.get("buckets", {})  # type: ignore[assignment]
        for key in buckets:
            entry = buckets[key]
            bucket = _Bucket(series.alpha)
            bucket.count = int(entry["count"])  # type: ignore[arg-type]
            bucket.bad = int(entry.get("bad", 0))  # type: ignore[arg-type]
            bucket.value_sum = float(entry.get("value_sum", 0.0))  # type: ignore[arg-type]
            bucket.sketch = QuantileSketch.from_dict(entry["sketch"])  # type: ignore[arg-type]
            extras: Mapping[str, float] = entry.get("extras", {})  # type: ignore[assignment]
            bucket.extras = {k: float(extras[k]) for k in extras}
            extras_max: Mapping[str, float] = entry.get("extras_max", {})  # type: ignore[assignment]
            bucket.extras_max = {k: float(extras_max[k]) for k in extras_max}
            series._buckets[int(key)] = bucket
        return series

    def bucket_extras(
        self, now: float, window_s: float, names: Sequence[str]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Per-bucket summed extras over ``(now - window_s, now]``.

        Returns ``(bucket_end_s, {name: sum})`` pairs, oldest first,
        for buckets that recorded at least one event — the raw points a
        short-horizon forecaster fits a trend to.  Window alignment
        matches :meth:`aggregate`.
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        first = int(max(0.0, now - window_s) // self.bucket_s)
        last = int(now // self.bucket_s)
        out: List[Tuple[float, Dict[str, float]]] = []
        for index in sorted(self._buckets):
            if index < first or index > last:
                continue
            bucket = self._buckets[index]
            out.append((
                (index + 1) * self.bucket_s,
                {name: bucket.extras.get(name, 0.0) for name in names},
            ))
        return out

    def aggregate(self, now: float, window_s: float) -> WindowAggregate:
        """Fold buckets intersecting ``(now - window_s, now]``.

        The window is bucket-aligned: the oldest included bucket is the
        one containing ``now - window_s``, so coverage is at least
        ``window_s`` (never less) and the result depends only on the
        recorded observations and the query arguments.
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        out = WindowAggregate(window_s, self.alpha)
        first = int(max(0.0, now - window_s) // self.bucket_s)
        last = int(now // self.bucket_s)
        for index in sorted(self._buckets):
            if index < first or index > last:
                continue
            bucket = self._buckets[index]
            out.count += bucket.count
            out.bad += bucket.bad
            out.value_sum += bucket.value_sum
            out.sketch.merge(bucket.sketch)
            for name in bucket.extras:
                out.extras[name] = out.extras.get(name, 0.0) + bucket.extras[name]
            for name in bucket.extras_max:
                prev = out.extras_max.get(name)
                if prev is None or bucket.extras_max[name] > prev:
                    out.extras_max[name] = bucket.extras_max[name]
        return out
