"""SLO objectives, multi-window burn-rate alert rules, and health.

An :class:`SLO` binds one monitored series (see
:class:`~repro.monitor.monitor.Monitor`) to an objective and knows how
to turn a window aggregate into a **burn rate**: the ratio of the
observed bad fraction to the error budget (``1 - objective``).  A burn
of 1.0 spends the budget exactly at the allowed pace; a burn of 10
exhausts it ten times too fast.

:class:`BurnRateRule` is the Google-SRE multi-window pattern: an alert
fires only when *both* a short window (recency — the problem is still
happening) and a long window (significance — it is not one blip) burn
faster than ``factor``, and the long window has seen at least
``min_events`` events.  The rule clears as soon as either window cools
below the factor.

:class:`SLOEngine` evaluates every (SLO, rule) pair on a fixed cadence
of the *simulated* clock and appends to an alert log that is canonical
by construction: entries are ordered by (time, SLO name, rule name) and
all floats render via ``repr``, so two same-seed runs — at any sweep
worker count — emit byte-identical logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.monitor.monitor import KIND_ZONE, Monitor, attach_monitor
from repro.monitor.window import WindowAggregate

__all__ = [
    "Alert",
    "AvailabilitySLO",
    "BurnRateRule",
    "ColdStartSLO",
    "CostSLO",
    "DEFAULT_RULES",
    "LatencySLO",
    "MonitoringPlane",
    "SLO",
    "SLOEngine",
    "attach_monitoring",
]


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert condition."""

    name: str
    short_s: float
    long_s: float
    factor: float
    min_events: int = 1
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError(
                f"rule {self.name!r}: need 0 < short_s <= long_s, got "
                f"{self.short_s}/{self.long_s}"
            )


#: The stock rule pair: a fast page and a slow ticket.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast", short_s=60.0, long_s=300.0, factor=4.0,
                 min_events=5, severity="page"),
    BurnRateRule("slow", short_s=300.0, long_s=1800.0, factor=1.0,
                 min_events=10, severity="ticket"),
)


class SLO:
    """Base objective over one monitored series.

    ``objective`` is the fraction of events that must be good (e.g.
    0.99); the error budget is ``1 - objective``.  Subclasses define
    what "bad" means via :meth:`bad_fraction`.
    """

    def __init__(
        self, name: str, kind: str, entity: str, signal: str,
        objective: float,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.name = name
        self.kind = kind
        self.entity = entity
        self.signal = signal
        self.objective = objective

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.objective

    def bad_fraction(self, agg: WindowAggregate) -> Optional[float]:
        """Observed bad fraction, or ``None`` when the window is empty."""
        raise NotImplementedError

    def burn_rate(self, agg: WindowAggregate) -> Optional[float]:
        """Bad fraction over budget, or ``None`` with no data."""
        bad = self.bad_fraction(agg)
        if bad is None:
            return None
        return bad / self.budget

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} "
            f"{self.kind}/{self.entity}/{self.signal}>"
        )


class AvailabilitySLO(SLO):
    """Fraction of requests that must succeed (errors + rejections bad)."""

    def __init__(
        self, name: str, entity: str = "faas", objective: float = 0.99,
        kind: str = KIND_ZONE, signal: str = "availability",
    ) -> None:
        super().__init__(name, kind, entity, signal, objective)

    def bad_fraction(self, agg: WindowAggregate) -> Optional[float]:
        if agg.count == 0:
            return None
        return agg.error_ratio


class LatencySLO(SLO):
    """Fraction of events that must finish under ``threshold_s``.

    Works on any valued series — function execution latency, or link
    transfer durations (an outage shows up as transfers that take far
    longer than the threshold, so this doubles as the link-outage
    detector).
    """

    def __init__(
        self, name: str, kind: str, entity: str, threshold_s: float,
        objective: float = 0.95, signal: str = "latency",
    ) -> None:
        super().__init__(name, kind, entity, signal, objective)
        if threshold_s <= 0:
            raise ValueError(f"threshold_s must be positive, got {threshold_s}")
        self.threshold_s = threshold_s

    def bad_fraction(self, agg: WindowAggregate) -> Optional[float]:
        total = agg.sketch.count
        if total == 0:
            return None
        return 1.0 - agg.sketch.count_at_most(self.threshold_s) / total


class ColdStartSLO(SLO):
    """Fraction of invocations that must hit a warm sandbox.

    A reclamation storm destroys sandboxes mid-flight, so the cold
    fraction spikes — this is the cold-start-spike detector.
    """

    def __init__(
        self, name: str, entity: str = "faas", objective: float = 0.5,
        kind: str = KIND_ZONE, signal: str = "availability",
    ) -> None:
        super().__init__(name, kind, entity, signal, objective)

    def bad_fraction(self, agg: WindowAggregate) -> Optional[float]:
        if agg.count == 0:
            return None
        return min(1.0, agg.extra("cold") / agg.count)


class CostSLO(SLO):
    """Cloud spend must stay under a USD-per-hour budget.

    Burn rate is spend-rate over budget-rate directly (there is no
    per-event good/bad), so ``bad_fraction`` reports the same ratio
    scaled back into the budget convention.
    """

    def __init__(
        self, name: str, usd_per_hour: float, entity: str = "faas",
        kind: str = KIND_ZONE, signal: str = "job",
    ) -> None:
        # objective is synthetic here; burn_rate is overridden.
        super().__init__(name, kind, entity, signal, objective=0.5)
        if usd_per_hour <= 0:
            raise ValueError(f"usd_per_hour must be positive, got {usd_per_hour}")
        self.usd_per_hour = usd_per_hour

    def bad_fraction(self, agg: WindowAggregate) -> Optional[float]:
        burn = self.burn_rate(agg)
        return None if burn is None else burn * self.budget

    def burn_rate(self, agg: WindowAggregate) -> Optional[float]:
        if agg.count == 0:
            return None
        spend_per_hour = agg.extra("cost_usd") * 3600.0 / agg.window_s
        return spend_per_hour / self.usd_per_hour


@dataclass
class Alert:
    """One firing of (SLO, rule); ``cleared_at`` stays ``None`` while active.

    ``final=True`` marks a forced close by :meth:`SLOEngine.finalize`:
    the run ended while the alert was still burning, so ``cleared_at``
    records the horizon rather than a recovery.  Health rollups treat
    final alerts as unresolved.
    """

    slo: str
    rule: str
    severity: str
    entity: str
    fired_at: float
    burn_short: float
    burn_long: float
    cleared_at: Optional[float] = None
    final: bool = False

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    @property
    def resolved(self) -> bool:
        """True only for an organic clear — the burn actually recovered."""
        return self.cleared_at is not None and not self.final

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "slo": self.slo,
            "rule": self.rule,
            "severity": self.severity,
            "entity": self.entity,
            "fired_at": self.fired_at,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "cleared_at": self.cleared_at,
        }
        if self.final:
            out["final"] = True
        return out


class SLOEngine:
    """Evaluates SLO burn rates on a cadence and keeps the alert log."""

    def __init__(
        self,
        monitor: Monitor,
        slos: Sequence[SLO],
        rules: Sequence[BurnRateRule] = DEFAULT_RULES,
        eval_interval_s: float = 30.0,
        rule_overrides: Optional[
            Mapping[str, Sequence[BurnRateRule]]
        ] = None,
    ) -> None:
        if eval_interval_s <= 0:
            raise ValueError(
                f"eval_interval_s must be positive, got {eval_interval_s}"
            )
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        unknown = set(rule_overrides or ()) - set(names)
        if unknown:
            raise ValueError(
                f"rule overrides for unknown SLOs: {sorted(unknown)}"
            )
        self.monitor = monitor
        self.slos = sorted(slos, key=lambda s: s.name)
        self.rules = tuple(rules)
        self.rule_overrides = {
            name: tuple(override)
            for name, override in (rule_overrides or {}).items()
        }
        self.eval_interval_s = eval_interval_s
        self.alerts: List[Alert] = []
        self.log: List[str] = []
        self._active: Dict[Tuple[str, str], Alert] = {}
        self._listeners: List[Any] = []
        self._finalized_at: Optional[float] = None

    def subscribe(self, listener: Any) -> None:
        """Register an alert-lifecycle listener.

        A listener may implement ``on_alert_fired(alert, now)`` and
        ``on_alert_cleared(alert, now)``; both are optional.  Listeners
        are notified in subscription order, inside :meth:`evaluate`, in
        the same canonical (SLO name, rule name) order as the log — so
        anything a listener does is as deterministic as the log itself.
        Forced closes from :meth:`finalize` do not notify (the run is
        over; there is nothing left to act on).
        """
        self._listeners.append(listener)

    def _notify(self, event: str, alert: Alert, now: float) -> None:
        for listener in self._listeners:
            hook = getattr(listener, event, None)
            if hook is not None:
                hook(alert, now)

    def rules_for(self, slo: SLO) -> Tuple[BurnRateRule, ...]:
        """The rule set evaluated for ``slo`` (override or the default).

        Overrides exist because one rule pair cannot fit every event
        rate: link transfers arrive a few per minute, so the stock
        ``min_events`` gates sized for request streams would mask a
        total outage.
        """
        return self.rule_overrides.get(slo.name, self.rules)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> List[Alert]:
        """Evaluate every (SLO, rule) pair at sim time ``now``.

        Fires and clears are appended to the log ordered by (SLO name,
        rule name) within this instant; re-evaluating the same instant
        is idempotent.  Returns alerts newly fired at this evaluation.
        """
        fired: List[Alert] = []
        for slo in self.slos:
            for rule in self.rules_for(slo):
                key = (slo.name, rule.name)
                agg_short = self.monitor.aggregate(
                    slo.kind, slo.entity, slo.signal, now, rule.short_s
                )
                agg_long = self.monitor.aggregate(
                    slo.kind, slo.entity, slo.signal, now, rule.long_s
                )
                burn_short = slo.burn_rate(agg_short)
                burn_long = slo.burn_rate(agg_long)
                firing = (
                    burn_short is not None
                    and burn_long is not None
                    and burn_short >= rule.factor
                    and burn_long >= rule.factor
                    and agg_long.count >= rule.min_events
                )
                active = self._active.get(key)
                if firing and active is None:
                    alert = Alert(
                        slo=slo.name,
                        rule=rule.name,
                        severity=rule.severity,
                        entity=f"{slo.kind}/{slo.entity}",
                        fired_at=now,
                        burn_short=burn_short,
                        burn_long=burn_long,
                    )
                    self._active[key] = alert
                    self.alerts.append(alert)
                    fired.append(alert)
                    self.log.append(
                        f"t={now!r} FIRING slo={slo.name} rule={rule.name} "
                        f"severity={rule.severity} entity={alert.entity} "
                        f"burn_short={burn_short!r} burn_long={burn_long!r}"
                    )
                    self._notify("on_alert_fired", alert, now)
                elif not firing and active is not None:
                    active.cleared_at = now
                    del self._active[key]
                    self.log.append(
                        f"t={now!r} CLEARED slo={slo.name} rule={rule.name} "
                        f"severity={rule.severity} entity={active.entity}"
                    )
                    self._notify("on_alert_cleared", active, now)
        return fired

    def finalize(self, now: float) -> List[Alert]:
        """Run a last evaluation, then force-close any alert still firing.

        Without this, an outage window that straddles the end of the run
        leaves its alert FIRING forever: the log never gains a terminal
        CLEARED line, so the log's byte content depends on whether the
        horizon happened to land after the recovery.  Forced closes are
        marked ``final=true`` in both the log line and the alert dict,
        and the alert still counts as *unresolved* for health rollups.
        Idempotent; returns the alerts that were force-closed.
        """
        if self._finalized_at is not None:
            if now != self._finalized_at:
                raise ValueError(
                    f"finalize({now!r}) after finalize({self._finalized_at!r})"
                )
            return []
        self.evaluate(now)
        closed: List[Alert] = []
        for key in sorted(self._active):
            alert = self._active[key]
            alert.cleared_at = now
            alert.final = True
            closed.append(alert)
            self.log.append(
                f"t={now!r} CLEARED slo={alert.slo} rule={alert.rule} "
                f"severity={alert.severity} entity={alert.entity} final=true"
            )
        self._active.clear()
        self._finalized_at = now
        return closed

    def attach(self, sim: Any) -> None:
        """Spawn the evaluation pump on ``sim``'s clock."""

        def _pump():
            while True:
                yield sim.timeout(self.eval_interval_s)
                self.evaluate(sim.now)

        sim.spawn(_pump())

    # -- reading -----------------------------------------------------------

    def active_alerts(self) -> List[Alert]:
        """Currently firing alerts, ordered by (SLO name, rule name)."""
        return [self._active[key] for key in sorted(self._active)]

    def unresolved_alerts(self) -> List[Alert]:
        """Alerts that never organically recovered, in canonical order.

        Mid-run this equals :meth:`active_alerts`; after
        :meth:`finalize` it also includes the force-closed
        (``final=true``) alerts, so health keeps reporting a fleet that
        ended the run burning.
        """
        out = self.active_alerts()
        out.extend(
            alert for alert in self.alerts
            if alert.final and alert not in out
        )
        out.sort(key=lambda a: (a.slo, a.rule))
        return out

    def alert_log(self) -> str:
        """The canonical alert log: one line per fire/clear, newline-terminated."""
        return "\n".join(self.log) + ("\n" if self.log else "")

    def health(self, now: float) -> Dict[str, Dict[str, Any]]:
        """Per-entity health snapshot derived from unresolved alerts.

        ``critical`` with an unresolved page-severity alert,
        ``degraded`` with only ticket-severity alerts, ``ok``
        otherwise.  After :meth:`finalize`, force-closed alerts still
        count: a zone that ended the run burning is not ``ok``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for slo in self.slos:
            entity = f"{slo.kind}/{slo.entity}"
            out.setdefault(entity, {"status": "ok", "active_alerts": []})
        for alert in self.unresolved_alerts():
            entry = out.setdefault(
                alert.entity, {"status": "ok", "active_alerts": []}
            )
            entry["active_alerts"].append(f"{alert.slo}/{alert.rule}")
            if alert.severity == "page":
                entry["status"] = "critical"
            elif entry["status"] == "ok":
                entry["status"] = "degraded"
        return dict(sorted(out.items()))

    def report(self, now: float) -> Dict[str, Any]:
        """The full alert report as a canonically ordered document."""
        return {
            "version": 1,
            "evaluated_at": now,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "log": list(self.log),
            "health": self.health(now),
            "stats": self.monitor.stats(now),
        }

    def report_json(self, now: float, indent: int = 0) -> str:
        """Canonical JSON text of :meth:`report` (byte-stable)."""
        return json.dumps(
            self.report(now),
            sort_keys=True,
            indent=indent or None,
            separators=(",", ": ") if indent else (",", ":"),
        )


@dataclass
class MonitoringPlane:
    """A monitor plus its SLO engine, attached to one environment."""

    monitor: Monitor
    engine: SLOEngine


def attach_monitoring(
    env: Any,
    slos: Sequence[SLO],
    rules: Sequence[BurnRateRule] = DEFAULT_RULES,
    eval_interval_s: float = 30.0,
    monitor: Optional[Monitor] = None,
    rule_overrides: Optional[Mapping[str, Sequence[BurnRateRule]]] = None,
) -> MonitoringPlane:
    """Wire a monitor and SLO engine onto a (traced) environment.

    The environment must already carry a recording tracer.  The engine's
    evaluation pump is spawned on the simulator, so alerts fire *during*
    the run at deterministic sim times.
    """
    monitor = attach_monitor(env, monitor)
    engine = SLOEngine(
        monitor, slos, rules=rules, eval_interval_s=eval_interval_s,
        rule_overrides=rule_overrides,
    )
    engine.attach(env.sim)
    return MonitoringPlane(monitor=monitor, engine=engine)
