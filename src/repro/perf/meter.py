"""Always-on runtime self-metering: the perf counters the hot paths keep.

The :class:`RuntimeMeter` is the performance-observability primitive the
kernel, controller, sweep runner, and sharded fleet all write into.  Two
constraints shape it:

* **Zero allocation on the hot path.**  Every counter is a plain int
  slot; the kernel's per-event cost is exactly one integer add on a
  hoisted local — the same instruction count as the event counter it
  replaced.  No dict lookups, no method calls, no objects per event.
* **Deterministic snapshots.**  :meth:`snapshot` exposes *only* the
  integer counters, which are functions of the simulated work — never of
  the host machine — so a snapshot embedded in a merged fleet document
  stays byte-identical across shard and worker counts.  Wall-clock
  measurements (plan wall, sweep wall, merge seconds) live in the
  separate :meth:`timings` view and never enter byte-compared documents.

The **disabled path** follows the telemetry tracer's null-object
pattern: sites that would call ``perf_counter()`` guard on the hoisted
``meter.enabled`` flag, and :data:`NULL_METER` (a shared
:class:`NullRuntimeMeter`) turns that guard into a single local bool
test — the ≤2% overhead budget asserted by the O1 benchmark.  The
counter increments themselves are always on; they *are* the metric.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

__all__ = ["NULL_METER", "NullRuntimeMeter", "RuntimeMeter"]

#: Integer counter slots, in snapshot order.  Deterministic: each is a
#: function of the simulated/submitted work, never of the host.
_COUNTER_SLOTS = (
    "fast_lane_hits",     # kernel: events dispatched via the immediate lane
    "heap_hits",          # kernel: events dispatched via the binary heap
    "batched_events",     # kernel: events dispatched inside run()'s
                          # same-time batch drains (step() dispatches are
                          # unbatched and do not count)
    "plans_computed",     # controller: plan() completions (plans/sec seed)
    "sweep_configs",      # sweep: configs resolved (cache hits + misses)
    "sweep_cache_hits",   # sweep: configs served from the on-disk cache
    "sweep_cache_misses", # sweep: configs actually executed
    "shard_runs",         # fleet: shard configs fanned out
    "merge_bytes",        # fleet: size of the canonical merged document
)

#: Float wall-clock slots.  Host-dependent provenance, never identity.
_TIMING_SLOTS = (
    "plan_wall_s",          # controller: seconds inside plan()
    "sweep_wall_s",         # sweep: seconds inside SweepRunner.run()
    "shard_wall_s",         # fleet: seconds fanning the shards out
    "merge_wall_s",         # fleet: seconds merging + serialising the documents
    "kernel_flush_wall_s",  # kernel: seconds inside run()'s dispatch drain
)


class RuntimeMeter:
    """Plain-slot perf counters; one instance per metered subsystem.

    Each :class:`~repro.sim.kernel.Simulator` owns one (kernel lanes and
    the controller's plan path share it); a
    :class:`~repro.sweep.runner.SweepRunner` owns another; a sharded
    fleet run folds its group meters plus its own fan-out/merge stats
    into a third.  Counters are public attributes incremented in place.
    """

    __slots__ = _COUNTER_SLOTS + _TIMING_SLOTS

    #: Wall-clock metering sites guard on this before calling
    #: ``perf_counter()``; hoist it like ``tracer.enabled``.
    enabled = True

    def __init__(self) -> None:
        for name in _COUNTER_SLOTS:
            setattr(self, name, 0)
        for name in _TIMING_SLOTS:
            setattr(self, name, 0.0)

    # -- views --------------------------------------------------------------

    @property
    def events_dispatched(self) -> int:
        """Total kernel events: fast-lane plus heap dispatches."""
        return self.fast_lane_hits + self.heap_hits

    def snapshot(self) -> Dict[str, int]:
        """The deterministic counters, canonical-JSON-safe.

        Byte-identical across shard/worker counts for any meter fed only
        by simulated work; safe to embed in merged documents.
        """
        out = {name: int(getattr(self, name)) for name in _COUNTER_SLOTS}
        out["events_dispatched"] = out["fast_lane_hits"] + out["heap_hits"]
        return out

    def timings(self) -> Dict[str, float]:
        """The wall-clock measurements (host-dependent, report-only)."""
        return {
            name: round(float(getattr(self, name)), 6)
            for name in _TIMING_SLOTS
        }

    # -- folding ------------------------------------------------------------

    def absorb(self, other: "RuntimeMeter") -> None:
        """Fold another meter's counters and timings into this one."""
        for name in _COUNTER_SLOTS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name in _TIMING_SLOTS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def absorb_snapshot(self, data: Mapping[str, Any]) -> None:
        """Fold a serialised :meth:`snapshot` (e.g. from a fleet group
        record) into this meter's counters; unknown keys are ignored."""
        for name in _COUNTER_SLOTS:
            value = data.get(name)
            if value is not None:
                setattr(self, name, getattr(self, name) + int(value))

    # -- export -------------------------------------------------------------

    def publish(
        self, registry, include_timings: bool = True, **labels: object
    ) -> None:
        """Export the counters into a
        :class:`~repro.telemetry.registry.LabeledMetricsRegistry`.

        One ``repro_meter_<counter>_total`` counter series per slot (so
        the meter rides the same Prometheus text exposition the health
        documents use) plus one ``repro_meter_wall_seconds`` gauge per
        timing slot, labelled by ``stage``.  Pass ``include_timings=False``
        for meters rebuilt from a counters-only snapshot, where the wall
        gauges would all read a misleading zero.
        """
        for name, value in sorted(self.snapshot().items()):
            registry.counter(
                f"repro_meter_{name}_total", **labels
            ).increment(value)
        if not include_timings:
            return
        for name, value in sorted(self.timings().items()):
            stage = name[: -len("_wall_s")]
            registry.gauge(
                "repro_meter_wall_seconds", stage=stage, **labels
            ).set(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RuntimeMeter events={self.events_dispatched} "
            f"plans={self.plans_computed}>"
        )


class NullRuntimeMeter(RuntimeMeter):
    """The disabled path: same slots, ``enabled`` False.

    Counter increments still land (they cost one int add and *are* the
    semantics — ``events_processed`` reads them), but every wall-clock
    metering site sees ``enabled`` False and skips its ``perf_counter``
    calls, leaving one hoisted bool test per metered operation.
    """

    __slots__ = ()

    enabled = False


#: Shared disabled meter, analogous to ``NULL_TRACER``: install it where
#: even the wall-clock metering guard must cost nothing.
NULL_METER = NullRuntimeMeter()
