"""The unified benchmark harness: registry, canonical document, history.

Every ``benchmarks/bench_*.py`` registers itself with
:func:`register_bench` (re-exported through ``benchmarks/_common.py``),
declaring its metrics with direction and threshold.  ``repro bench run``
then executes the registered suite and emits one canonical
``repro.bench/1`` document:

* ``benches.<name>.checks`` — the machine-independent payload keys the
  bench declared ``deterministic``: byte-stable across reruns on any
  machine (digests, event counts, flags);
* ``benches.<name>.timings`` — everything else: wall clocks and derived
  throughputs, meaningful only relative to the ``fingerprint`` block;
* ``fingerprint`` — host, platform, python, cpu count, git revision and
  UTC timestamp, so a committed baseline says *where* its numbers came
  from.

:func:`scrub_volatile` strips the fingerprint and timing blocks; the
canonical JSON of what remains is the document's byte-stability
contract.  Each ``repro bench run`` also appends one flattened line to
an on-disk history ledger (``repro.bench.history/1``), which is the
series the trend sentinel in :mod:`repro.perf.check` forecasts over.
"""

from __future__ import annotations

import importlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.sweep.spec import canonical_json

__all__ = [
    "BENCH_SCHEMA",
    "BenchSpec",
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA",
    "MetricSpec",
    "REGISTERED_MODULES",
    "append_history",
    "build_document",
    "flat_payload",
    "history_metrics",
    "history_series",
    "load_registry",
    "machine_fingerprint",
    "read_history",
    "record_summary",
    "register_bench",
    "resolve_history_path",
    "scrub_volatile",
]

#: Schema tag of the merged benchmark document.
BENCH_SCHEMA = "repro.bench/1"

#: Schema tag of each benchmark-history ledger line.
HISTORY_SCHEMA = "repro.bench.history/1"

#: Default history ledger, relative to the working directory.
DEFAULT_HISTORY_PATH = ".repro_bench_history.jsonl"

#: Environment variable overriding the history path ("" disables).
HISTORY_ENV = "REPRO_BENCH_HISTORY"

#: The benchmark modules the harness imports to populate the registry.
#: Order is presentation order for ``repro bench run``.
REGISTERED_MODULES = (
    "bench_o1_overhead",
    "bench_o2_kernel",
    "bench_o3_dispatch",
    "bench_p1_plans",
    "bench_f10_sharding",
    "bench_f11_fleet_obs",
    "bench_r2_remediation",
)


@dataclass(frozen=True)
class MetricSpec:
    """One gated (or reported) metric of a registered benchmark.

    ``kind`` selects the check semantics in :mod:`repro.perf.check`:

    * ``ratio`` — fresh/committed must stay within ``threshold`` in the
      bad ``direction`` (the O2 events/sec gate shape);
    * ``min`` / ``max`` — absolute floor/ceiling on the fresh value;
    * ``flag`` — the fresh value must be truthy (byte-identity gates);
    * ``equal`` — fresh must equal committed exactly (digests).

    ``threshold=None`` makes the metric report-only.  ``gate`` arms the
    check conditionally on fresh-payload facts (``{"cores_min": 4,
    "mode": "full"}`` reproduces the F10 scaling rule).  ``same_mode``
    skips committed comparisons when the fresh and committed runs used
    different modes (short-mode digests differ from full-mode ones by
    construction).
    """

    name: str
    kind: str
    direction: str = "higher"
    threshold: Optional[float] = None
    gate: Mapping[str, Any] = field(default_factory=dict)
    same_mode: bool = False


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: how to run it and how to judge it."""

    name: str
    runner: Callable[[], Any]
    metrics: Tuple[MetricSpec, ...]
    deterministic: Tuple[str, ...] = ()
    module: str = ""
    #: The metric a bare ``--threshold`` override applies to (the thin
    #: wrapper compatibility hook for the legacy per-bench checkers).
    primary: Optional[str] = None


#: Name -> spec for every benchmark registered in this process.
REGISTRY: Dict[str, BenchSpec] = {}

#: The most recent summary payload per bench name, stashed by
#: ``benchmarks/_common.write_bench_summary`` on every call (whether or
#: not a JSON file was written) so the harness can collect results
#: without re-parsing artifacts.
LAST_SUMMARIES: Dict[str, Dict[str, Any]] = {}


def register_bench(
    name: str,
    *,
    metrics: Sequence[MetricSpec] = (),
    deterministic: Sequence[str] = (),
    primary: Optional[str] = None,
) -> Callable:
    """Class decorator for a bench's ``run_*`` entry point.

    The decorated callable runs the benchmark (returning its table) and
    must call ``write_bench_summary(name, payload)`` with the same
    ``name`` so the harness can pick the payload up afterwards.
    """

    def decorate(runner: Callable[[], Any]) -> Callable[[], Any]:
        REGISTRY[name] = BenchSpec(
            name=name,
            runner=runner,
            metrics=tuple(metrics),
            deterministic=tuple(deterministic),
            module=getattr(runner, "__module__", ""),
            primary=primary,
        )
        return runner

    return decorate


def record_summary(name: str, payload: Mapping[str, Any]) -> None:
    """Stash a bench's summary payload (JSON round-trip = deep copy)."""
    LAST_SUMMARIES[name] = json.loads(json.dumps(payload, default=str))


def default_bench_dir() -> Path:
    """The repository's ``benchmarks/`` directory."""
    return Path(__file__).resolve().parents[3] / "benchmarks"


def load_registry(bench_dir: Optional[Path] = None) -> Dict[str, BenchSpec]:
    """Import every registered bench module and return the registry.

    The benchmark scripts import each other via the flat ``_common``
    module, so ``bench_dir`` is prepended to ``sys.path`` for the
    imports.  Modules already imported are not re-imported — short-mode
    flags read at import time are sticky per process.
    """
    target = Path(bench_dir) if bench_dir is not None else default_bench_dir()
    if str(target) not in sys.path:
        sys.path.insert(0, str(target))
    for module in REGISTERED_MODULES:
        importlib.import_module(module)
    return dict(REGISTRY)


def machine_fingerprint() -> Dict[str, Any]:
    """Where and when a bench document's numbers were measured."""
    from repro.ledger import git_revision

    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "git_rev": git_revision(),
        "recorded_at": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
    }


def build_document(
    results: Mapping[str, Mapping[str, Any]],
    mode: str,
    fingerprint: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the canonical ``repro.bench/1`` document.

    Each bench's payload is split on its registered ``deterministic``
    key list: those keys land in ``checks`` (byte-stable), the rest in
    ``timings`` (host-dependent).  Unregistered benches default to
    all-timings, the conservative split.
    """
    benches: Dict[str, Any] = {}
    for name in sorted(results):
        payload = results[name]
        spec = REGISTRY.get(name)
        det = set(spec.deterministic) if spec is not None else set()
        benches[name] = {
            "checks": {k: payload[k] for k in sorted(det & set(payload))},
            "timings": {
                k: payload[k] for k in sorted(set(payload) - det)
            },
        }
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "fingerprint": dict(fingerprint or machine_fingerprint()),
        "benches": benches,
    }


def scrub_volatile(document: Mapping[str, Any]) -> Dict[str, Any]:
    """The byte-stability view: no fingerprint, no timing blocks.

    ``canonical_json(scrub_volatile(doc))`` must be identical across
    reruns of the same suite on the same code, on any machine.
    """
    return {
        "schema": document.get("schema"),
        "mode": document.get("mode"),
        "benches": {
            name: {"checks": dict(entry.get("checks", {}))}
            for name, entry in sorted(document.get("benches", {}).items())
        },
    }


def flat_payload(entry: Mapping[str, Any]) -> Dict[str, Any]:
    """Flatten a document bench entry back to its summary payload.

    Accepts either a raw summary payload (returned unchanged) or a
    ``{"checks": ..., "timings": ...}`` document entry.
    """
    if "checks" in entry or "timings" in entry:
        merged = dict(entry.get("checks", {}))
        merged.update(entry.get("timings", {}))
        return merged
    return dict(entry)


def history_metrics(document: Mapping[str, Any]) -> Dict[str, float]:
    """The flat ``<bench>.<metric>`` numeric series a document feeds
    into the history ledger (registered metrics only)."""
    out: Dict[str, float] = {}
    for name, entry in sorted(document.get("benches", {}).items()):
        spec = REGISTRY.get(name)
        if spec is None:
            continue
        payload = flat_payload(entry)
        for metric in spec.metrics:
            value = payload.get(metric.name)
            if isinstance(value, bool):
                out[f"{name}.{metric.name}"] = float(value)
            elif isinstance(value, (int, float)):
                out[f"{name}.{metric.name}"] = float(value)
    return out


def resolve_history_path(explicit: Optional[str] = None) -> Optional[Path]:
    """The history ledger to use, or ``None`` when disabled.

    Precedence mirrors the run ledger: explicit argument >
    ``REPRO_BENCH_HISTORY`` env var > default; empty string disables.
    """
    if explicit is not None:
        return Path(explicit) if explicit else None
    env = os.environ.get(HISTORY_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path(DEFAULT_HISTORY_PATH)


def append_history(path: Path, document: Mapping[str, Any]) -> int:
    """Append one flattened history line; returns its index."""
    line = {
        "schema": HISTORY_SCHEMA,
        "mode": document.get("mode"),
        "fingerprint": dict(document.get("fingerprint", {})),
        "metrics": history_metrics(document),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    index = 0
    if path.exists():
        with path.open("r") as handle:
            index = sum(1 for raw in handle if raw.strip())
    with path.open("a") as handle:
        handle.write(canonical_json(line) + "\n")
    return index


def read_history(path: Path) -> List[Dict[str, Any]]:
    """Every parsable history line in file order (corrupt lines skipped)."""
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    with path.open("r") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except ValueError:
                continue
            if data.get("schema") != HISTORY_SCHEMA:
                continue
            entries.append(data)
    return entries


def history_series(
    entries: Sequence[Mapping[str, Any]],
    key: str,
    mode: Optional[str] = None,
) -> List[float]:
    """One metric's value series across history entries, oldest first.

    ``key`` is ``<bench>.<metric>``; ``mode`` filters to comparable runs
    (short-mode op counts are not comparable to full-mode ones).
    """
    series: List[float] = []
    for entry in entries:
        if mode is not None and entry.get("mode") != mode:
            continue
        value = entry.get("metrics", {}).get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series.append(float(value))
    return series
