"""The regression sentinel: direction-aware checks plus trend forecasts.

Generalizes the two historical per-bench checkers into one evaluator
driven by each benchmark's registered :class:`~repro.perf.bench.MetricSpec`
list:

* **flag** — must be truthy (byte-identity gates fail unconditionally);
* **min** / **max** — absolute floor/ceiling, optionally armed by a
  payload gate (the F10 rule: scaling only counts on ≥4-core full-mode
  runs);
* **ratio** — fresh vs committed within a fractional threshold in the
  bad direction (the O2 rule: >20% pure-event throughput drop fails);
* **equal** — exact match against the committed value, skipped when the
  two runs used different modes (digests differ across op counts by
  construction).

On top of the single-run thresholds, the **trend sentinel** reuses
:func:`repro.remediate.forecast.forecast_ahead` (Holt's linear method)
over the benchmark history ledger: a metric whose *forecast* — not yet
its latest sample — drifts past the threshold relative to the start of
its comparable-mode series is flagged before any individual run trips
the hard gate.  Trend hits warn by default and fail with
``--trend-fail``.

``tools/check_bench.py`` is the CLI shim over :func:`main`;
``tools/check_bench_o2.py`` and ``tools/check_bench_f10.py`` are thin
wrappers preserving their historical interfaces and pass/fail behavior.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.perf.bench import (
    BENCH_SCHEMA,
    REGISTRY,
    BenchSpec,
    MetricSpec,
    flat_payload,
    history_series,
    load_registry,
    read_history,
    resolve_history_path,
)

__all__ = [
    "CheckOutcome",
    "evaluate_bench",
    "evaluate_metric",
    "main",
    "trend_outcomes",
]


@dataclass(frozen=True)
class CheckOutcome:
    """One metric's verdict: where it stands and why."""

    bench: str
    metric: str
    status: str  # ok | fail | warn | skip | info
    detail: str

    @property
    def failed(self) -> bool:
        return self.status == "fail"

    def render(self) -> str:
        return (
            f"  {self.status.upper():>4}  {self.bench}.{self.metric}: "
            f"{self.detail}"
        )


def _gate_reason(
    gate: Mapping[str, Any], payload: Mapping[str, Any]
) -> Optional[str]:
    """Why a gated check stays disarmed, or ``None`` when it is armed."""
    if "mode" in gate and payload.get("mode", "short") != gate["mode"]:
        return f"needs {gate['mode']} mode, ran {payload.get('mode', '?')}"
    if "cores_min" in gate:
        cores = int(payload.get("cores", 1))
        if cores < int(gate["cores_min"]):
            return f"needs >={gate['cores_min']} cores, host has {cores}"
    for key, wanted in gate.items():
        # Any other gate key arms the check only when the payload field
        # equals the wanted value (e.g. {"core": "compiled"} skips the
        # compiled-throughput floor on pure-only hosts).
        if key in ("mode", "cores_min"):
            continue
        actual = payload.get(key)
        if actual != wanted:
            return f"needs {key}={wanted!r}, payload has {actual!r}"
    return None


def evaluate_metric(
    bench: str,
    spec: MetricSpec,
    fresh: Mapping[str, Any],
    committed: Optional[Mapping[str, Any]] = None,
    threshold: Optional[float] = None,
) -> CheckOutcome:
    """Judge one metric of one fresh payload against its spec.

    ``threshold`` overrides the spec's registered threshold (the legacy
    wrappers' ``--threshold`` hook); ``None`` keeps the registered one.
    """
    limit = spec.threshold if threshold is None else threshold
    value = fresh.get(spec.name)

    if spec.kind == "flag":
        if value:
            return CheckOutcome(bench, spec.name, "ok", "true")
        return CheckOutcome(
            bench, spec.name, "fail", f"expected true, got {value!r}"
        )

    if spec.kind in ("min", "max"):
        reason = _gate_reason(spec.gate, fresh)
        if reason is not None:
            return CheckOutcome(bench, spec.name, "skip", reason)
        number = float(value if value is not None else 0.0)
        if limit is None:
            return CheckOutcome(bench, spec.name, "info", f"{number:g}")
        if spec.kind == "min" and number < float(limit):
            return CheckOutcome(
                bench, spec.name, "fail",
                f"{number:g} below the {float(limit):g} floor",
            )
        if spec.kind == "max" and number > float(limit):
            return CheckOutcome(
                bench, spec.name, "fail",
                f"{number:g} above the {float(limit):g} ceiling",
            )
        word = "floor" if spec.kind == "min" else "ceiling"
        return CheckOutcome(
            bench, spec.name, "ok", f"{number:g} vs {float(limit):g} {word}"
        )

    # ratio / equal both need the committed side.
    if committed is None:
        return CheckOutcome(
            bench, spec.name, "skip", "no committed baseline"
        )
    if spec.same_mode:
        fresh_mode = fresh.get("mode")
        committed_mode = committed.get("mode")
        if fresh_mode != committed_mode:
            return CheckOutcome(
                bench, spec.name, "skip",
                f"mode mismatch ({fresh_mode} vs committed "
                f"{committed_mode})",
            )
    reference = committed.get(spec.name)

    if spec.kind == "equal":
        if reference is None:
            return CheckOutcome(
                bench, spec.name, "skip", "baseline lacks the metric"
            )
        if value == reference:
            return CheckOutcome(bench, spec.name, "ok", "matches committed")
        return CheckOutcome(
            bench, spec.name, "fail",
            f"{value!r} != committed {reference!r}",
        )

    if spec.kind == "ratio":
        if not isinstance(reference, (int, float)) or not reference:
            return CheckOutcome(
                bench, spec.name, "skip", "baseline lacks the metric"
            )
        number = float(value if value is not None else 0.0)
        ratio = number / float(reference)
        detail = (
            f"{number:g} is {100 * ratio:.1f}% of committed "
            f"{float(reference):g}"
        )
        if limit is None:
            return CheckOutcome(bench, spec.name, "info", detail)
        if spec.direction == "higher" and ratio < 1.0 - float(limit):
            return CheckOutcome(
                bench, spec.name, "fail",
                f"{detail} (floor {100 * (1.0 - float(limit)):.0f}%)",
            )
        if spec.direction == "lower" and ratio > 1.0 + float(limit):
            return CheckOutcome(
                bench, spec.name, "fail",
                f"{detail} (ceiling {100 * (1.0 + float(limit)):.0f}%)",
            )
        return CheckOutcome(bench, spec.name, "ok", detail)

    raise ValueError(f"unknown metric kind {spec.kind!r}")


def evaluate_bench(
    spec: BenchSpec,
    fresh: Mapping[str, Any],
    committed: Optional[Mapping[str, Any]] = None,
    threshold: Optional[float] = None,
) -> List[CheckOutcome]:
    """All metric verdicts for one bench.

    A bare ``threshold`` override applies only to the bench's declared
    ``primary`` metric — exactly the legacy wrappers' contract.
    """
    outcomes = []
    for metric in spec.metrics:
        override = (
            threshold
            if threshold is not None and metric.name == spec.primary
            else None
        )
        outcomes.append(
            evaluate_metric(spec.name, metric, fresh, committed, override)
        )
    return outcomes


def trend_outcomes(
    spec: BenchSpec,
    fresh_mode: Optional[str],
    history: Sequence[Mapping[str, Any]],
    *,
    steps: float = 3.0,
    drift_threshold: float = 0.2,
    min_points: int = 4,
    fail: bool = False,
) -> List[CheckOutcome]:
    """Forecast each directional metric's comparable-mode history.

    The Holt-linear forecast ``steps`` runs ahead is compared against
    the *start* of the series; a projected drift past
    ``drift_threshold`` in the bad direction flags the slow regression
    single-run thresholds miss.
    """
    from repro.remediate.forecast import forecast_ahead

    outcomes: List[CheckOutcome] = []
    for metric in spec.metrics:
        if metric.kind not in ("ratio", "min", "max"):
            continue
        series = history_series(
            history, f"{spec.name}.{metric.name}", mode=fresh_mode
        )
        if len(series) < min_points:
            continue
        baseline = series[0]
        if baseline <= 0.0:
            continue
        projected = forecast_ahead(series, steps=steps)
        if projected is None:
            continue
        drift = projected / baseline
        detail = (
            f"forecast {projected:g} in {steps:g} runs is "
            f"{100 * drift:.1f}% of the series start {baseline:g} "
            f"({len(series)} points)"
        )
        bad = (
            drift < 1.0 - drift_threshold
            if metric.direction == "higher"
            else drift > 1.0 + drift_threshold
        )
        status = ("fail" if fail else "warn") if bad else "ok"
        outcomes.append(
            CheckOutcome(spec.name, f"{metric.name}~trend", status, detail)
        )
    return outcomes


def _load_fresh(path: Path) -> Dict[str, Dict[str, Any]]:
    """Fresh payloads by bench name, from a merged document or a legacy
    single-bench summary file."""
    data = json.loads(path.read_text())
    if data.get("schema") == BENCH_SCHEMA:
        mode = data.get("mode")
        payloads = {}
        for name, entry in data.get("benches", {}).items():
            payload = flat_payload(entry)
            payload.setdefault("mode", mode)
            payloads[name] = payload
        return payloads
    name = data.get("bench")
    if not name:
        raise SystemExit(
            f"{path}: neither a {BENCH_SCHEMA} document nor a "
            "single-bench summary (no 'bench' key)"
        )
    return {str(name): flat_payload(data)}


def _load_committed(
    name: str, explicit: Optional[Path], baseline_dir: Path
) -> Optional[Dict[str, Any]]:
    path = explicit if explicit is not None else (
        baseline_dir / f"BENCH_{name}.json"
    )
    if not path.exists():
        return None
    return flat_payload(json.loads(path.read_text()))


def main(argv: Optional[Sequence[str]] = None) -> int:
    repo_root = Path(__file__).resolve().parents[3]
    parser = argparse.ArgumentParser(
        description="Check fresh benchmark results against committed "
        "baselines and the benchmark history trend."
    )
    parser.add_argument(
        "fresh", type=Path,
        help="repro.bench/1 document or a single BENCH_<name>.json",
    )
    parser.add_argument(
        "--bench", action="append", default=None,
        help="restrict checking to this bench (repeatable)",
    )
    parser.add_argument(
        "--committed", type=Path, default=None,
        help="explicit committed baseline file (single-bench checks)",
    )
    parser.add_argument(
        "--baseline-dir", type=Path,
        default=repo_root / "benchmarks",
        help="directory of committed BENCH_<name>.json baselines",
    )
    parser.add_argument(
        "--threshold", type=float, default=None,
        help="override the primary-metric threshold of each bench",
    )
    parser.add_argument(
        "--history", default=None,
        help="benchmark history ledger for the trend sentinel "
        "(default: REPRO_BENCH_HISTORY or .repro_bench_history.jsonl)",
    )
    parser.add_argument(
        "--no-trend", action="store_true",
        help="skip the trend sentinel entirely",
    )
    parser.add_argument(
        "--trend-fail", action="store_true",
        help="treat trend drifts as failures instead of warnings",
    )
    parser.add_argument(
        "--trend-threshold", type=float, default=0.2,
        help="fractional forecast drift that trips the sentinel "
        "(default 0.2)",
    )
    parser.add_argument(
        "--trend-steps", type=float, default=3.0,
        help="runs ahead to forecast (default 3)",
    )
    args = parser.parse_args(argv)

    load_registry()
    fresh_payloads = _load_fresh(args.fresh)
    selected = args.bench or sorted(fresh_payloads)

    history = []
    if not args.no_trend:
        history_path = resolve_history_path(args.history)
        if history_path is not None:
            history = read_history(history_path)

    failures = 0
    for name in selected:
        payload = fresh_payloads.get(name)
        if payload is None:
            print(f"  SKIP  {name}: not present in {args.fresh}")
            continue
        spec = REGISTRY.get(name)
        if spec is None:
            print(f"  SKIP  {name}: not a registered benchmark")
            continue
        committed = _load_committed(name, args.committed, args.baseline_dir)
        outcomes = evaluate_bench(
            spec, payload, committed, threshold=args.threshold
        )
        outcomes.extend(
            trend_outcomes(
                spec,
                payload.get("mode"),
                history,
                steps=args.trend_steps,
                drift_threshold=args.trend_threshold,
                fail=args.trend_fail,
            )
        )
        for outcome in outcomes:
            print(outcome.render())
            failures += outcome.failed

    if failures:
        print(f"FAIL: {failures} benchmark check(s) failed", file=sys.stderr)
        return 1
    print("OK: all benchmark checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
