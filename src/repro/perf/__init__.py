"""Performance observatory: self-metering, bench harness, sentinel.

Three layers, one subsystem:

* :mod:`repro.perf.meter` — the zero-allocation :class:`RuntimeMeter`
  threaded through the kernel dispatch loop, controller plan path,
  sweep runner, and sharded fleet; deterministic counter snapshots land
  in reports and ledger records, wall timings stay provenance-only.
* :mod:`repro.perf.bench` — the unified benchmark registry behind
  ``repro bench``: each ``benchmarks/bench_*.py`` registers its metrics
  (direction + threshold), runs produce one canonical ``repro.bench/1``
  document with a machine fingerprint, and every run appends to the
  benchmark history ledger.
* :mod:`repro.perf.check` — the regression sentinel
  (``tools/check_bench.py``): per-metric direction-aware thresholds
  against committed baselines plus a Holt-linear forecast over the
  history that flags slow drifts before any single run trips a gate.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    BenchSpec,
    HISTORY_SCHEMA,
    MetricSpec,
    REGISTERED_MODULES,
    append_history,
    build_document,
    flat_payload,
    history_metrics,
    history_series,
    load_registry,
    machine_fingerprint,
    read_history,
    record_summary,
    register_bench,
    resolve_history_path,
    scrub_volatile,
)
from repro.perf.check import (
    CheckOutcome,
    evaluate_bench,
    evaluate_metric,
    trend_outcomes,
)
from repro.perf.meter import NULL_METER, NullRuntimeMeter, RuntimeMeter

__all__ = [
    "BENCH_SCHEMA",
    "BenchSpec",
    "CheckOutcome",
    "HISTORY_SCHEMA",
    "MetricSpec",
    "NULL_METER",
    "NullRuntimeMeter",
    "REGISTERED_MODULES",
    "RuntimeMeter",
    "append_history",
    "build_document",
    "evaluate_bench",
    "evaluate_metric",
    "flat_payload",
    "history_metrics",
    "history_series",
    "load_registry",
    "machine_fingerprint",
    "read_history",
    "record_summary",
    "register_bench",
    "resolve_history_path",
    "scrub_volatile",
    "trend_outcomes",
]
