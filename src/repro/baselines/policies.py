"""Trivial and naive placement baselines."""

from __future__ import annotations

from typing import Optional

from repro.apps.graph import AppGraph
from repro.core.controller import Environment, OffloadController
from repro.core.partitioning import (
    FixedPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
    Partitioner,
)
from repro.core.scheduler import Scheduler
from repro.sim.rng import RngStream


class RandomPartitioner(Partitioner):
    """Assigns each offloadable component to the cloud with probability p."""

    name = "random"

    def __init__(self, rng: RngStream, offload_probability: float = 0.5) -> None:
        if not 0.0 <= offload_probability <= 1.0:
            raise ValueError("offload probability must be in [0, 1]")
        self.rng = rng
        self.offload_probability = offload_probability

    def partition(self, ctx: PartitionContext) -> Partition:
        cloud = frozenset(
            name
            for name in ctx.app.offloadable_names()
            if self.rng.bernoulli(self.offload_probability)
        )
        return Partition(ctx.app.name, cloud)


class MyopicLatencyPartitioner(Partitioner):
    """Per-component rule: offload iff remote time + own transfers < local time.

    Considers each component in isolation — it charges every incident
    edge as if it were cut, ignoring that co-located neighbours make
    those transfers free.  The gap to the exact partitioners quantifies
    the value of whole-graph optimisation.
    """

    name = "myopic"

    def partition(self, ctx: PartitionContext) -> Partition:
        cloud = set()
        for name in ctx.app.offloadable_names():
            local_s = ctx.local_duration(name)
            remote_s = ctx.cloud_duration(name)
            for pred in ctx.app.predecessors(name):
                nbytes = ctx.app.flow(pred, name).bytes_for(ctx.input_mb)
                remote_s += ctx.uplink_time(nbytes)
            for succ in ctx.app.successors(name):
                nbytes = ctx.app.flow(name, succ).bytes_for(ctx.input_mb)
                remote_s += ctx.downlink_time(nbytes)
            if remote_s < local_s:
                cloud.add(name)
        return Partition(ctx.app.name, frozenset(cloud))


def local_only_controller(
    env: Environment,
    app: AppGraph,
    scheduler: Optional[Scheduler] = None,
    weights: Optional[ObjectiveWeights] = None,
) -> OffloadController:
    """A controller that pins everything to the UE."""
    return OffloadController(
        env=env,
        app=app,
        partitioner=FixedPartitioner(Partition.local_only(app)),
        scheduler=scheduler,
        weights=weights,
    )


def full_offload_controller(
    env: Environment,
    app: AppGraph,
    scheduler: Optional[Scheduler] = None,
    weights: Optional[ObjectiveWeights] = None,
) -> OffloadController:
    """A controller that ships every offloadable component to the cloud."""
    return OffloadController(
        env=env,
        app=app,
        partitioner=FixedPartitioner(Partition.full_offload(app)),
        scheduler=scheduler,
        weights=weights,
    )


__all__ = [
    "MyopicLatencyPartitioner",
    "RandomPartitioner",
    "full_offload_controller",
    "local_only_controller",
]
