"""Baseline policies the evaluation compares against.

* :func:`local_only_controller` / :func:`full_offload_controller` — the
  two trivial placements every offloading paper brackets itself with;
* :class:`RandomPartitioner` — sanity floor for partition quality;
* :class:`MyopicLatencyPartitioner` — per-component greedy rule
  ("offload iff remote execution plus transfer beats local"), the naive
  heuristic practitioners reach for first;
* :class:`EdgeEnvironment` / :class:`EdgeJobRunner` — the
  edge-computing alternative (provisioned node at the access network)
  the paper argues non-time-critical workloads do not need.
"""

from repro.baselines.edge_runner import EdgeEnvironment, EdgeJobRunner
from repro.baselines.policies import (
    MyopicLatencyPartitioner,
    RandomPartitioner,
    full_offload_controller,
    local_only_controller,
)

__all__ = [
    "EdgeEnvironment",
    "EdgeJobRunner",
    "MyopicLatencyPartitioner",
    "RandomPartitioner",
    "full_offload_controller",
    "local_only_controller",
]
