"""The edge-computing comparison point.

Executes application DAGs with offloadable components on a provisioned
:class:`~repro.edge.node.EdgeNode` reached through the low-latency edge
path, pinned components on the UE.  Benchmark F5 compares this runner's
latency-adequacy and *total cost of ownership* (provisioned node-hours)
against the serverless controller under varying slack — the quantitative
version of the paper's core argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.apps.graph import AppGraph
from repro.apps.jobs import Job, JobResult
from repro.core.controller import ControllerReport, JobFailure
from repro.core.partitioning import Partition
from repro.device.ue import DeviceSpec, UserEquipment
from repro.edge.node import EdgeNode, EdgeNodeSpec
from repro.metrics import MetricRegistry
from repro.network.link import NetworkPath
from repro.network.profiles import edge_path, profile as connectivity_profile
from repro.sim import Event, Simulator
from repro.sim.rng import RngStream, SeedSequenceRegistry


class EdgeEnvironment:
    """UE + edge node + access-network paths."""

    def __init__(
        self,
        sim: Simulator,
        ue: UserEquipment,
        edge: EdgeNode,
        uplink: NetworkPath,
        downlink: NetworkPath,
        rng: SeedSequenceRegistry,
        metrics: Optional[MetricRegistry] = None,
        execution_noise_sigma: float = 0.05,
    ) -> None:
        self.sim = sim
        self.ue = ue
        self.edge = edge
        self.uplink = uplink
        self.downlink = downlink
        self.rng = rng
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.execution_noise_sigma = execution_noise_sigma

    @staticmethod
    def build(
        seed: int = 0,
        connectivity: str = "4g",
        device: Optional[DeviceSpec] = None,
        edge_spec: Optional[EdgeNodeSpec] = None,
        execution_noise_sigma: float = 0.05,
    ) -> "EdgeEnvironment":
        """Assemble a standard edge environment from a connectivity preset."""
        sim = Simulator()
        rng = SeedSequenceRegistry(seed)
        metrics = MetricRegistry()
        prof = connectivity_profile(connectivity)
        return EdgeEnvironment(
            sim=sim,
            ue=UserEquipment(sim, device, metrics=metrics),
            edge=EdgeNode(sim, edge_spec, metrics=metrics),
            uplink=edge_path(sim, prof, uplink=True, metrics=metrics),
            downlink=edge_path(sim, prof, uplink=False, metrics=metrics),
            rng=rng,
            metrics=metrics,
            execution_noise_sigma=execution_noise_sigma,
        )


class EdgeJobRunner:
    """Runs jobs with offloadable components on the edge node."""

    def __init__(
        self,
        env: EdgeEnvironment,
        app: AppGraph,
        partition: Optional[Partition] = None,
    ) -> None:
        self.env = env
        self.app = app
        self.partition = partition or Partition.full_offload(app)
        self.partition.validate(app)
        self._exec_rng = env.rng.stream(f"edge_runner.{app.name}.exec")

    def _actual_work(self, nominal: float) -> float:
        sigma = self.env.execution_noise_sigma
        if sigma <= 0 or nominal <= 0:
            return nominal
        return nominal * self._exec_rng.lognormal_bounded(1.0, sigma, low=0.2, high=5.0)

    def submit(self, job: Job) -> Event:
        """Execute one job immediately; process yields a JobResult."""
        if job.app.name != self.app.name:
            raise ValueError("job belongs to a different application")
        return self.env.sim.spawn(
            self._job_proc(job), name=f"edgejob{job.job_id}"
        )

    def _job_proc(self, job: Job) -> Generator[Event, Any, JobResult]:
        sim = self.env.sim
        started = sim.now
        app = self.app
        partition = self.partition
        energy_j = 0.0
        energy_breakdown: Dict[str, float] = {}
        finish_times: Dict[str, float] = {}

        def charge(kind: str, joules: float) -> None:
            nonlocal energy_j
            energy_j += joules
            energy_breakdown[kind] = energy_breakdown.get(kind, 0.0) + joules

        component_done: Dict[str, Event] = {
            name: sim.event() for name in app.component_names
        }
        edge_done: Dict[Tuple[str, str], Event] = {
            (flow.src, flow.dst): sim.event() for flow in app.flows
        }

        def component_proc(name: str) -> Generator[Event, Any, None]:
            incoming = [edge_done[(p, name)] for p in app.predecessors(name)]
            if incoming:
                yield sim.all_of(incoming)
            actual = self._actual_work(job.component_work(name))
            if partition.is_cloud(name):  # "cloud" side = the edge node here
                execution = yield self.env.edge.execute(actual)
                charge(
                    "idle",
                    self.env.ue.spec.energy.idle_energy(execution.latency),
                )
            else:
                execution = yield self.env.ue.execute(actual)
                charge("compute", execution.energy_j)
            finish_times[name] = sim.now
            component_done[name].succeed(None)

        def edge_proc(src: str, dst: str) -> Generator[Event, Any, None]:
            yield component_done[src]
            src_remote = partition.is_cloud(src)
            dst_remote = partition.is_cloud(dst)
            if src_remote != dst_remote:
                nbytes = job.flow_bytes(src, dst)
                if not src_remote and dst_remote:
                    result = yield self.env.ue.transmit(nbytes, self.env.uplink)
                    charge(
                        "tx",
                        self.env.ue.spec.energy.transmit_energy(
                            result.radio_seconds
                        ),
                    )
                else:
                    result = yield self.env.ue.receive(nbytes, self.env.downlink)
                    charge(
                        "rx",
                        self.env.ue.spec.energy.receive_energy(
                            result.radio_seconds
                        ),
                    )
            edge_done[(src, dst)].succeed(None)

        processes = [
            sim.spawn(edge_proc(f.src, f.dst), name=f"edge.{f.src}->{f.dst}")
            for f in app.flows
        ]
        processes += [
            sim.spawn(component_proc(n), name=f"comp.{n}")
            for n in app.component_names
        ]
        yield sim.all_of(processes)

        return JobResult(
            job=job,
            started_at=started,
            finished_at=sim.now,
            ue_energy_j=energy_j,
            cloud_cost_usd=0.0,  # edge cost is provisioned, not per-job
            component_finish_times=finish_times,
            energy_breakdown=energy_breakdown,
        )

    def run_workload(self, jobs: List[Job]) -> ControllerReport:
        """Release each job at its ``released_at`` and run to completion."""
        report = ControllerReport()
        sim = self.env.sim

        def release(job: Job) -> Generator[Event, Any, None]:
            if job.released_at > sim.now:
                yield sim.timeout(job.released_at - sim.now)
            try:
                result = yield self.submit(job)
            except BaseException as error:  # noqa: BLE001
                report.failures.append(JobFailure(job, sim.now, error))
            else:
                report.results.append(result)

        drivers = [sim.spawn(release(job)) for job in jobs]
        sim.run(until=sim.all_of(drivers))
        report.results.sort(key=lambda r: r.finished_at)
        return report


__all__ = ["EdgeEnvironment", "EdgeJobRunner"]
