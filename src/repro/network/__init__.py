"""Network models: links, paths, and standard connectivity profiles.

A :class:`Link` combines propagation latency, a (possibly time-varying)
bandwidth trace and a per-request protocol overhead, and serialises
concurrent transfers through a configurable number of channels — the model
used by EdgeCloudSim-class simulators.  A :class:`NetworkPath` chains links
(UE → radio access → WAN → cloud).  :mod:`repro.network.profiles` provides
calibrated presets (3G/4G/5G/WiFi/broadband) used across the benchmarks.
"""

from repro.network.link import Link, NetworkPath, TransferResult
from repro.network.profiles import (
    CONNECTIVITY_PROFILES,
    ConnectivityProfile,
    cloud_path,
    edge_path,
    profile,
)

__all__ = [
    "CONNECTIVITY_PROFILES",
    "ConnectivityProfile",
    "Link",
    "NetworkPath",
    "TransferResult",
    "cloud_path",
    "edge_path",
    "profile",
]
