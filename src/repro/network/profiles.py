"""Calibrated connectivity presets.

Numbers follow the values commonly used by edge-computing simulators
(EdgeCloudSim's default scenarios and 3GPP reference figures): what matters
for the reproduction is the *ordering* and rough ratios between
technologies, not exact Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics import MetricRegistry
from repro.network.link import Link, NetworkPath
from repro.sim import Simulator

MBPS = 1_000_000 / 8  # bytes per second in one megabit/second


@dataclass(frozen=True)
class ConnectivityProfile:
    """Uplink characteristics of one access technology."""

    name: str
    uplink_bps: float  # bytes/second
    downlink_bps: float  # bytes/second
    access_latency_s: float  # one-way UE <-> access network
    wan_latency_s: float  # one-way access network <-> cloud region
    edge_latency_s: float  # one-way access network <-> edge node
    per_request_overhead_bytes: float = 1500.0


CONNECTIVITY_PROFILES: Dict[str, ConnectivityProfile] = {
    "3g": ConnectivityProfile(
        name="3g",
        uplink_bps=2 * MBPS,
        downlink_bps=8 * MBPS,
        access_latency_s=0.060,
        wan_latency_s=0.050,
        edge_latency_s=0.005,
    ),
    "4g": ConnectivityProfile(
        name="4g",
        uplink_bps=10 * MBPS,
        downlink_bps=40 * MBPS,
        access_latency_s=0.025,
        wan_latency_s=0.040,
        edge_latency_s=0.004,
    ),
    "5g": ConnectivityProfile(
        name="5g",
        uplink_bps=50 * MBPS,
        downlink_bps=200 * MBPS,
        access_latency_s=0.008,
        wan_latency_s=0.035,
        edge_latency_s=0.002,
    ),
    "wifi": ConnectivityProfile(
        name="wifi",
        uplink_bps=40 * MBPS,
        downlink_bps=80 * MBPS,
        access_latency_s=0.003,
        wan_latency_s=0.030,
        edge_latency_s=0.002,
    ),
    "broadband": ConnectivityProfile(
        name="broadband",
        uplink_bps=100 * MBPS,
        downlink_bps=500 * MBPS,
        access_latency_s=0.002,
        wan_latency_s=0.020,
        edge_latency_s=0.002,
    ),
}


def profile(name: str) -> ConnectivityProfile:
    """Look up a preset by name (case-insensitive)."""
    key = name.lower()
    if key not in CONNECTIVITY_PROFILES:
        raise KeyError(
            f"unknown connectivity profile {name!r}; "
            f"known: {sorted(CONNECTIVITY_PROFILES)}"
        )
    return CONNECTIVITY_PROFILES[key]


def cloud_path(
    sim: Simulator,
    prof: "ConnectivityProfile | str",
    uplink: bool = True,
    metrics: Optional[MetricRegistry] = None,
) -> NetworkPath:
    """Build the UE → access → WAN → cloud path for a profile.

    ``uplink=False`` builds the return (cloud → UE) direction with the
    downlink rate.
    """
    prof = profile(prof) if isinstance(prof, str) else prof
    rate = prof.uplink_bps if uplink else prof.downlink_bps
    direction = "up" if uplink else "down"
    access = Link(
        sim,
        bandwidth=rate,
        latency_s=prof.access_latency_s,
        per_request_overhead_bytes=prof.per_request_overhead_bytes,
        name=f"{prof.name}.access.{direction}",
        metrics=metrics,
    )
    wan = Link(
        sim,
        bandwidth=rate * 4,  # the WAN core is rarely the bottleneck
        latency_s=prof.wan_latency_s,
        name=f"{prof.name}.wan.{direction}",
        metrics=metrics,
    )
    return NetworkPath(sim, [access, wan], name=f"{prof.name}.cloud.{direction}")


def edge_path(
    sim: Simulator,
    prof: "ConnectivityProfile | str",
    uplink: bool = True,
    metrics: Optional[MetricRegistry] = None,
) -> NetworkPath:
    """Build the UE → access → edge path (skips the WAN hop)."""
    prof = profile(prof) if isinstance(prof, str) else prof
    rate = prof.uplink_bps if uplink else prof.downlink_bps
    direction = "up" if uplink else "down"
    access = Link(
        sim,
        bandwidth=rate,
        latency_s=prof.access_latency_s + prof.edge_latency_s,
        per_request_overhead_bytes=prof.per_request_overhead_bytes,
        name=f"{prof.name}.edge.{direction}",
        metrics=metrics,
    )
    return NetworkPath(sim, [access], name=f"{prof.name}.edgepath.{direction}")


__all__ = [
    "CONNECTIVITY_PROFILES",
    "ConnectivityProfile",
    "MBPS",
    "cloud_path",
    "edge_path",
    "profile",
]
