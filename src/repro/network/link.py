"""Link and path models with contention and time-varying bandwidth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence

from repro.metrics import MetricRegistry
from repro.sim import Resource, Simulator
from repro.sim.events import Event
from repro.telemetry.tracer import PHASE_TRANSFER
from repro.traces.bandwidth import BandwidthTrace, ConstantBandwidth


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one completed transfer.

    ``active_seconds`` counts only the time the medium was actually in
    use (serialisation + propagation) across every hop; the difference to
    ``duration`` is queueing for free channels.  ``radio_seconds`` is the
    *first* hop's active time — the only stretch during which the UE's
    own radio transmits; downstream (WAN) hops are the carrier's
    equipment.  Radio energy accounting uses ``radio_seconds``: a queued
    transfer does not keep the radio hot, and neither does WAN
    store-and-forward.
    """

    bytes: float
    started_at: float
    finished_at: float
    active_seconds: float = 0.0
    radio_seconds: float = 0.0

    @property
    def duration(self) -> float:
        """Wall-clock seconds the transfer took, including queueing."""
        return self.finished_at - self.started_at

    @property
    def queue_seconds(self) -> float:
        """Seconds spent waiting for a free channel."""
        return max(self.duration - self.active_seconds, 0.0)


class Link:
    """A single network hop.

    Parameters
    ----------
    sim:
        The owning simulator.
    bandwidth:
        Bytes/second, either a number (constant) or a
        :class:`~repro.traces.bandwidth.BandwidthTrace`.
    latency_s:
        One-way propagation delay added to every transfer.
    per_request_overhead_bytes:
        Protocol overhead (headers, TLS) added to each transfer's payload.
    channels:
        How many transfers may progress concurrently.  The default of 1
        serialises transfers, the standard conservative uplink model;
        higher values approximate fair sharing by slot.
    name:
        Used in metric keys.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: "BandwidthTrace | float",
        latency_s: float = 0.0,
        per_request_overhead_bytes: float = 0.0,
        channels: int = 1,
        name: str = "link",
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        if per_request_overhead_bytes < 0:
            raise ValueError("per-request overhead must be >= 0")
        self.sim = sim
        self.trace = (
            bandwidth
            if isinstance(bandwidth, BandwidthTrace)
            else ConstantBandwidth(float(bandwidth))
        )
        self.latency_s = float(latency_s)
        self.per_request_overhead_bytes = float(per_request_overhead_bytes)
        self.name = name
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._channels = Resource(sim, capacity=channels)

    @property
    def trace(self) -> BandwidthTrace:
        """The bandwidth signal; assigning one refreshes the fast path."""
        return self._trace

    @trace.setter
    def trace(self, trace: BandwidthTrace) -> None:
        self._trace = trace
        # Constant-rate links (the overwhelmingly common case: every
        # connectivity preset and sweep axis) skip the piecewise
        # integration in ``transfer_time`` — one division instead of a
        # regime-crossing loop plus two virtual calls per transfer.  The
        # isinstance check runs once per assignment, not per transfer.
        self._const_rate = (
            trace.rate_bps if type(trace) is ConstantBandwidth else None
        )

    @property
    def queue_length(self) -> int:
        """Transfers currently waiting for a channel."""
        return self._channels.queue_length

    def apply_faults(self, schedule, target: Optional[str] = None) -> None:
        """Overlay a :class:`~repro.faults.schedule.FaultSchedule` on this
        link: outage windows zero the rate, degradation windows scale it.

        The wrap composes (repeated calls stack schedules) and keeps the
        piecewise-constant contract, so in-flight planning estimates and
        transfer integration remain exact.
        """
        from repro.faults.injector import FaultedBandwidth

        self.trace = FaultedBandwidth(self.trace, schedule, target)
        self.metrics.counter(f"{self.name}.fault_overlays").increment()

    def estimate_transfer_time(self, nbytes: float, at: Optional[float] = None) -> float:
        """Uncontended estimate of moving ``nbytes`` starting at ``at``.

        This is what offloading *policies* use for planning; the actual
        transfer may take longer under contention.
        """
        start = self.sim.now if at is None else at
        payload = nbytes + self.per_request_overhead_bytes
        rate = self._const_rate
        if rate is not None and payload > 0:
            # Bit-identical to ConstantBandwidth.transfer_time's
            # ``(start + needed) - start`` — the round-trip through the
            # start time is kept so existing golden traces replay exactly.
            return self.latency_s + ((start + payload / rate) - start)
        return self.latency_s + self._trace.transfer_time(start, payload)

    def transfer(self, nbytes: float) -> Event:
        """Start moving ``nbytes`` across the link.

        Returns a process event whose value is a :class:`TransferResult`.
        Queueing for a free channel, protocol overhead, propagation latency
        and bandwidth variation are all accounted.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.sim.spawn(self._transfer_proc(nbytes), name=f"{self.name}.xfer")

    def _transfer_proc(
        self, nbytes: float
    ) -> Generator[Event, object, TransferResult]:
        started = self.sim.now
        request = self._channels.request()
        yield request
        try:
            payload = nbytes + self.per_request_overhead_bytes
            rate = self._const_rate
            if rate is not None and payload > 0:
                # Same float round-trip as ConstantBandwidth.transfer_time
                # so transfer durations stay byte-identical in traces.
                now = self.sim.now
                serialisation = (now + payload / rate) - now
            else:
                serialisation = self._trace.transfer_time(self.sim.now, payload)
            active = serialisation + self.latency_s
            yield self.sim.timeout(active)
        finally:
            self._channels.release(request)
        finished = self.sim.now
        self.metrics.counter(f"{self.name}.transfers").increment()
        self.metrics.counter(f"{self.name}.bytes").increment(nbytes)
        self.metrics.summary(f"{self.name}.duration_s").observe(finished - started)
        return TransferResult(
            bytes=nbytes,
            started_at=started,
            finished_at=finished,
            active_seconds=active,
            radio_seconds=active,
        )


class NetworkPath:
    """An ordered chain of links (e.g. UE → cellular → WAN → cloud).

    Transfers traverse links sequentially: store-and-forward semantics,
    which upper-bounds pipelined reality and keeps planning conservative.
    """

    def __init__(self, sim: Simulator, links: Sequence[Link], name: str = "path") -> None:
        if not links:
            raise ValueError("a path needs at least one link")
        self.sim = sim
        self.links: List[Link] = list(links)
        self.name = name

    @property
    def total_latency_s(self) -> float:
        """Sum of per-link propagation delays."""
        return sum(link.latency_s for link in self.links)

    def estimate_transfer_time(self, nbytes: float, at: Optional[float] = None) -> float:
        """Uncontended store-and-forward estimate across every hop."""
        t = self.sim.now if at is None else at
        elapsed = 0.0
        for link in self.links:
            hop = link.estimate_transfer_time(nbytes, at=t + elapsed)
            elapsed += hop
        return elapsed

    def bottleneck_rate(self, at: Optional[float] = None) -> float:
        """Lowest instantaneous link rate along the path."""
        t = self.sim.now if at is None else at
        return min(link.trace.rate_at(t) for link in self.links)

    def transfer(self, nbytes: float, parent: Optional[object] = None) -> Event:
        """Move ``nbytes`` across every hop in order.

        Returns a process event whose value is a :class:`TransferResult`
        spanning the whole path.  ``parent`` optionally carries the
        caller's telemetry span; when tracing is enabled the whole-path
        transfer records a ``transfer`` span beneath it.
        """
        return self.sim.spawn(
            self._transfer_proc(nbytes, parent), name=f"{self.name}.xfer"
        )

    def _transfer_proc(
        self, nbytes: float, parent: Optional[object] = None
    ) -> Generator[Event, object, TransferResult]:
        started = self.sim.now
        tracer = self.sim.tracer
        span = tracer.start_span(
            self.name, category=PHASE_TRANSFER, parent=parent, bytes=nbytes
        )
        active = 0.0
        radio = 0.0
        for index, link in enumerate(self.links):
            hop: TransferResult = yield link.transfer(nbytes)
            active += hop.active_seconds
            if index == 0:
                radio = hop.active_seconds
        tracer.end_span(span, active_s=active, hops=len(self.links))
        return TransferResult(
            bytes=nbytes,
            started_at=started,
            finished_at=self.sim.now,
            active_seconds=active,
            radio_seconds=radio,
        )


__all__ = ["Link", "NetworkPath", "TransferResult"]
