"""Edge-computing baseline substrate.

The paper's framing is that Edge Computing wins on response time but
"a significant drawback ... is the required infrastructure".  This package
models exactly that trade-off: an :class:`EdgeNode` is a provisioned,
always-on machine close to the UE — low latency, bounded capacity, and a
bill that accrues with wall-clock time whether or not it is used, in
contrast to the serverless platform's strictly pay-per-use billing.
"""

from repro.edge.node import EdgeExecution, EdgeNode, EdgeNodeSpec

__all__ = ["EdgeExecution", "EdgeNode", "EdgeNodeSpec"]
