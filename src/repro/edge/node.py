"""A provisioned edge node with always-on cost and bounded capacity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.metrics import MetricRegistry
from repro.sim import Event, Resource, Simulator


@dataclass(frozen=True)
class EdgeNodeSpec:
    """Hardware and pricing of one edge node.

    ``hourly_cost_usd`` models the capital+operations cost of keeping the
    node provisioned; the default matches small dedicated-host pricing
    (~$0.20/h for a 4-core box), which is the infrastructure burden the
    paper's non-time-critical argument avoids.
    """

    name: str = "edge"
    cycles_per_second: float = 3.0e9
    cores: int = 4
    hourly_cost_usd: float = 0.20

    def __post_init__(self) -> None:
        if self.cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be > 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.hourly_cost_usd < 0:
            raise ValueError("hourly cost must be >= 0")

    def execution_time(self, work_gcycles: float) -> float:
        """Seconds one core needs for ``work_gcycles``."""
        if work_gcycles < 0:
            raise ValueError("work must be >= 0")
        return work_gcycles * 1e9 / self.cycles_per_second


@dataclass(frozen=True)
class EdgeExecution:
    """Record of one execution on the edge node."""

    work_gcycles: float
    submitted_at: float
    started_at: float
    finished_at: float

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for a free core."""
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float:
        """End-to-end seconds on the node."""
        return self.finished_at - self.submitted_at


class EdgeNode:
    """An always-on compute node near the access network."""

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[EdgeNodeSpec] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec if spec is not None else EdgeNodeSpec()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._cpu = Resource(sim, capacity=self.spec.cores)
        self._provisioned_since = sim.now
        self._busy_core_seconds = 0.0
        self._executions: List[EdgeExecution] = []

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a core."""
        return self._cpu.queue_length

    def estimate_execution_time(self, work_gcycles: float) -> float:
        """Uncontended single-core runtime estimate."""
        return self.spec.execution_time(work_gcycles)

    def execute(self, work_gcycles: float) -> Event:
        """Run work on the node; process event yields :class:`EdgeExecution`."""
        return self.sim.spawn(
            self._execute_proc(work_gcycles), name=f"{self.spec.name}.exec"
        )

    def _execute_proc(
        self, work_gcycles: float
    ) -> Generator[Event, object, EdgeExecution]:
        submitted = self.sim.now
        request = self._cpu.request()
        yield request
        started = self.sim.now
        try:
            duration = self.spec.execution_time(work_gcycles)
            yield self.sim.timeout(duration)
        finally:
            self._cpu.release(request)
        record = EdgeExecution(
            work_gcycles=work_gcycles,
            submitted_at=submitted,
            started_at=started,
            finished_at=self.sim.now,
        )
        self._busy_core_seconds += record.finished_at - record.started_at
        self._executions.append(record)
        self.metrics.counter(f"{self.spec.name}.jobs").increment()
        self.metrics.summary(f"{self.spec.name}.latency_s").observe(record.latency)
        return record

    # -- accounting -----------------------------------------------------------

    @property
    def executions(self) -> List[EdgeExecution]:
        """Completed executions in completion order."""
        return list(self._executions)

    def provisioned_cost(self, until: Optional[float] = None) -> float:
        """Bill for keeping the node on from provisioning until ``until``.

        This accrues regardless of utilisation — the structural difference
        from serverless pay-per-use.
        """
        end = self.sim.now if until is None else until
        if end < self._provisioned_since:
            raise ValueError("billing end precedes provisioning time")
        hours = (end - self._provisioned_since) / 3600.0
        return hours * self.spec.hourly_cost_usd

    def utilisation(self, until: Optional[float] = None) -> float:
        """Busy-core-seconds over provisioned core-seconds, in [0, 1]."""
        end = self.sim.now if until is None else until
        wall = max(end - self._provisioned_since, 0.0)
        if wall == 0:
            return 0.0
        return min(self._busy_core_seconds / (wall * self.spec.cores), 1.0)


__all__ = ["EdgeExecution", "EdgeNode", "EdgeNodeSpec"]
