"""Workload-arrival and bandwidth-trace generators.

Non-time-critical offloading decisions hinge on *when* work arrives and
*how good* the uplink is at that moment.  This package generates both
signals reproducibly:

* arrival processes — :class:`PoissonArrivals`, :class:`DiurnalArrivals`
  (sinusoidally modulated Poisson), :class:`BurstyArrivals` (two-state
  MMPP) and :class:`DeterministicArrivals`;
* bandwidth traces — :class:`ConstantBandwidth`, :class:`StepBandwidth`,
  :class:`MarkovBandwidth` (Gilbert–Elliott style good/bad channel) and
  :class:`DiurnalBandwidth`.
"""

from repro.traces.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.traces.replay import (
    load_report_summary,
    load_workload,
    save_report,
    save_workload,
)
from repro.traces.bandwidth import (
    BandwidthTrace,
    ConstantBandwidth,
    DiurnalBandwidth,
    MarkovBandwidth,
    StepBandwidth,
)

__all__ = [
    "ArrivalProcess",
    "BandwidthTrace",
    "BurstyArrivals",
    "ConstantBandwidth",
    "DeterministicArrivals",
    "DiurnalArrivals",
    "DiurnalBandwidth",
    "MarkovBandwidth",
    "PoissonArrivals",
    "StepBandwidth",
    "load_report_summary",
    "load_workload",
    "save_report",
    "save_workload",
]
