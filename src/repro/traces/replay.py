"""Workload trace import/export (JSON).

Lets experiments replay recorded (or hand-authored) job traces instead
of synthesising arrivals, and persists run reports for offline analysis
— the glue between the simulator and external tooling.

The trace format is deliberately minimal::

    {
      "version": 1,
      "jobs": [
        {"app": "photo_backup", "input_mb": 4.0,
         "released_at": 120.0, "deadline": 3720.0},
        ...
      ]
    }

``deadline`` may be the string ``"inf"`` (or omitted) for best-effort
jobs.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.apps.graph import AppGraph
from repro.apps.jobs import Job, JobResult

TRACE_VERSION = 1

AppResolver = Union[Mapping[str, AppGraph], Callable[[str], AppGraph]]


def job_to_record(job: Job) -> dict:
    """One job as a plain JSON-safe dict."""
    return {
        "app": job.app.name,
        "input_mb": job.input_mb,
        "released_at": job.released_at,
        "deadline": "inf" if math.isinf(job.deadline) else job.deadline,
    }


def record_to_job(record: Mapping, resolve: AppResolver) -> Job:
    """Rebuild a job from a trace record.

    ``resolve`` maps app names to graphs: a dict or a callable.
    """
    name = record["app"]
    if callable(resolve):
        app = resolve(name)
    else:
        if name not in resolve:
            raise KeyError(f"trace references unknown app {name!r}")
        app = resolve[name]
    deadline = record.get("deadline", "inf")
    if deadline == "inf" or deadline is None:
        deadline = math.inf
    return Job(
        app=app,
        input_mb=float(record.get("input_mb", 1.0)),
        released_at=float(record.get("released_at", 0.0)),
        deadline=float(deadline),
    )


def save_workload(path: "str | Path", jobs: Sequence[Job]) -> None:
    """Write a job trace as JSON."""
    payload = {
        "version": TRACE_VERSION,
        "jobs": [job_to_record(job) for job in jobs],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_workload(path: "str | Path", resolve: AppResolver) -> List[Job]:
    """Read a job trace, sorted by release time."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {version!r} (expected {TRACE_VERSION})"
        )
    jobs = [record_to_job(record, resolve) for record in payload.get("jobs", [])]
    return sorted(jobs, key=lambda job: job.released_at)


def result_to_record(result: JobResult) -> dict:
    """One job result as a plain JSON-safe dict."""
    return {
        "app": result.job.app.name,
        "input_mb": result.job.input_mb,
        "released_at": result.job.released_at,
        "deadline": (
            "inf" if math.isinf(result.job.deadline) else result.job.deadline
        ),
        "started_at": result.started_at,
        "finished_at": result.finished_at,
        "response_s": result.response_time,
        "ue_energy_j": result.ue_energy_j,
        "cloud_cost_usd": result.cloud_cost_usd,
        "met_deadline": result.met_deadline,
    }


def save_report(path: "str | Path", report) -> None:
    """Persist a :class:`~repro.core.controller.ControllerReport` as JSON.

    Aggregates are included so downstream tooling need not recompute.
    """
    payload = {
        "version": TRACE_VERSION,
        "summary": {
            "jobs_completed": report.jobs_completed,
            "failures": len(report.failures),
            "deadline_miss_rate": report.deadline_miss_rate,
            "mean_response_s": (
                None
                if math.isnan(report.mean_response_s)
                else report.mean_response_s
            ),
            "total_ue_energy_j": report.total_ue_energy_j,
            "total_cloud_cost_usd": report.total_cloud_cost_usd,
        },
        "results": [result_to_record(result) for result in report.results],
        "failures": [
            {
                "app": failure.job.app.name,
                "released_at": failure.job.released_at,
                "failed_at": failure.failed_at,
                "error": f"{type(failure.error).__name__}: {failure.error}",
            }
            for failure in report.failures
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_report_summary(path: "str | Path") -> dict:
    """Read back the summary block of a saved report."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != TRACE_VERSION:
        raise ValueError("unsupported report version")
    return payload["summary"]


__all__ = [
    "TRACE_VERSION",
    "job_to_record",
    "load_report_summary",
    "load_workload",
    "record_to_job",
    "result_to_record",
    "save_report",
    "save_workload",
]
