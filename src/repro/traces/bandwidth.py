"""Time-varying bandwidth traces.

A :class:`BandwidthTrace` answers two questions the network substrate asks:

* :meth:`BandwidthTrace.rate_at` — instantaneous rate (bytes/second) at a
  point in time;
* :meth:`BandwidthTrace.transfer_time` — how long moving ``n`` bytes takes
  when starting at time ``t``, integrating the rate across regime changes.

Rates are piecewise constant, which makes the integral exact and the
simulation deterministic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.sim.rng import RngStream


class BandwidthTrace(ABC):
    """Interface for a piecewise-constant bandwidth signal."""

    @abstractmethod
    def rate_at(self, t: float) -> float:
        """Bytes/second available at time ``t`` (may be 0 during outages)."""

    @abstractmethod
    def next_change_after(self, t: float) -> float:
        """Time of the next rate change strictly after ``t`` (inf if none)."""

    def transfer_time(self, start: float, nbytes: float) -> float:
        """Seconds needed to move ``nbytes`` starting at time ``start``.

        Integrates the piecewise-constant rate; raises ``RuntimeError`` if
        the transfer can never finish (e.g. a permanent outage).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        t = start
        remaining = float(nbytes)
        # Bounded number of regime crossings guards against infinite loops
        # on pathological traces.
        for _ in range(10_000_000):
            rate = self.rate_at(t)
            boundary = self.next_change_after(t)
            if rate > 0:
                needed = remaining / rate
                if t + needed <= boundary:
                    return (t + needed) - start
                remaining -= rate * (boundary - t)
            elif boundary == math.inf:
                raise RuntimeError(
                    "transfer cannot complete: zero bandwidth with no future change"
                )
            t = boundary
        raise RuntimeError("transfer_time exceeded regime-crossing budget")


class ConstantBandwidth(BandwidthTrace):
    """A fixed rate forever."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be > 0, got {rate_bps}")
        self.rate_bps = float(rate_bps)

    def rate_at(self, t: float) -> float:
        return self.rate_bps

    def next_change_after(self, t: float) -> float:
        return math.inf


class StepBandwidth(BandwidthTrace):
    """Explicit ``(start_time, rate)`` steps; the last step holds forever.

    ``steps`` must start at or before time 0 and be strictly increasing in
    time.  Rates of 0 model outages.
    """

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("at least one step is required")
        times = [s[0] for s in steps]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("step times must be strictly increasing")
        if times[0] > 0:
            raise ValueError("the first step must start at or before t=0")
        if any(rate < 0 for _, rate in steps):
            raise ValueError("rates must be >= 0")
        self.steps: List[Tuple[float, float]] = [(float(a), float(b)) for a, b in steps]

    def rate_at(self, t: float) -> float:
        rate = self.steps[0][1]
        for start, step_rate in self.steps:
            if start <= t:
                rate = step_rate
            else:
                break
        return rate

    def next_change_after(self, t: float) -> float:
        for start, _rate in self.steps:
            if start > t:
                return start
        return math.inf


class MarkovBandwidth(BandwidthTrace):
    """A Gilbert–Elliott-style good/bad channel.

    The channel alternates between a ``good`` rate and a ``bad`` rate with
    exponentially distributed sojourn times.  The realisation is generated
    lazily and cached so repeated queries are consistent within one trace
    object.
    """

    def __init__(
        self,
        good_rate: float,
        bad_rate: float,
        mean_good: float,
        mean_bad: float,
        rng: RngStream,
    ) -> None:
        if good_rate <= 0:
            raise ValueError(f"good_rate must be > 0, got {good_rate}")
        if bad_rate < 0:
            raise ValueError(f"bad_rate must be >= 0, got {bad_rate}")
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("sojourn means must be > 0")
        self.good_rate = good_rate
        self.bad_rate = bad_rate
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self.rng = rng
        # Cached realisation: boundaries[i] is when segment i ends;
        # segment 0 starts at t=0 in the good state.
        self._boundaries: List[float] = [rng.exponential(mean_good)]

    def _extend_to(self, t: float) -> None:
        while self._boundaries[-1] <= t:
            in_good_next = len(self._boundaries) % 2 == 1  # next segment parity
            mean = self.mean_bad if in_good_next else self.mean_good
            self._boundaries.append(self._boundaries[-1] + self.rng.exponential(mean))

    def _segment_index(self, t: float) -> int:
        self._extend_to(t)
        # Linear scan from a bisect start; boundary list is sorted.
        import bisect

        return bisect.bisect_right(self._boundaries, t)

    def rate_at(self, t: float) -> float:
        idx = self._segment_index(t)
        return self.good_rate if idx % 2 == 0 else self.bad_rate

    def next_change_after(self, t: float) -> float:
        idx = self._segment_index(t)
        self._extend_to(self._boundaries[idx] if idx < len(self._boundaries) else t)
        return self._boundaries[idx]


class DiurnalBandwidth(BandwidthTrace):
    """Sinusoidal daily bandwidth, discretised into fixed slots.

    Real cellular uplinks degrade at peak hours; this trace models that as
    ``base * (1 + amplitude*sin(...))`` sampled per ``slot`` seconds so the
    piecewise-constant contract holds.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float,
        period: float = 86400.0,
        slot: float = 300.0,
        phase: float = 0.0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {base_rate}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0 or slot <= 0:
            raise ValueError("period and slot must be > 0")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.slot = slot
        self.phase = phase

    def rate_at(self, t: float) -> float:
        slot_start = math.floor(t / self.slot) * self.slot
        modulation = 1.0 + self.amplitude * math.sin(
            2 * math.pi * slot_start / self.period + self.phase
        )
        return self.base_rate * modulation

    def next_change_after(self, t: float) -> float:
        return (math.floor(t / self.slot) + 1) * self.slot


__all__ = [
    "BandwidthTrace",
    "ConstantBandwidth",
    "DiurnalBandwidth",
    "MarkovBandwidth",
    "StepBandwidth",
]
