"""Arrival-process generators.

Each process yields successive absolute arrival times.  Generators are
pull-based: call :meth:`ArrivalProcess.next_after` with the current time,
or iterate :meth:`ArrivalProcess.times` for a bounded horizon.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence

from repro.sim.rng import RngStream


class ArrivalProcess(ABC):
    """Interface for a point process on the simulated timeline."""

    @abstractmethod
    def next_after(self, t: float) -> float:
        """Absolute time of the next arrival strictly after time ``t``."""

    def times(self, horizon: float, start: float = 0.0) -> Iterator[float]:
        """Yield every arrival in ``(start, horizon]`` in order."""
        t = start
        while True:
            t = self.next_after(t)
            if t > horizon:
                return
            yield t


class DeterministicArrivals(ArrivalProcess):
    """Arrivals at fixed, pre-specified times (or a fixed period).

    Either pass explicit ``times`` or a ``period`` for an evenly spaced
    train starting at ``offset``.
    """

    def __init__(
        self,
        times: Optional[Sequence[float]] = None,
        period: Optional[float] = None,
        offset: float = 0.0,
    ) -> None:
        if (times is None) == (period is None):
            raise ValueError("pass exactly one of times= or period=")
        if period is not None and period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self._times = sorted(times) if times is not None else None
        self._period = period
        self._offset = offset

    def next_after(self, t: float) -> float:
        if self._times is not None:
            for arrival in self._times:
                if arrival > t:
                    return arrival
            return math.inf
        period = self._period
        assert period is not None
        k = math.floor((t - self._offset) / period) + 1
        candidate = self._offset + k * period
        # Guard against floating-point landing exactly on t.
        while candidate <= t:
            candidate += period
        return candidate


class PoissonArrivals(ArrivalProcess):
    """A homogeneous Poisson process with the given rate (arrivals/second)."""

    def __init__(self, rate: float, rng: RngStream) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = rate
        self.rng = rng

    def next_after(self, t: float) -> float:
        return t + self.rng.exponential(1.0 / self.rate)


class DiurnalArrivals(ArrivalProcess):
    """A non-homogeneous Poisson process with sinusoidal daily modulation.

    The instantaneous rate is::

        lambda(t) = base_rate * (1 + amplitude * sin(2*pi*t/period + phase))

    implemented by thinning against the peak rate.  ``amplitude`` must be in
    ``[0, 1)`` so the rate stays positive.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float,
        rng: RngStream,
        period: float = 86400.0,
        phase: float = 0.0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {base_rate}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self.rng = rng

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2 * math.pi * t / self.period + self.phase)
        )

    def next_after(self, t: float) -> float:
        peak = self.base_rate * (1.0 + self.amplitude)
        while True:
            t = t + self.rng.exponential(1.0 / peak)
            if self.rng.uniform() <= self.rate_at(t) / peak:
                return t


class BurstyArrivals(ArrivalProcess):
    """A two-state Markov-modulated Poisson process (calm/burst).

    The process alternates between a ``calm`` state with ``calm_rate`` and a
    ``burst`` state with ``burst_rate``; state sojourn times are exponential
    with the given means.  This is the standard model for flash-crowd-style
    workloads.
    """

    def __init__(
        self,
        calm_rate: float,
        burst_rate: float,
        mean_calm: float,
        mean_burst: float,
        rng: RngStream,
    ) -> None:
        for name, value in (
            ("calm_rate", calm_rate),
            ("burst_rate", burst_rate),
            ("mean_calm", mean_calm),
            ("mean_burst", mean_burst),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        self.calm_rate = calm_rate
        self.burst_rate = burst_rate
        self.mean_calm = mean_calm
        self.mean_burst = mean_burst
        self.rng = rng
        self._in_burst = False
        self._state_until = rng.exponential(mean_calm)

    def next_after(self, t: float) -> float:
        while True:
            rate = self.burst_rate if self._in_burst else self.calm_rate
            candidate = t + self.rng.exponential(1.0 / rate)
            if candidate <= self._state_until:
                return candidate
            # Cross into the next regime and retry from the boundary.
            t = self._state_until
            self._in_burst = not self._in_burst
            mean = self.mean_burst if self._in_burst else self.mean_calm
            self._state_until = t + self.rng.exponential(mean)


def interarrival_times(arrivals: List[float]) -> List[float]:
    """Gaps between consecutive arrival times (helper for tests/benches)."""
    return [b - a for a, b in zip(arrivals, arrivals[1:])]


__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DeterministicArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "interarrival_times",
]
