"""User Equipment (UE) model: CPU, radio energy, battery.

The UE is the constrained side of the offloading trade-off the paper
starts from.  It provides:

* a multi-core CPU executing work measured in gigacycles, contended
  through the kernel's :class:`~repro.sim.resources.Resource`;
* an energy model with distinct active/idle/transmit/receive power draws
  (the standard mobile model from the MAUI/CloneCloud line of work);
* a battery as a :class:`~repro.sim.resources.Container` so experiments
  can run devices to empty.
"""

from repro.device.energy import EnergyModel
from repro.device.ue import DeviceSpec, LocalExecution, UserEquipment

__all__ = ["DeviceSpec", "EnergyModel", "LocalExecution", "UserEquipment"]
