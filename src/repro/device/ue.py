"""The User Equipment: constrained CPU, radio, battery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.device.energy import EnergyModel
from repro.metrics import MetricRegistry
from repro.network.link import NetworkPath, TransferResult
from repro.sim import Container, Event, Resource, Simulator


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware characteristics of one UE.

    ``cycles_per_second`` is per core at full frequency; phone-class SoCs
    sustain roughly 1–2 GHz of useful throughput per big core, far below
    the 2.4 GHz reference core the serverless platform models — that gap
    is the speedup offloading buys.

    ``frequency_steps`` are the DVFS operating points as fractions of the
    full frequency.  Dynamic power scales cubically with frequency
    (P ∝ C·V²·f with V ∝ f), so running a job at fraction *f* takes 1/f
    times as long but spends f² times the energy — the knob delay-tolerant
    scheduling turns for *local* work.
    """

    name: str = "ue"
    cycles_per_second: float = 1.2e9
    cores: int = 4
    battery_capacity_j: float = 40_000.0  # ~11 Wh phone battery
    energy: EnergyModel = EnergyModel()
    frequency_steps: tuple = (0.4, 0.6, 0.8, 1.0)

    def __post_init__(self) -> None:
        if self.cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be > 0")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.battery_capacity_j <= 0:
            raise ValueError("battery capacity must be > 0")
        if not self.frequency_steps:
            raise ValueError("at least one frequency step is required")
        if any(not 0.0 < f <= 1.0 for f in self.frequency_steps):
            raise ValueError("frequency steps must be in (0, 1]")
        if 1.0 not in self.frequency_steps:
            raise ValueError("the full frequency 1.0 must be a step")

    def execution_time(
        self, work_gcycles: float, frequency_fraction: float = 1.0
    ) -> float:
        """Seconds one core needs for ``work_gcycles`` at a DVFS point."""
        if work_gcycles < 0:
            raise ValueError("work must be >= 0")
        if not 0.0 < frequency_fraction <= 1.0:
            raise ValueError("frequency fraction must be in (0, 1]")
        return work_gcycles * 1e9 / (self.cycles_per_second * frequency_fraction)

    def compute_power_w(self, frequency_fraction: float = 1.0) -> float:
        """Active compute power at a DVFS point (cubic scaling)."""
        if not 0.0 < frequency_fraction <= 1.0:
            raise ValueError("frequency fraction must be in (0, 1]")
        return self.energy.compute_w * frequency_fraction ** 3

    def compute_energy_j(
        self, work_gcycles: float, frequency_fraction: float = 1.0
    ) -> float:
        """Energy for ``work_gcycles`` at a DVFS point (∝ f²)."""
        return self.compute_power_w(frequency_fraction) * self.execution_time(
            work_gcycles, frequency_fraction
        )


@dataclass(frozen=True)
class LocalExecution:
    """Record of one on-device execution."""

    work_gcycles: float
    started_at: float
    finished_at: float
    energy_j: float

    @property
    def latency(self) -> float:
        """Wall-clock seconds including any wait for a free core."""
        return self.finished_at - self.started_at


class BatteryDepleted(RuntimeError):
    """Raised when an activity would drain the battery below zero."""


class UserEquipment:
    """A simulated device that can compute locally and use the radio.

    All activities draw the battery; when it runs dry the activity raises
    :class:`BatteryDepleted`, letting experiments measure time-to-empty.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: Optional[DeviceSpec] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec if spec is not None else DeviceSpec()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._cpu = Resource(sim, capacity=self.spec.cores)
        self._battery = Container(
            sim,
            capacity=self.spec.battery_capacity_j,
            init=self.spec.battery_capacity_j,
        )

    # -- battery ------------------------------------------------------------

    @property
    def battery_level_j(self) -> float:
        """Remaining charge in joules."""
        return self._battery.level

    @property
    def battery_fraction(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return self._battery.level / self.spec.battery_capacity_j

    def _drain(self, joules: float) -> None:
        if joules < 0:
            raise ValueError("energy must be >= 0")
        if joules > self._battery.level:
            # Take what's left so the level reads zero, then fail.
            remaining = self._battery.level
            if remaining > 0:
                self._battery.get(remaining)
            raise BatteryDepleted(
                f"{self.spec.name}: needed {joules:.1f} J, "
                f"had {remaining:.1f} J"
            )
        self._battery.get(joules)
        self.metrics.counter(f"{self.spec.name}.energy_j").increment(joules)

    def brownout(self, fraction: float) -> None:
        """Instantly lose ``fraction`` of the *remaining* charge.

        Models a power fault (battery sag, a misbehaving app draining the
        pack): unlike :meth:`_drain` this never raises — a brownout takes
        what is there.  Fault injection schedules these at window starts.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        loss = self._battery.level * fraction
        if loss > 0:
            self._battery.get(loss)
        self.metrics.counter(f"{self.spec.name}.brownouts").increment()
        self.metrics.counter(f"{self.spec.name}.brownout_j").increment(loss)

    def recharge(self, joules: Optional[float] = None) -> None:
        """Add charge (full recharge when ``joules`` is None)."""
        room = self.spec.battery_capacity_j - self._battery.level
        amount = room if joules is None else min(joules, room)
        if amount > 0:
            self._battery.put(amount)

    # -- computing ------------------------------------------------------------

    def estimate_execution_time(
        self, work_gcycles: float, frequency_fraction: float = 1.0
    ) -> float:
        """Uncontended single-core runtime estimate (used by planners)."""
        return self.spec.execution_time(work_gcycles, frequency_fraction)

    def estimate_execution_energy(
        self, work_gcycles: float, frequency_fraction: float = 1.0
    ) -> float:
        """Energy estimate for executing ``work_gcycles`` locally."""
        return self.spec.compute_energy_j(work_gcycles, frequency_fraction)

    def execute(
        self, work_gcycles: float, frequency_fraction: float = 1.0
    ) -> Event:
        """Run ``work_gcycles`` on a local core at a DVFS point.

        Returns a process event with a :class:`LocalExecution` value.
        Queues when all cores are busy; drains compute energy.
        """
        return self.sim.spawn(
            self._execute_proc(work_gcycles, frequency_fraction),
            name=f"{self.spec.name}.exec",
        )

    def _execute_proc(
        self, work_gcycles: float, frequency_fraction: float = 1.0
    ) -> Generator[Event, object, LocalExecution]:
        started = self.sim.now
        request = self._cpu.request()
        yield request
        try:
            duration = self.spec.execution_time(work_gcycles, frequency_fraction)
            yield self.sim.timeout(duration)
            energy = self.spec.compute_energy_j(work_gcycles, frequency_fraction)
            self._drain(energy)
        finally:
            self._cpu.release(request)
        record = LocalExecution(
            work_gcycles=work_gcycles,
            started_at=started,
            finished_at=self.sim.now,
            energy_j=energy,
        )
        self.metrics.summary(f"{self.spec.name}.exec_latency_s").observe(record.latency)
        return record

    # -- radio ----------------------------------------------------------------

    def transmit(
        self, nbytes: float, path: NetworkPath, parent: Optional[object] = None
    ) -> Event:
        """Send ``nbytes`` up ``path``, draining transmit energy.

        Returns a process event with the path's
        :class:`~repro.network.link.TransferResult`.  ``parent``
        optionally carries the caller's telemetry span down to the
        path's transfer span.
        """
        return self.sim.spawn(
            self._radio_proc(nbytes, path, transmit=True, parent=parent),
            name=f"{self.spec.name}.tx",
        )

    def receive(
        self, nbytes: float, path: NetworkPath, parent: Optional[object] = None
    ) -> Event:
        """Fetch ``nbytes`` down ``path``, draining receive energy."""
        return self.sim.spawn(
            self._radio_proc(nbytes, path, transmit=False, parent=parent),
            name=f"{self.spec.name}.rx",
        )

    def _radio_proc(
        self,
        nbytes: float,
        path: NetworkPath,
        transmit: bool,
        parent: Optional[object] = None,
    ) -> Generator[Event, object, TransferResult]:
        result: TransferResult = yield path.transfer(nbytes, parent=parent)
        model = self.spec.energy
        if transmit:
            energy = model.transmit_energy(result.radio_seconds)
        else:
            energy = model.receive_energy(result.radio_seconds)
        self._drain(energy)
        key = "tx" if transmit else "rx"
        self.metrics.counter(f"{self.spec.name}.{key}_bytes").increment(nbytes)
        return result


__all__ = ["BatteryDepleted", "DeviceSpec", "LocalExecution", "UserEquipment"]
