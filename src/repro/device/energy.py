"""UE energy model.

Power figures follow the measurements used throughout the offloading
literature (MAUI, Cuckoo, ThinkAir): computing costs roughly 0.9 W on a
phone-class SoC, radio transmission 1.3 W, reception 1.0 W, idle ~25 mW.
Energy is simply power × time for each activity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Average power draw (watts) per UE activity.

    ``idle_w`` is awake-idle (screen off, radio attached, coordinating);
    ``deep_sleep_w`` is suspend-to-RAM with wake-on-push — the state a
    device can enter while a *cloud-side workflow* runs the offloaded
    part without it.
    """

    compute_w: float = 0.9
    transmit_w: float = 1.3
    receive_w: float = 1.0
    idle_w: float = 0.025
    deep_sleep_w: float = 0.003

    def __post_init__(self) -> None:
        for field_name in (
            "compute_w", "transmit_w", "receive_w", "idle_w", "deep_sleep_w"
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    def compute_energy(self, seconds: float) -> float:
        """Joules spent computing for ``seconds``."""
        return self._energy(self.compute_w, seconds)

    def transmit_energy(self, seconds: float) -> float:
        """Joules spent with the radio transmitting for ``seconds``."""
        return self._energy(self.transmit_w, seconds)

    def receive_energy(self, seconds: float) -> float:
        """Joules spent with the radio receiving for ``seconds``."""
        return self._energy(self.receive_w, seconds)

    def idle_energy(self, seconds: float) -> float:
        """Joules spent idle for ``seconds``."""
        return self._energy(self.idle_w, seconds)

    def deep_sleep_energy(self, seconds: float) -> float:
        """Joules spent in deep sleep for ``seconds``."""
        return self._energy(self.deep_sleep_w, seconds)

    @staticmethod
    def _energy(power_w: float, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"duration must be >= 0, got {seconds}")
        return power_w * seconds


__all__ = ["EnergyModel"]
