"""Graceful-degradation knobs for the offloading controller.

The paper's central observation — non-time-criticality buys slack — turns
infrastructure trouble from a failure into a scheduling problem.  A
:class:`DegradationPolicy` tells the controller which of the three
degradation responses to use:

* **outage-aware backoff** — retries consult the platform's outage
  windows and wait them out instead of burning attempts into a dead zone;
* **hedged invocations** — a duplicate invocation is launched when the
  primary has been running suspiciously long (straggler mitigation, at
  the price of occasional duplicate spend);
* **fallback to local** — when the cloud episode exceeds a budget derived
  from the job's remaining deadline slack, the component is abandoned to
  the cloud and executed on the UE instead, trading energy for certainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DegradationPolicy:
    """Configuration of the controller's degradation responses.

    Parameters
    ----------
    outage_aware_backoff:
        Delay (re)attempts until a known platform outage clears.
    hedge_after_s:
        Launch a duplicate invocation when the primary has not finished
        after this many seconds (``None`` disables hedging).
    fallback_local:
        Execute a component on the UE when its cloud episode fails
        terminally or exceeds the fallback budget.
    fallback_after_s:
        Absolute cap on one component's cloud episode, in seconds.
    fallback_slack_fraction:
        Fraction of the job's remaining deadline slack one cloud episode
        may consume before falling back; only binds for finite deadlines.
    """

    outage_aware_backoff: bool = True
    hedge_after_s: Optional[float] = None
    fallback_local: bool = True
    fallback_after_s: float = math.inf
    fallback_slack_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be > 0 (or None)")
        if self.fallback_after_s <= 0:
            raise ValueError("fallback_after_s must be > 0")
        if not 0.0 < self.fallback_slack_fraction <= 1.0:
            raise ValueError("fallback_slack_fraction must be in (0, 1]")

    def fallback_budget(self, now: float, deadline: float) -> Optional[float]:
        """Seconds a cloud episode starting at ``now`` may take before the
        controller abandons it for local execution; ``None`` when no
        finite budget applies (fallback then only triggers on terminal
        cloud failure)."""
        if not self.fallback_local:
            return None
        budget = self.fallback_after_s
        if math.isfinite(deadline):
            budget = min(
                budget, max((deadline - now) * self.fallback_slack_fraction, 0.0)
            )
        return budget if math.isfinite(budget) else None


__all__ = ["DegradationPolicy"]
