"""Scenario-driven fault injection and graceful degradation.

The subsystem has three layers:

* :mod:`repro.faults.schedule` — :class:`FaultWindow` /
  :class:`FaultSchedule`: *what* goes wrong and *when*, normalized so
  overlapping windows of one kind merge, plus the seeded
  :meth:`FaultSchedule.chaos` campaign generator;
* :mod:`repro.faults.injector` — :class:`FaultInjector` /
  :func:`inject_faults`: *realising* a schedule inside an environment
  (link traces, platform outages/reclamation/stragglers, battery
  brownouts);
* :mod:`repro.faults.policy` — :class:`DegradationPolicy`: *how* the
  controller responds (outage-aware backoff, hedged invocations,
  fallback-to-local).

Everything is driven by named :class:`~repro.sim.rng.RngStream` draws, so
a chaos campaign under a fixed seed is bit-reproducible end to end.
"""

from repro.faults.injector import (
    FaultedBandwidth,
    FaultInjector,
    PlatformFaultModel,
    inject_faults,
)
from repro.faults.policy import DegradationPolicy
from repro.faults.schedule import LINK_KINDS, FaultKind, FaultSchedule, FaultWindow

__all__ = [
    "DegradationPolicy",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultWindow",
    "FaultedBandwidth",
    "LINK_KINDS",
    "PlatformFaultModel",
    "inject_faults",
]
