"""Realising a :class:`~repro.faults.schedule.FaultSchedule` in a world.

Three adapters map schedule windows onto the substrates:

* :class:`FaultedBandwidth` wraps a link's
  :class:`~repro.traces.bandwidth.BandwidthTrace`, zeroing the rate during
  ``LINK_OUTAGE`` windows and scaling it during ``LINK_DEGRADED`` windows
  while preserving the piecewise-constant contract (rates only change at
  window or base-trace boundaries, so transfer-time integration stays
  exact).
* :class:`PlatformFaultModel` is what the serverless platform consults
  per invocation: zone outages, spot-style sandbox reclamation, and
  straggler slowdowns.  Reclamation draws come from a dedicated
  :class:`~repro.sim.rng.RngStream` so chaos stays reproducible and never
  perturbs the platform's own failure stream.
* :class:`FaultInjector` wires one schedule into an
  :class:`~repro.core.controller.Environment`: link traces are wrapped,
  the platform gets its fault model, and battery brownouts are scheduled
  as kernel callbacks on the UE.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faults.schedule import LINK_KINDS, FaultKind, FaultSchedule, FaultWindow
from repro.sim.rng import RngStream
from repro.telemetry.tracer import PHASE_FAULT
from repro.traces.bandwidth import BandwidthTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import Environment


class FaultedBandwidth(BandwidthTrace):
    """A bandwidth trace with outage/degradation windows applied."""

    def __init__(
        self,
        base: BandwidthTrace,
        schedule: FaultSchedule,
        target: Optional[str] = None,
    ) -> None:
        self.base = base
        self.schedule = schedule
        self.target = target

    def rate_at(self, t: float) -> float:
        if self.schedule.is_active(FaultKind.LINK_OUTAGE, t, self.target):
            return 0.0
        factor = self.schedule.magnitude_at(
            FaultKind.LINK_DEGRADED, t, self.target, default=1.0
        )
        return self.base.rate_at(t) * factor

    def next_change_after(self, t: float) -> float:
        return min(
            self.base.next_change_after(t),
            self.schedule.next_boundary_after(t, kinds=LINK_KINDS, target=self.target),
        )


class PlatformFaultModel:
    """The platform-facing view of a fault schedule.

    ``zone`` names the platform (windows scoped to other targets do not
    apply); ``rng`` feeds the reclamation coin-flips.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        rng: Optional[RngStream] = None,
        zone: Optional[str] = None,
    ) -> None:
        if schedule.has_kind(FaultKind.SANDBOX_RECLAIM) and rng is None:
            raise ValueError(
                "sandbox reclamation requires an RngStream (pass rng=...)"
            )
        self.schedule = schedule
        self.rng = rng
        self.zone = zone

    def outage_active(self, now: float) -> bool:
        """True when a zone outage covers ``now``."""
        return self.schedule.is_active(FaultKind.ZONE_OUTAGE, now, self.zone)

    def outage_clear_time(self, at: float) -> Optional[float]:
        """When the outage covering ``at`` ends, or ``None`` if no outage."""
        if not self.outage_active(at):
            return None
        return self.schedule.clear_time(FaultKind.ZONE_OUTAGE, at, self.zone)

    def slowdown_factor(self, started_at: float) -> float:
        """Straggler multiplier for an execution starting at ``started_at``."""
        return self.schedule.magnitude_at(
            FaultKind.STRAGGLER, started_at, self.zone, default=1.0
        )

    def reclaim_time(self, started_at: float, duration: float) -> Optional[float]:
        """When (if ever) a sandbox running ``[started_at, +duration)`` dies.

        Each reclaim window overlapping the execution kills it with
        probability ``magnitude``, at a uniformly drawn instant inside the
        overlap.  Returns the earliest such instant, or ``None``.
        """
        if duration <= 0:
            return None
        end = started_at + duration
        for window in self.schedule.overlapping(
            FaultKind.SANDBOX_RECLAIM, started_at, end, self.zone
        ):
            assert self.rng is not None  # enforced in __init__
            if not self.rng.bernoulli(window.magnitude):
                continue
            lo = max(started_at, window.start)
            hi = min(end, window.end)
            if hi <= lo:
                continue
            return self.rng.uniform(lo, hi)
        return None


class FaultInjector:
    """Wires a fault schedule into an environment, once, up front.

    The injector mutates the environment in place: link traces are
    wrapped, ``env.platform.faults`` is installed, and every brownout
    window schedules a kernel callback.  Injection counts are recorded
    under ``faults.injected`` / ``faults.injected.<kind>`` so chaos runs
    report exactly what they injected.
    """

    def __init__(
        self, schedule: FaultSchedule, rng: Optional[RngStream] = None
    ) -> None:
        self.schedule = schedule
        self.rng = rng
        self._attached = False

    def attach(self, env: "Environment") -> "FaultInjector":
        """Apply the schedule to ``env``; returns self for chaining."""
        if self._attached:
            raise RuntimeError("a FaultInjector can only be attached once")
        # Guard the environment too: a second schedule would silently
        # double-wrap link traces (degradation factors compose) and
        # re-schedule brownout drains.
        if getattr(env, "fault_injector", None) is not None:
            raise RuntimeError(
                "environment already has a fault schedule attached"
            )
        self._attached = True
        env.fault_injector = self
        schedule = self.schedule

        if schedule.has_kind(*LINK_KINDS):
            for path, target in ((env.uplink, "uplink"), (env.downlink, "downlink")):
                # Only the access hop (the volatile last-mile radio link)
                # is faulted; WAN hops are the carrier's stable backbone.
                path.links[0].apply_faults(schedule, target)

        if schedule.has_kind(
            FaultKind.ZONE_OUTAGE, FaultKind.SANDBOX_RECLAIM, FaultKind.STRAGGLER
        ):
            env.platform.faults = PlatformFaultModel(
                schedule, rng=self.rng, zone=env.platform.name
            )

        now = env.sim.now
        for window in schedule.windows_for(FaultKind.BATTERY_BROWNOUT):
            env.sim.call_at(
                max(window.start, now),
                lambda fraction=window.magnitude: env.ue.brownout(fraction),
            )

        tracer = env.sim.tracer
        for window in schedule.windows:
            env.metrics.counter("faults.injected").increment()
            env.metrics.counter(f"faults.injected.{window.kind.value}").increment()
            if tracer.enabled:
                # Annotation only: the window is recorded with its own
                # explicit times, so attach order vs. the run is moot —
                # but the tracer must already be installed (attach_tracer
                # before inject_faults) to see these.
                tracer.record_span(
                    window.kind.value,
                    PHASE_FAULT,
                    window.start,
                    window.end,
                    target=window.target or "",
                    magnitude=window.magnitude,
                )
                tracer.metrics.counter(
                    "fault_windows_total", fault_kind=window.kind.value
                ).increment()
        return self


def inject_faults(
    env: "Environment",
    schedule: FaultSchedule,
    rng: Optional[RngStream] = None,
) -> FaultInjector:
    """Convenience: build an injector for ``schedule`` and attach it.

    When reclamation windows are present and ``rng`` is omitted, a
    dedicated ``faults`` stream is derived from the environment's seed
    registry, keeping reclaim draws independent of every other consumer.
    """
    if rng is None and schedule.has_kind(FaultKind.SANDBOX_RECLAIM):
        rng = env.rng.stream("faults")
    return FaultInjector(schedule, rng=rng).attach(env)


__all__ = [
    "FaultInjector",
    "FaultedBandwidth",
    "PlatformFaultModel",
    "inject_faults",
]
