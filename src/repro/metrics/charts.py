"""Terminal-friendly ASCII charts.

The benchmark harness prints tables; sometimes a shape (a crossover, a
collapse) reads better as a picture.  These charts render in any
terminal and diff cleanly in version control.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

_BAR = "█"
_HALF = "▌"


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one row per (label, value).

    Bars scale to the maximum value; zero/negative values render as
    empty bars with their numeric value still shown.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("at least one bar is required")
    if width < 4:
        raise ValueError("width must be >= 4")

    peak = max(max(values), 0.0)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if peak > 0 and value > 0:
            filled = value / peak * width
            bar = _BAR * int(filled)
            if filled - int(filled) >= 0.5:
                bar += _HALF
        else:
            bar = ""
        lines.append(
            f"{str(label).rjust(label_width)} | {bar.ljust(width)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def ascii_line(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
    log_x: bool = False,
) -> str:
    """A scatter/line chart on a character grid.

    Points are bucketed onto a ``width``x``height`` grid; the y-axis is
    labelled with min/max.  ``log_x=True`` spaces the x-axis
    logarithmically (bandwidth sweeps span decades).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("at least two points are required")
    if width < 8 or height < 3:
        raise ValueError("grid too small")
    if log_x and any(x <= 0 for x in xs):
        raise ValueError("log_x requires positive x values")

    def x_position(x: float) -> float:
        if log_x:
            lo, hi = math.log(min(xs)), math.log(max(xs))
            x = math.log(x)
        else:
            lo, hi = min(xs), max(xs)
        if hi == lo:
            return 0.0
        return (x - lo) / (hi - lo)

    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(int(x_position(x) * (width - 1)), width - 1)
        if y_hi == y_lo:
            row = height - 1
        else:
            row = min(
                int((1 - (y - y_lo) / (y_hi - y_lo)) * (height - 1)),
                height - 1,
            )
        grid[row][col] = "•"

    label_hi = f"{y_hi:g}"
    label_lo = f"{y_lo:g}"
    gutter = max(len(label_hi), len(label_lo))
    lines = [title] if title else []
    for index, row in enumerate(grid):
        if index == 0:
            label = label_hi.rjust(gutter)
        elif index == height - 1:
            label = label_lo.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(
        " " * gutter
        + f"  {min(xs):g}"
        + " " * max(width - len(f"{min(xs):g}") - len(f"{max(xs):g}") - 2, 1)
        + f"{max(xs):g}"
    )
    return "\n".join(lines)


__all__ = ["ascii_bars", "ascii_line"]
