"""Fixed-width table rendering for the benchmark harness.

Every experiment prints a :class:`Table`; EXPERIMENTS.md embeds the output
verbatim, so the formatting is stable and locale-independent.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value != 0 and (abs(value) >= 10 ** 6 or abs(value) < 10 ** -(precision)):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """An append-only table with fixed-width text rendering."""

    def __init__(
        self,
        columns: Sequence[str],
        title: Optional[str] = None,
        precision: int = 3,
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.precision = precision
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass either positional values or named values")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise KeyError(f"unknown columns: {sorted(unknown)}")
            row = [named.get(col) for col in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"expected {len(self.columns)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in insertion order."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def to_csv(self) -> str:
        """Render as RFC-4180-ish CSV (header + rows, raw values)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue()

    def to_records(self) -> List[dict]:
        """Rows as a list of column→value dicts (JSON-friendly)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` output to a file."""
        from pathlib import Path

        Path(path).write_text(self.to_csv())

    def render(self) -> str:
        """Render as a fixed-width text table."""
        cells = [[_format_cell(v, self.precision) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """One-shot helper: build and render a :class:`Table`."""
    table = Table(columns, title=title, precision=precision)
    for row in rows:
        table.add_row(*row)
    return table.render()


__all__ = ["Table", "render_table"]
