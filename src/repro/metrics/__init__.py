"""Metric collection and reporting.

Simulators and policies record observations into a :class:`MetricRegistry`;
the benchmark harness turns registries into the tables printed for each
experiment.  The primitives are deliberately simple and dependency-free:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — last-written values;
* :class:`Summary` — streaming mean/min/max/stddev plus exact quantiles
  (observations are retained; simulations here are small enough);
* :class:`TimeWeightedAverage` — averages weighted by how long a value held
  (queue lengths, battery levels);
* :class:`MetricRegistry` — a namespace of the above;
* :func:`render_table` / :class:`Table` — fixed-width table formatting used
  by every benchmark to print paper-style rows.
"""

from repro.metrics.collectors import (
    Counter,
    Gauge,
    MetricRegistry,
    Summary,
    TimeWeightedAverage,
    stable_digest,
)
from repro.metrics.charts import ascii_bars, ascii_line
from repro.metrics.tables import Table, render_table

__all__ = [
    "Counter",
    "Gauge",
    "MetricRegistry",
    "Summary",
    "Table",
    "TimeWeightedAverage",
    "ascii_bars",
    "ascii_line",
    "render_table",
    "stable_digest",
]
