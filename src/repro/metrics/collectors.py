"""Metric collector primitives."""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Mapping, Optional


def _require_finite(name: str, value: float, what: str = "value") -> float:
    """Reject NaN/inf before they poison a collector.

    A single non-finite observation silently corrupts every downstream
    aggregate (sums, means, digests), so collectors fail fast instead.
    """
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name!r}: {what} must be finite, got {value}")
    return value


class Counter:
    """A monotonically increasing total."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be finite and non-negative) to the total."""
        amount = _require_finite(self.name, amount, "increment")
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self._value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A last-written value."""

    def __init__(self, name: str, initial: float = 0.0) -> None:
        self.name = name
        self._value = float(initial)

    @property
    def value(self) -> float:
        """Most recently set value."""
        return self._value

    def set(self, value: float) -> None:
        """Overwrite the gauge (with a finite value)."""
        self._value = _require_finite(self.name, value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (finite, may be negative)."""
        self._value += _require_finite(self.name, delta, "delta")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Gauge {self.name}={self._value}>"


class Summary:
    """Streaming distribution summary with exact quantiles.

    All observations are retained (runs here are at most a few hundred
    thousand samples), so quantiles are exact rather than sketched.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._sum = 0.0
        self._sum_sq = 0.0

    def observe(self, value: float) -> None:
        """Record one (finite) observation."""
        value = _require_finite(self.name, value, "observation")
        self._samples.append(value)
        self._sorted = None
        self._sum += value
        self._sum_sq += value * value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean; ``nan`` when empty."""
        return self._sum / len(self._samples) if self._samples else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation; ``nan`` when empty."""
        return min(self._samples) if self._samples else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation; ``nan`` when empty."""
        return max(self._samples) if self._samples else math.nan

    @property
    def stddev(self) -> float:
        """Population standard deviation; ``nan`` when empty."""
        n = len(self._samples)
        if n == 0:
            return math.nan
        mean = self._sum / n
        variance = max(self._sum_sq / n - mean * mean, 0.0)
        return math.sqrt(variance)

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile via linear interpolation; ``nan`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        position = q * (len(data) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return data[lower]
        weight = position - lower
        return data[lower] * (1 - weight) + data[upper] * weight

    def percentile(self, p: float) -> float:
        """``p``-th percentile (``p`` in ``[0, 100]``)."""
        return self.quantile(p / 100.0)

    @property
    def samples(self) -> List[float]:
        """A copy of all recorded observations."""
        return list(self._samples)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Summary {self.name} n={self.count} mean={self.mean:.4g}>"


class TimeWeightedAverage:
    """Average of a piecewise-constant signal, weighted by holding time.

    Used for queue lengths, battery level, instance-pool occupancy: call
    :meth:`update` whenever the value changes, passing the simulation time.
    """

    def __init__(self, name: str, initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._value = float(initial)
        self._last_time = float(start_time)
        self._weighted_sum = 0.0
        self._elapsed = 0.0

    @property
    def current(self) -> float:
        """The value currently held."""
        return self._value

    def update(self, now: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards in {self.name!r}: {now} < {self._last_time}"
            )
        span = now - self._last_time
        self._weighted_sum += self._value * span
        self._elapsed += span
        self._value = float(value)
        self._last_time = now

    def average(self, now: Optional[float] = None) -> float:
        """Time-weighted mean up to ``now`` (defaults to last update)."""
        weighted = self._weighted_sum
        elapsed = self._elapsed
        if now is not None:
            if now < self._last_time:
                raise ValueError("now precedes the last recorded update")
            span = now - self._last_time
            weighted += self._value * span
            elapsed += span
        return weighted / elapsed if elapsed > 0 else self._value


class MetricRegistry:
    """A flat namespace of metrics, keyed by dotted names."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._summaries: Dict[str, Summary] = {}
        self._time_averages: Dict[str, TimeWeightedAverage] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter registered under ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str, initial: float = 0.0) -> Gauge:
        """Get or create the gauge registered under ``name``."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, initial)
        return self._gauges[name]

    def summary(self, name: str) -> Summary:
        """Get or create the summary registered under ``name``."""
        if name not in self._summaries:
            self._summaries[name] = Summary(name)
        return self._summaries[name]

    def time_average(
        self, name: str, initial: float = 0.0, start_time: float = 0.0
    ) -> TimeWeightedAverage:
        """Get or create the time-weighted average registered under ``name``."""
        if name not in self._time_averages:
            self._time_averages[name] = TimeWeightedAverage(name, initial, start_time)
        return self._time_averages[name]

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of every scalar metric (summaries export mean/p50/p99)."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, summary in self._summaries.items():
            out[f"{name}.count"] = summary.count
            out[f"{name}.mean"] = summary.mean
            out[f"{name}.p50"] = summary.quantile(0.50)
            out[f"{name}.p99"] = summary.quantile(0.99)
        for name, twa in self._time_averages.items():
            out[f"{name}.avg"] = twa.average()
        return out

    def names(self) -> List[str]:
        """Sorted names of every registered metric."""
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._summaries)
            + list(self._time_averages)
        )


def stable_digest(snapshot: Mapping[str, float]) -> str:
    """Canonical SHA-256 over a metric snapshot.

    Keys are sorted and values rendered with ``repr`` (full float
    precision, so any bit-level drift changes the digest) — the primitive
    the golden-trace regression harness and the chaos benchmark use to
    assert that two runs were *identical*, not merely similar.
    """
    lines = [f"{key}={snapshot[key]!r}" for key in sorted(snapshot)]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


__all__ = [
    "Counter",
    "Gauge",
    "MetricRegistry",
    "Summary",
    "TimeWeightedAverage",
    "stable_digest",
]
