"""Zone/UE fleet topologies and the shard partitioner.

A :class:`FleetTopology` describes a fleet as *zones* — named groups of
UEs on shared connectivity — plus optional *links* between zones.  A
link couples two zones through the serverless platform: linked zones
share one warm pool (one user's invocation keeps the sandbox warm for a
neighbour's), so they must be simulated together to be exact.  Unlinked
zones are independent and can be simulated anywhere, in any order, on
any worker.

:func:`partition_topology` assigns zones to shards, balanced by expected
event load, with every UE assigned exactly once.  Coupling groups
(connected components over the links) are atomic by default, so the
default partition is always *exact*: no link ever crosses a shard
boundary.  ``split_coupled=True`` trades exactness for balance — zones
are placed individually and any link whose endpoints land on different
shards is reported in :attr:`ShardPlan.split_links`, which drives the
bounded-error accounting in :mod:`repro.fleet.sharded`.

Everything here is deterministic and ``PYTHONHASHSEED``-independent:
ordering only ever comes from sorting zone names and loads, and derived
seeds come from SHA-256, never from :func:`hash`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union


def derive_seed(root_seed: int, *parts: str) -> int:
    """A deterministic sub-seed from a root seed and string labels.

    SHA-256 based like :class:`~repro.sim.rng.SeedSequenceRegistry`'s
    stream derivation, so it is stable across processes and hash seeds.
    """
    text = f"{int(root_seed)}|" + "|".join(parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class Zone:
    """One group of UEs sharing a connectivity mix and workload shape.

    ``connectivity`` may be one preset name or a sequence cycled across
    the zone's UEs (mixed-technology zones).  ``jobs_per_ue`` scales the
    zone's expected event load; zero-UE and zero-job zones are legal —
    they make empty shards reachable, which the sharded path must
    survive.
    """

    name: str
    n_ues: int
    connectivity: Union[str, Tuple[str, ...]] = ("4g",)
    jobs_per_ue: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("zone name must be non-empty")
        if self.n_ues < 0:
            raise ValueError("n_ues must be >= 0")
        if self.jobs_per_ue < 0:
            raise ValueError("jobs_per_ue must be >= 0")
        profiles = (
            (self.connectivity,)
            if isinstance(self.connectivity, str)
            else tuple(self.connectivity)
        )
        if not profiles:
            raise ValueError("a zone needs at least one connectivity preset")
        object.__setattr__(self, "connectivity", profiles)

    @property
    def expected_load(self) -> float:
        """Expected event load: job executions the zone contributes."""
        return float(self.n_ues * self.jobs_per_ue)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n_ues": self.n_ues,
            "connectivity": list(self.connectivity),
            "jobs_per_ue": self.jobs_per_ue,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Zone":
        return Zone(
            name=data["name"],
            n_ues=int(data["n_ues"]),
            connectivity=tuple(data.get("connectivity", ("4g",))),
            jobs_per_ue=int(data.get("jobs_per_ue", 1)),
        )


@dataclass(frozen=True)
class FleetTopology:
    """Zones plus the warm-pool coupling links between them.

    Zones are stored sorted by name and links are normalised (endpoint
    pairs sorted, duplicates and self-links rejected), so two
    topologies with the same content are equal and serialise to the
    same canonical JSON.  Global UE ids are positional in sorted zone
    order: zone ``z`` owns ids ``ue_base(z) .. ue_base(z) + n_ues - 1``,
    independent of any shard layout.
    """

    zones: Tuple[Zone, ...]
    links: Tuple[Tuple[str, str], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        zones = tuple(sorted(self.zones, key=lambda z: z.name))
        if not zones:
            raise ValueError("a topology needs at least one zone")
        names = [zone.name for zone in zones]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate zone names in {names}")
        known = set(names)
        normalised = set()
        for link in self.links:
            a, b = link
            if a == b:
                raise ValueError(f"self-link on zone {a!r}")
            if a not in known or b not in known:
                raise ValueError(f"link {link!r} names an unknown zone")
            normalised.add((min(a, b), max(a, b)))
        object.__setattr__(self, "zones", zones)
        object.__setattr__(self, "links", tuple(sorted(normalised)))

    @property
    def total_ues(self) -> int:
        return sum(zone.n_ues for zone in self.zones)

    @property
    def total_jobs(self) -> int:
        return sum(zone.n_ues * zone.jobs_per_ue for zone in self.zones)

    def zone(self, name: str) -> Zone:
        for candidate in self.zones:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no zone {name!r}")

    def ue_base(self, name: str) -> int:
        """Global id of the zone's first UE (shard-layout independent)."""
        base = 0
        for candidate in self.zones:
            if candidate.name == name:
                return base
            base += candidate.n_ues
        raise KeyError(f"no zone {name!r}")

    def neighbours(self) -> Dict[str, List[str]]:
        """Adjacency over the links, every neighbour list sorted."""
        adjacency: Dict[str, List[str]] = {zone.name: [] for zone in self.zones}
        for a, b in self.links:
            adjacency[a].append(b)
            adjacency[b].append(a)
        return {name: sorted(peers) for name, peers in adjacency.items()}

    def coupling_groups(self) -> Tuple[Tuple[str, ...], ...]:
        """Connected components over the links — the units that must be
        co-simulated for exactness.  Deterministically ordered: each
        group sorted by name, groups sorted by first member."""
        adjacency = self.neighbours()
        seen: set = set()
        groups: List[Tuple[str, ...]] = []
        for zone in self.zones:  # already name-sorted
            if zone.name in seen:
                continue
            component = []
            frontier = [zone.name]
            seen.add(zone.name)
            while frontier:
                current = frontier.pop(0)
                component.append(current)
                for peer in adjacency[current]:
                    if peer not in seen:
                        seen.add(peer)
                        frontier.append(peer)
            groups.append(tuple(sorted(component)))
        return tuple(sorted(groups))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "zones": [zone.to_dict() for zone in self.zones],
            "links": [list(link) for link in self.links],
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FleetTopology":
        return FleetTopology(
            zones=tuple(Zone.from_dict(z) for z in data["zones"]),
            links=tuple((a, b) for a, b in data.get("links", ())),
            seed=int(data.get("seed", 0)),
        )

    @staticmethod
    def uniform(
        n_zones: int,
        ues_per_zone: int,
        connectivity: Union[str, Sequence[str]] = "4g",
        jobs_per_ue: int = 1,
        couple: str = "none",
        seed: int = 0,
    ) -> "FleetTopology":
        """A homogeneous topology (the CLI and benchmark default).

        ``couple`` adds links: ``"none"`` leaves every zone independent,
        ``"ring"`` links zone ``i`` to ``i+1`` (and last to first),
        ``"pairs"`` links zones ``(0,1), (2,3), ...``.
        """
        if n_zones < 1:
            raise ValueError("n_zones must be >= 1")
        profiles = (
            (connectivity,)
            if isinstance(connectivity, str)
            else tuple(connectivity)
        )
        names = [f"z{i:03d}" for i in range(n_zones)]
        zones = tuple(
            Zone(
                name=name,
                n_ues=ues_per_zone,
                connectivity=profiles,
                jobs_per_ue=jobs_per_ue,
            )
            for name in names
        )
        if couple == "none":
            links: Tuple[Tuple[str, str], ...] = ()
        elif couple == "ring":
            links = tuple(
                (names[i], names[(i + 1) % n_zones])
                for i in range(n_zones)
                if n_zones > 1 and names[i] != names[(i + 1) % n_zones]
            )
        elif couple == "pairs":
            links = tuple(
                (names[i], names[i + 1]) for i in range(0, n_zones - 1, 2)
            )
        else:
            raise ValueError(
                f"unknown coupling {couple!r}; choose none | ring | pairs"
            )
        return FleetTopology(zones=zones, links=links, seed=seed)


@dataclass(frozen=True)
class ShardPlan:
    """The output of :func:`partition_topology`.

    ``shards[i]`` is the (sorted) tuple of zone names on shard ``i``;
    shards may be empty.  ``split_links`` lists every topology link whose
    endpoints landed on different shards — always empty unless the
    partition was taken with ``split_coupled=True``.
    """

    topology: FleetTopology
    shards: Tuple[Tuple[str, ...], ...]
    split_links: Tuple[Tuple[str, str], ...] = ()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, zone_name: str) -> int:
        for index, shard in enumerate(self.shards):
            if zone_name in shard:
                return index
        raise KeyError(f"zone {zone_name!r} not in this plan")

    def loads(self) -> List[float]:
        """Expected event load per shard."""
        return [
            sum(self.topology.zone(name).expected_load for name in shard)
            for shard in self.shards
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shards": [list(shard) for shard in self.shards],
            "split_links": [list(link) for link in self.split_links],
        }


def partition_topology(
    topology: FleetTopology,
    n_shards: int,
    split_coupled: bool = False,
) -> ShardPlan:
    """Assign zones to shards, balanced by expected event load.

    Greedy LPT over the placement units: units are taken largest-first
    (ties broken by name) and each goes to the least-loaded shard (ties
    broken by shard index).  Units are coupling groups by default — a
    link is never split, so the plan is exact — or individual zones with
    ``split_coupled=True``.  The classic LPT argument bounds the
    imbalance either way::

        max(shard_load) <= mean(shard_load) + max(unit_load)

    because the fullest shard was the emptiest (hence at most average)
    when it received its last unit.  The assignment depends only on the
    topology's canonical form, so it is deterministic across processes
    and ``PYTHONHASHSEED`` values.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if split_coupled:
        units: List[Tuple[str, ...]] = [(zone.name,) for zone in topology.zones]
    else:
        units = list(topology.coupling_groups())

    def unit_load(unit: Tuple[str, ...]) -> float:
        return sum(topology.zone(name).expected_load for name in unit)

    bins: List[List[str]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    for unit in sorted(units, key=lambda u: (-unit_load(u), u)):
        target = min(range(n_shards), key=lambda i: (loads[i], i))
        bins[target].extend(unit)
        loads[target] += unit_load(unit)

    shards = tuple(tuple(sorted(zone_names)) for zone_names in bins)
    placement = {
        name: index for index, shard in enumerate(shards) for name in shard
    }
    split_links = tuple(
        link
        for link in topology.links
        if placement[link[0]] != placement[link[1]]
    )
    return ShardPlan(topology=topology, shards=shards, split_links=split_links)


__all__ = [
    "FleetTopology",
    "ShardPlan",
    "Zone",
    "derive_seed",
    "partition_topology",
]
