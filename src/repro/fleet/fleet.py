"""Multi-device fleet over a shared serverless platform."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.apps.graph import AppGraph
from repro.apps.jobs import Job
from repro.core.controller import (
    ControllerReport,
    Environment,
    JobFailure,
    OffloadController,
)
from repro.core.demand import DemandModel, RegressionEstimator
from repro.core.partitioning import ObjectiveWeights, Partitioner
from repro.core.scheduler import Scheduler
from repro.device.ue import DeviceSpec, UserEquipment
from repro.metrics import MetricRegistry
from repro.network.profiles import cloud_path, profile as connectivity_profile
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.sim import Event, Simulator
from repro.sim.rng import SeedSequenceRegistry
from repro.storage.objectstore import ObjectStore, StoragePricing


class FleetEnvironment:
    """N per-device environments sharing one simulator and platform."""

    def __init__(
        self,
        sim: Simulator,
        platform: ServerlessPlatform,
        devices: List[Environment],
        rng: SeedSequenceRegistry,
        metrics: MetricRegistry,
    ) -> None:
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.sim = sim
        self.platform = platform
        self.devices = devices
        self.rng = rng
        self.metrics = metrics

    def __len__(self) -> int:
        return len(self.devices)

    @staticmethod
    def build(
        n_devices: int,
        seed: int = 0,
        connectivity: "str | Sequence[str]" = "4g",
        device: Optional[DeviceSpec] = None,
        platform_config: Optional[PlatformConfig] = None,
        with_storage: bool = False,
        storage_pricing: Optional[StoragePricing] = None,
        execution_noise_sigma: float = 0.05,
    ) -> "FleetEnvironment":
        """Assemble a fleet.

        ``connectivity`` may be one preset for every device or a sequence
        cycled across devices (mixed-technology fleets).
        """
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        sim = Simulator()
        rng = SeedSequenceRegistry(seed)
        metrics = MetricRegistry()
        platform = ServerlessPlatform(
            sim, platform_config, metrics=metrics, rng=rng.stream("platform")
        )
        storage = None
        if with_storage or storage_pricing is not None:
            storage = ObjectStore(sim, storage_pricing, metrics=metrics)
        profiles = (
            [connectivity] if isinstance(connectivity, str) else list(connectivity)
        )
        devices = []
        for index in range(n_devices):
            prof = connectivity_profile(profiles[index % len(profiles)])
            from dataclasses import replace as _replace

            spec = device if device is not None else DeviceSpec()
            spec = _replace(spec, name=f"ue{index}")
            ue = UserEquipment(sim, spec, metrics=metrics)
            devices.append(
                Environment(
                    sim=sim,
                    ue=ue,
                    platform=platform,
                    uplink=cloud_path(sim, prof, uplink=True, metrics=metrics),
                    downlink=cloud_path(sim, prof, uplink=False, metrics=metrics),
                    rng=rng.fork(f"device{index}"),
                    metrics=metrics,
                    execution_noise_sigma=execution_noise_sigma,
                    storage=storage,
                )
            )
        return FleetEnvironment(sim, platform, devices, rng, metrics)


@dataclass
class FleetReport:
    """Aggregate and per-device outcomes of a fleet run."""

    per_device: Dict[int, ControllerReport] = field(default_factory=dict)

    @property
    def jobs_completed(self) -> int:
        """Completed jobs across all devices."""
        return sum(r.jobs_completed for r in self.per_device.values())

    @property
    def failures(self) -> int:
        """Failed jobs across all devices."""
        return sum(len(r.failures) for r in self.per_device.values())

    @property
    def deadline_miss_rate(self) -> float:
        """Fleet-wide miss fraction (failures count as misses)."""
        total = missed = 0
        for report in self.per_device.values():
            total += report.jobs_completed + len(report.failures)
            missed += sum(1 for r in report.results if not r.met_deadline)
            missed += len(report.failures)
        return missed / total if total else 0.0

    @property
    def mean_response_s(self) -> float:
        """Mean response time over every completed job.

        An empty or all-failed run reports ``0.0`` rather than NaN: the
        sharded fleet path makes zero-job shards reachable, and NaN
        would poison every canonical-JSON merge downstream.
        """
        responses = [
            r.response_time
            for report in self.per_device.values()
            for r in report.results
        ]
        return sum(responses) / len(responses) if responses else 0.0

    @property
    def total_ue_energy_j(self) -> float:
        """Energy summed over every device."""
        return sum(r.total_ue_energy_j for r in self.per_device.values())

    @property
    def total_cloud_cost_usd(self) -> float:
        """Serverless bill summed over every device's jobs."""
        return sum(r.total_cloud_cost_usd for r in self.per_device.values())

    @staticmethod
    def merge(reports: Iterable["FleetReport"]) -> "FleetReport":
        """Key-ordered union of per-device reports.

        Merging is associative with :class:`FleetReport()` as identity,
        and every aggregate of the merged report equals the same
        aggregate computed over the concatenated job set — the contract
        the sharded fleet runner's deterministic merge relies on.  A
        device index appearing in more than one input is an error: the
        shard partitioner assigns every UE exactly once, so a collision
        means the inputs do not come from a partition.
        """
        merged: Dict[int, ControllerReport] = {}
        for report in reports:
            for index, device_report in report.per_device.items():
                if index in merged:
                    raise ValueError(
                        f"device {index} appears in more than one report"
                    )
                merged[index] = device_report
        return FleetReport(per_device=dict(sorted(merged.items())))


class FleetController:
    """One offloading controller per device, sharing functions and demand.

    All devices run the *same* application, so they share one demand
    model (fleet-wide learning) and one set of deployed functions (the
    warm pools are communal — the fleet's key economy).  Each device
    still plans against its own connectivity.
    """

    def __init__(
        self,
        env: FleetEnvironment,
        app: AppGraph,
        partitioner: Optional[Partitioner] = None,
        scheduler_factory: Optional[Callable[[], Scheduler]] = None,
        weights: Optional[ObjectiveWeights] = None,
        demand_model: Optional[DemandModel] = None,
        latency_slo_s: float = math.inf,
    ) -> None:
        self.env = env
        self.app = app
        self.demand = demand_model or DemandModel(app, RegressionEstimator)
        self.controllers: List[OffloadController] = []
        for device_env in env.devices:
            self.controllers.append(
                OffloadController(
                    env=device_env,
                    app=app,
                    partitioner=partitioner,
                    scheduler=scheduler_factory() if scheduler_factory else None,
                    demand_model=self.demand,
                    weights=weights,
                    latency_slo_s=latency_slo_s,
                )
            )

    def profile_offline(self, **kwargs) -> None:
        """Train the shared demand model once (CI profiles once per app)."""
        self.controllers[0].profile_offline(**kwargs)

    def plan(self, input_mb: float = 1.0) -> None:
        """Plan every device; functions are shared, so later plans reuse
        the deployments of earlier ones unless connectivity changes the
        allocation."""
        for controller in self.controllers:
            controller.plan(input_mb)

    def controller_for(self, device_index: int) -> OffloadController:
        """The per-device controller (for inspection)."""
        return self.controllers[device_index]

    def launch(
        self, jobs_by_device: Dict[int, List[Job]]
    ) -> Tuple[FleetReport, List[Event]]:
        """Spawn the release drivers without running the simulator.

        Returns the (still-empty) report and the driver completion
        events.  :meth:`run` is ``launch`` + one ``sim.run``; keeping the
        two apart lets several fleets — e.g. one per zone in
        :mod:`repro.fleet.sharded` — co-simulate on a shared simulator
        and platform before anything is driven to completion.  Callers
        of ``launch`` must sort each device's results by completion time
        once the simulation finishes (``run`` does this for you).
        """
        report = FleetReport(
            per_device={index: ControllerReport() for index in jobs_by_device}
        )
        sim = self.env.sim

        def release(
            controller: OffloadController,
            job: Job,
            device_report: ControllerReport,
        ) -> Generator[Event, Any, None]:
            if job.released_at > sim.now:
                yield sim.timeout(job.released_at - sim.now)
            try:
                result = yield controller.submit(job)
            except BaseException as error:  # noqa: BLE001 - recorded
                device_report.failures.append(JobFailure(job, sim.now, error))
            else:
                device_report.results.append(result)

        drivers = []
        for index, jobs in jobs_by_device.items():
            if not 0 <= index < len(self.controllers):
                raise IndexError(f"no device {index} in this fleet")
            controller = self.controllers[index]
            device_report = report.per_device[index]
            for job in jobs:
                drivers.append(
                    sim.spawn(release(controller, job, device_report))
                )
        return report, drivers

    def run(self, jobs_by_device: Dict[int, List[Job]]) -> FleetReport:
        """Release each device's jobs and run the shared simulation."""
        report, drivers = self.launch(jobs_by_device)
        sim = self.env.sim
        if drivers:
            sim.run(until=sim.all_of(drivers))
        for device_report in report.per_device.values():
            device_report.results.sort(key=lambda r: r.finished_at)
        return report


__all__ = ["FleetController", "FleetEnvironment", "FleetReport"]
