"""Fleet simulation: many devices offloading onto one serverless platform.

The serverless pitch is strongest at fleet scale: a thousand phones each
running a nightly job share one pool of functions, so one user's
invocation keeps the sandboxes warm for the next — density replaces
provisioning.  :class:`FleetEnvironment` builds N devices (optionally on
mixed connectivity) over a *shared* simulator and platform;
:class:`FleetController` plans once per device and drives the combined
workload, reporting per-device and aggregate outcomes.

Past a few thousand UEs one process stops being enough:
:mod:`repro.fleet.topology` describes the fleet as zones with warm-pool
coupling links, and :mod:`repro.fleet.sharded` partitions it across
worker processes with a deterministic, byte-stable merge.
"""

from repro.fleet.fleet import FleetController, FleetEnvironment, FleetReport
from repro.fleet.sharded import (
    ShardedFleetResult,
    ShardedFleetSpec,
    reference_report,
    run_sharded,
)
from repro.fleet.topology import (
    FleetTopology,
    ShardPlan,
    Zone,
    partition_topology,
)

__all__ = [
    "FleetController",
    "FleetEnvironment",
    "FleetReport",
    "FleetTopology",
    "ShardPlan",
    "ShardedFleetResult",
    "ShardedFleetSpec",
    "Zone",
    "partition_topology",
    "reference_report",
    "run_sharded",
]
