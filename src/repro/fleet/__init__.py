"""Fleet simulation: many devices offloading onto one serverless platform.

The serverless pitch is strongest at fleet scale: a thousand phones each
running a nightly job share one pool of functions, so one user's
invocation keeps the sandboxes warm for the next — density replaces
provisioning.  :class:`FleetEnvironment` builds N devices (optionally on
mixed connectivity) over a *shared* simulator and platform;
:class:`FleetController` plans once per device and drives the combined
workload, reporting per-device and aggregate outcomes.
"""

from repro.fleet.fleet import FleetController, FleetEnvironment, FleetReport

__all__ = ["FleetController", "FleetEnvironment", "FleetReport"]
