"""Sharded fleet simulation: zones partitioned across worker processes.

The fleet-economics experiments run one kernel on one core; a million-UE
day is billions of events and will never fit one process.  This module
scales the fleet out the way :class:`~repro.sweep.runner.SweepRunner`
scales grids out: partition the work into independent cells, run the
cells anywhere, and merge deterministically so the merged report is
byte-identical for any shard count and any worker count.

**Unit of identity: the zone.**  Every source of per-UE randomness —
device RNG forks, execution noise, profiling draws, UE names, job ids,
release times — is keyed by ``(zone name, local index)`` or by the UE's
global id, never by its position inside a simulator.  A zone therefore
simulates byte-identically no matter which shard or process hosts it.

**Unit of simulation: the coupling group.**  Zones linked in the
:class:`~repro.fleet.topology.FleetTopology` share one simulator and one
serverless platform (shared warm pools — the fleet's key economy);
unlinked zones get their own.  Group composition depends only on the
topology, so *uncoupled* zones produce identical results under any
shard layout.

**Exactness condition.**  The merged report of :func:`run_sharded` is
byte-identical to the single-process reference
(:func:`reference_report`, which drives the ordinary
:meth:`FleetController.run <repro.fleet.fleet.FleetController>` path)
exactly when no topology link crosses a shard boundary.  The default
partitioner keeps coupling groups atomic, so this always holds unless
``split_coupled=True`` is requested.

**Bounded-error mode.**  With ``split_coupled=True`` a link may be
split: its endpoint zones run on separate platforms and lose warm-pool
sharing.  Under the default platform configuration (no binding
concurrency limit, ``failure_probability`` 0, no fault schedules) that
is the *only* divergence — cold starts are not billed, so cloud cost is
preserved exactly, and the divergence is purely timing.  Each shard
records, per function, which sync windows of width
``max(sync_window_s, keep_alive_s)`` saw invocations; at merge time an
invocation is *potentially affected* if the zone across a split link
invoked the same function in the same or an adjacent window (a window
at least ``keep_alive_s`` wide guarantees any warm-sharing opportunity
falls inside the adjacency, making the count conservative).  The
resulting :func:`compute_error_bound` guarantees, versus the reference:

* ``|Δ cold_starts| <= affected_invocations`` — a flip per affected
  invocation at most;
* ``|Δ mean_response_s| <= affected * max_cold_start_s * J / total``
  where ``J`` is the largest job count among the split groups — one
  cold start delays its own and (work-conserving schedulers being
  non-expansive) at most every later completion in its group by the
  cold-start duration;
* ``Δ total_cloud_cost_usd = 0`` — cold starts bill nothing.

UE energy shifts by at most idle power × the same delay; it is reported
but not bounded.  Shrinking ``sync_window_s`` below ``keep_alive_s``
has no effect (the effective window is clamped up); growing it only
loosens the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.apps.jobs import Job
from repro.core.controller import Environment
from repro.device.ue import DeviceSpec, UserEquipment
from repro.faults.injector import inject_faults
from repro.faults.schedule import FaultKind, FaultSchedule, FaultWindow
from repro.fleet.fleet import FleetController, FleetEnvironment, FleetReport
from repro.fleet.topology import (
    FleetTopology,
    ShardPlan,
    Zone,
    derive_seed,
    partition_topology,
)
from repro.metrics import MetricRegistry
from repro.monitor.fleet import (
    FLEET_HEALTH_SCHEMA,
    FLEET_RULES,
    FleetSLOEngine,
    MonitorSnapshot,
    merge_snapshots,
)
from repro.monitor.monitor import Monitor
from repro.monitor.slo import SLO, BurnRateRule
from repro.network.profiles import cloud_path, profile as connectivity_profile
from repro.perf.meter import RuntimeMeter
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.sim import Simulator
from repro.sim.rng import SeedSequenceRegistry
from repro.sweep import SweepProgress, SweepRunner, SweepSpec, canonical_json
from repro.telemetry.tracer import Tracer

#: Version tag embedded in every merged document.
SCHEMA = "repro.fleet.sharded/1"

#: Job-id stride: UE ``g``'s ``k``-th job gets id ``g * STRIDE + k``,
#: deterministic and process-independent (the default process-global job
#: counter would leak spawn order across shard layouts).
_JOB_ID_STRIDE = 1 << 20


@dataclass(frozen=True)
class ShardedFleetSpec:
    """Everything one shard needs to simulate its zones.

    The whole spec is JSON-serialisable, so a shard config travels
    through the sweep runner's canonical-JSON cache keys unchanged.
    ``window_s`` spreads job releases across the fleet by *global* UE id
    (shard-layout independent); ``sync_window_s`` only affects the
    bounded-error accounting, never the simulation itself.
    """

    topology: FleetTopology
    app: str = "photo_backup"
    input_mb: float = 2.0
    window_s: float = 3600.0
    slack_s: float = 3600.0
    keep_alive_s: float = 600.0
    sync_window_s: float = 600.0
    monitor: bool = False
    chaos: str = "none"
    remediate: bool = False

    def __post_init__(self) -> None:
        if self.remediate and not self.monitor:
            raise ValueError("remediate=True requires monitor=True")
        if self.input_mb < 0:
            raise ValueError("input_mb must be >= 0")
        if self.window_s <= 0:
            raise ValueError("window_s must be > 0")
        if self.slack_s < 0:
            raise ValueError("slack_s must be >= 0")
        if self.keep_alive_s < 0:
            raise ValueError("keep_alive_s must be >= 0")
        if self.sync_window_s <= 0:
            raise ValueError("sync_window_s must be > 0")
        if self.chaos not in FLEET_CHAOS:
            raise ValueError(
                f"unknown chaos schedule {self.chaos!r}; "
                f"choose from {sorted(FLEET_CHAOS)}"
            )

    @property
    def effective_sync_window_s(self) -> float:
        """The window actually used for error accounting: clamped to at
        least ``keep_alive_s`` so adjacency covers every warm-sharing
        opportunity (the conservativeness condition)."""
        return max(self.sync_window_s, self.keep_alive_s, 1e-9)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology.to_dict(),
            "app": self.app,
            "input_mb": self.input_mb,
            "window_s": self.window_s,
            "slack_s": self.slack_s,
            "keep_alive_s": self.keep_alive_s,
            "sync_window_s": self.sync_window_s,
            "monitor": self.monitor,
            "chaos": self.chaos,
            "remediate": self.remediate,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ShardedFleetSpec":
        return ShardedFleetSpec(
            topology=FleetTopology.from_dict(data["topology"]),
            app=data.get("app", "photo_backup"),
            input_mb=float(data.get("input_mb", 2.0)),
            window_s=float(data.get("window_s", 3600.0)),
            slack_s=float(data.get("slack_s", 3600.0)),
            keep_alive_s=float(data.get("keep_alive_s", 600.0)),
            sync_window_s=float(data.get("sync_window_s", 600.0)),
            monitor=bool(data.get("monitor", False)),
            chaos=str(data.get("chaos", "none")),
            remediate=bool(data.get("remediate", False)),
        )


# -- chaos schedules --------------------------------------------------------


def _chaos_uplink_outage(spec: "ShardedFleetSpec") -> FaultSchedule:
    """Uplink dead from 20% to 55% of the release window.

    Uploads released inside the window stall until it lifts, so their
    durations blow past the stall threshold — the link-stall latency
    SLO is the detector.  Link-only faults wrap each device's access
    hop and never touch the shared platform, so the schedule is
    identical under every shard layout.
    """
    return FaultSchedule([
        FaultWindow(
            FaultKind.LINK_OUTAGE,
            0.20 * spec.window_s,
            0.55 * spec.window_s,
            target="uplink",
        )
    ])


def _chaos_uplink_degraded(spec: "ShardedFleetSpec") -> FaultSchedule:
    """Uplink at 25% rate from 20% to 70% of the release window."""
    return FaultSchedule([
        FaultWindow(
            FaultKind.LINK_DEGRADED,
            0.20 * spec.window_s,
            0.70 * spec.window_s,
            target="uplink",
            magnitude=0.25,
        )
    ])


#: Named chaos schedules a fleet spec may request.  All are link-only
#: (the access hop is per-device), which keeps the injection independent
#: of how zones are packed into shards.
FLEET_CHAOS: Dict[str, Optional[Callable[["ShardedFleetSpec"], FaultSchedule]]]
FLEET_CHAOS = {
    "none": None,
    "uplink-outage": _chaos_uplink_outage,
    "uplink-degraded": _chaos_uplink_degraded,
}


def fleet_chaos_schedule(spec: "ShardedFleetSpec") -> Optional[FaultSchedule]:
    """The fault schedule for ``spec.chaos`` (``None`` when fault-free)."""
    builder = FLEET_CHAOS[spec.chaos]
    return builder(spec) if builder is not None else None


# -- per-group simulation ---------------------------------------------------


def _monitor_horizon_s(spec: "ShardedFleetSpec") -> float:
    """Series retention for fleet monitors: cover the whole run.

    The stock monitor prunes buckets older than an hour; a fleet run
    lasts ``window_s + slack_s`` plus tail latency, and the offline SLO
    replay needs every bucket, so retention spans the run with an hour
    of margin.
    """
    return spec.window_s + spec.slack_s + 3600.0


def _group_label(names: Sequence[str]) -> str:
    """Canonical entity label for a coupling group's shared platform."""
    return "+".join(names)


def _empty_snapshot(spec: "ShardedFleetSpec", names: Sequence[str]
                    ) -> MonitorSnapshot:
    return MonitorSnapshot(
        zone=_group_label(names), horizon_s=_monitor_horizon_s(spec)
    )


def _app_factory(name: str):
    from repro.apps.catalog import CATALOG

    if name not in CATALOG:
        raise ValueError(f"unknown app {name!r}; choose from {sorted(CATALOG)}")
    return CATALOG[name]


def _zone_jobs(
    spec: ShardedFleetSpec, zone: Zone, app, base: int, total_ues: int
) -> Dict[int, List[Job]]:
    """Jobs for one zone, keyed by local device index.

    Release times spread the *global* fleet across ``window_s`` (round
    ``k`` occupies window ``k``), so a UE's workload is identical under
    every shard layout.
    """
    jobs: Dict[int, List[Job]] = {}
    for local in range(zone.n_ues):
        g = base + local
        jobs[local] = [
            Job(
                app,
                input_mb=spec.input_mb,
                released_at=spec.window_s * (g + total_ues * k) / total_ues,
                deadline=spec.window_s * (g + total_ues * k) / total_ues
                + spec.slack_s,
                job_id=g * _JOB_ID_STRIDE + k,
            )
            for k in range(zone.jobs_per_ue)
        ]
    return jobs


def _zero_ue_records(
    spec: ShardedFleetSpec, zones: Sequence[Zone]
) -> List[Dict[str, Any]]:
    topology = spec.topology
    records = []
    for zone in zones:
        base = topology.ue_base(zone.name)
        for local in range(zone.n_ues):
            records.append(
                {
                    "ue": base + local,
                    "zone": zone.name,
                    "jobs": 0,
                    "completed": 0,
                    "failures": 0,
                    "misses": 0,
                    "responses_s": [],
                    "energy_j": 0.0,
                    "cost_usd": 0.0,
                }
            )
    return records


def _ue_record(
    global_id: int, zone_name: str, submitted: int, report
) -> Dict[str, Any]:
    return {
        "ue": global_id,
        "zone": zone_name,
        "jobs": submitted,
        "completed": report.jobs_completed,
        "failures": len(report.failures),
        "misses": sum(1 for r in report.results if not r.met_deadline),
        "responses_s": [float(r.response_time) for r in report.results],
        "energy_j": float(report.total_ue_energy_j),
        "cost_usd": float(report.total_cloud_cost_usd),
    }


def _simulate_group(
    spec: ShardedFleetSpec, zone_names: Sequence[str]
) -> Dict[str, Any]:
    """Simulate one coupling group (shared simulator + platform) and
    serialise the outcome as a JSON-safe group record.

    Both the sharded scenario and the single-process reference call this
    helper, so the two paths can only diverge in *which* groups they
    form — exactly the coupling semantics under test.
    """
    topology = spec.topology
    zones = [topology.zone(name) for name in sorted(zone_names)]
    names = [zone.name for zone in zones]
    total_ues = topology.total_ues
    group_jobs = sum(zone.n_ues * zone.jobs_per_ue for zone in zones)

    record: Dict[str, Any] = {
        "zones": names,
        "ues": [],
        "cold_starts": 0,
        "invocations": 0,
        "platform_usd": 0.0,
        "sim_events": 0,
        "sim_end_s": 0.0,
    }
    if topology.links:
        record["windows"] = {}
        record["max_cold_start_s"] = 0.0
    if group_jobs == 0:
        # Nothing will ever run: skip the simulator entirely.  The
        # records are identical to what a run would produce, and the
        # skip decision depends only on the group itself, so every
        # shard layout takes the same path.
        record["ues"] = _zero_ue_records(spec, zones)
        record["meter"] = RuntimeMeter().snapshot()
        if spec.monitor:
            record["monitor"] = _empty_snapshot(spec, names).to_dict()
        if spec.remediate:
            record["actions"] = []
        return record

    app_factory = _app_factory(spec.app)
    sim = Simulator()
    metrics = MetricRegistry()
    monitor: Optional[Monitor] = None
    if spec.monitor:
        # One monitor per coupling group: zones sharing a warm pool
        # share fate, and spans carry no zone identity, so the group is
        # the finest deterministic attribution unit.
        sim.tracer = Tracer(sim)
        monitor = Monitor(
            sim,
            zone=_group_label(names),
            horizon_s=_monitor_horizon_s(spec),
        )
        sim.tracer.subscribe(monitor)
    chaos = fleet_chaos_schedule(spec)
    platform_registry = SeedSequenceRegistry(
        derive_seed(topology.seed, "platform", *names)
    )
    platform = ServerlessPlatform(
        sim,
        PlatformConfig(keep_alive_s=spec.keep_alive_s),
        metrics=metrics,
        rng=platform_registry.stream("platform"),
    )

    fleets: List[Tuple[Zone, FleetController, Dict[int, List[Job]]]] = []
    for zone in zones:
        if zone.n_ues == 0:
            continue
        zone_registry = SeedSequenceRegistry(
            derive_seed(topology.seed, "zone", zone.name)
        )
        devices = []
        for local in range(zone.n_ues):
            preset = zone.connectivity[local % len(zone.connectivity)]
            prof = connectivity_profile(preset)
            ue_spec = replace(DeviceSpec(), name=f"{zone.name}.ue{local}")
            ue = UserEquipment(sim, ue_spec, metrics=metrics)
            device_env = Environment(
                sim=sim,
                ue=ue,
                platform=platform,
                uplink=cloud_path(sim, prof, uplink=True, metrics=metrics),
                downlink=cloud_path(
                    sim, prof, uplink=False, metrics=metrics
                ),
                rng=zone_registry.fork(f"device{local}"),
                metrics=metrics,
            )
            if chaos is not None:
                # Link-only schedules wrap this device's access hop;
                # the shared platform is untouched, so injection order
                # across zones cannot matter.
                inject_faults(device_env, chaos)
            devices.append(device_env)
        env = FleetEnvironment(sim, platform, devices, zone_registry, metrics)
        fleet = FleetController(env, app_factory())
        fleet.profile_offline()
        if spec.remediate:
            # Remediated fleets run with the degradation responses armed
            # (the knobs the remediation engine escalates).  Hedging
            # stays off until an alert turns it on.
            from repro.faults.policy import DegradationPolicy

            for controller in fleet.controllers:
                controller.degradation = DegradationPolicy(
                    outage_aware_backoff=True,
                    hedge_after_s=None,
                    fallback_local=True,
                )
        fleet.plan(input_mb=spec.input_mb)
        app = fleet.app
        base = topology.ue_base(zone.name)
        fleets.append((zone, fleet, _zone_jobs(spec, zone, app, base, total_ues)))

    remediation = None
    if spec.remediate:
        # One live engine + remediation loop per coupling group: the
        # group is the atomic sim unit, so its action log depends only
        # on the group itself — never on the shard layout around it.
        from repro.monitor.fleet import (
            default_fleet_rule_overrides,
            live_fleet_slos,
        )
        from repro.monitor.slo import SLOEngine
        from repro.remediate import (
            ControllerActuator,
            LinkForecaster,
            RemediationEngine,
        )

        assert monitor is not None
        slos = live_fleet_slos(_group_label(names))
        engine = SLOEngine(
            monitor,
            slos,
            rules=FLEET_RULES,
            eval_interval_s=60.0,
            rule_overrides=default_fleet_rule_overrides(slos),
        )
        engine.attach(sim)
        remediation = RemediationEngine(
            engine,
            ControllerActuator(
                [c for _zone, fleet, _jobs in fleets
                 for c in fleet.controllers]
            ),
            forecasters=(LinkForecaster(monitor),),
        )
        remediation.attach(sim)

    launched = []
    drivers = []
    for zone, fleet, jobs_by_device in fleets:
        report, zone_drivers = fleet.launch(jobs_by_device)
        launched.append((zone, report))
        drivers.extend(zone_drivers)
    if drivers:
        sim.run(until=sim.all_of(drivers))
    for _zone, report in launched:
        for device_report in report.per_device.values():
            device_report.results.sort(key=lambda r: r.finished_at)

    # Re-key every zone report to global UE ids and fold them through
    # FleetReport.merge — the same arithmetic the unit tests pin down.
    merged = FleetReport.merge(
        FleetReport(
            per_device={
                topology.ue_base(zone.name) + local: device_report
                for local, device_report in report.per_device.items()
            }
        )
        for zone, report in launched
    )
    zone_of = {}
    submitted = {}
    for zone, fleet, jobs_by_device in fleets:
        base = topology.ue_base(zone.name)
        for local, jobs in jobs_by_device.items():
            zone_of[base + local] = zone.name
            submitted[base + local] = len(jobs)
    record["ues"] = [
        _ue_record(g, zone_of[g], submitted[g], merged.per_device[g])
        for g in sorted(merged.per_device)
    ]

    invocations = platform.invocations
    record["cold_starts"] = sum(1 for inv in invocations if inv.cold_start)
    record["invocations"] = len(invocations)
    record["platform_usd"] = float(platform.total_cost)
    record["sim_events"] = sim.events_processed
    record["sim_end_s"] = float(sim.now)
    # The group's meter snapshot is a pure function of the simulated
    # work (lane hits, plans), so it is byte-identical under every
    # shard layout — it rides the record into the merged document.
    record["meter"] = sim.meter.snapshot()
    if monitor is not None:
        # A side channel like ``windows``: rides the shard result, is
        # merged via merge_snapshots, and never enters the merged fleet
        # document itself.
        record["monitor"] = monitor.snapshot(end_s=float(sim.now)).to_dict()
    if remediation is not None:
        # Also a side channel: per-group action-log lines, concatenated
        # in group order at merge time.  The live engine finalizes so a
        # straddling alert's terminal CLEARED line is part of the log.
        remediation.engine.finalize(float(sim.now))
        record["actions"] = list(remediation.log)

    if topology.links:
        window_s = spec.effective_sync_window_s
        windows: Dict[str, Dict[str, int]] = {}
        for inv in invocations:
            buckets = windows.setdefault(inv.request.function, {})
            key = str(int(inv.submitted_at // window_s))
            buckets[key] = buckets.get(key, 0) + 1
        record["windows"] = windows
        record["max_cold_start_s"] = float(
            max(
                (
                    platform.config.cold_start_duration(platform.spec(name))
                    for name in platform.deployed_functions()
                ),
                default=0.0,
            )
        )
    return record


def _induced_groups(
    topology: FleetTopology, zone_names: Sequence[str]
) -> List[Tuple[str, ...]]:
    """Coupling components restricted to one shard's zones.

    With atomic partitioning a shard holds whole components, so this
    reproduces them exactly; in split mode, co-sharded linked zones
    still share a simulator while the severed half couples only through
    the error bound.
    """
    members = set(zone_names)
    adjacency = topology.neighbours()
    groups: List[Tuple[str, ...]] = []
    seen: set = set()
    for name in sorted(members):
        if name in seen:
            continue
        component = []
        frontier = [name]
        seen.add(name)
        while frontier:
            current = frontier.pop(0)
            component.append(current)
            for peer in adjacency[current]:
                if peer in members and peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        groups.append(tuple(sorted(component)))
    return sorted(groups)


def shard_run(config: Dict[str, Any]) -> Dict[str, Any]:
    """Sweep scenario: simulate one shard's zones, group by group.

    Config keys: ``spec`` (a :meth:`ShardedFleetSpec.to_dict`),
    ``zones`` (the shard's zone names), ``shard`` (index, for config
    uniqueness only — it never reaches the merged document).
    """
    spec = ShardedFleetSpec.from_dict(config["spec"])
    zone_names = list(config.get("zones", ()))
    groups = _induced_groups(spec.topology, zone_names)
    return {
        "shard": int(config.get("shard", 0)),
        "groups": [_simulate_group(spec, group) for group in groups],
    }


# -- deterministic merge ----------------------------------------------------


def merge_group_records(
    spec: ShardedFleetSpec, group_records: Sequence[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Key-ordered merge of group records into the canonical document.

    Ordered by group key (the sorted zone tuple) and, inside, by global
    UE id; aggregates are folded in that same order.  Shard layout,
    worker count, and the error-accounting side channels (``windows``,
    ``max_cold_start_s``) are deliberately excluded, so the document is
    byte-stable across shard and worker counts.
    """
    topology = spec.topology
    ordered = sorted(group_records, key=lambda g: tuple(g["zones"]))
    covered = [name for group in ordered for name in group["zones"]]
    expected = [zone.name for zone in topology.zones]
    if sorted(covered) != expected:
        raise ValueError(
            f"group records cover zones {sorted(covered)}, expected {expected}"
        )

    groups_out = []
    seen_ues: set = set()
    totals = {
        "jobs": 0,
        "completed": 0,
        "failures": 0,
        "misses": 0,
        "cold_starts": 0,
        "invocations": 0,
        "sim_events": 0,
    }
    response_sum = 0.0
    response_count = 0
    energy = 0.0
    cost = 0.0
    platform_usd = 0.0
    meter = RuntimeMeter()
    for group in ordered:
        ues = sorted(group["ues"], key=lambda u: u["ue"])
        for ue in ues:
            if ue["ue"] in seen_ues:
                raise ValueError(f"UE {ue['ue']} reported twice")
            seen_ues.add(ue["ue"])
            totals["jobs"] += ue["jobs"]
            totals["completed"] += ue["completed"]
            totals["failures"] += ue["failures"]
            totals["misses"] += ue["misses"]
            response_sum += sum(ue["responses_s"])
            response_count += len(ue["responses_s"])
            energy += ue["energy_j"]
            cost += ue["cost_usd"]
        totals["cold_starts"] += group["cold_starts"]
        totals["invocations"] += group["invocations"]
        totals["sim_events"] += group["sim_events"]
        platform_usd += group["platform_usd"]
        meter.absorb_snapshot(group.get("meter", {}))
        groups_out.append(
            {
                "zones": list(group["zones"]),
                "ues": ues,
                "cold_starts": group["cold_starts"],
                "invocations": group["invocations"],
                "platform_usd": group["platform_usd"],
                "sim_events": group["sim_events"],
                "sim_end_s": group["sim_end_s"],
                "meter": dict(group.get("meter", {})),
            }
        )
    if len(seen_ues) != topology.total_ues:
        raise ValueError(
            f"{len(seen_ues)} UEs reported, topology has {topology.total_ues}"
        )

    finished = totals["completed"] + totals["failures"]
    aggregates = {
        "jobs_submitted": totals["jobs"],
        "jobs_completed": totals["completed"],
        "failures": totals["failures"],
        "deadline_miss_rate": (
            (totals["misses"] + totals["failures"]) / finished
            if finished
            else 0.0
        ),
        "mean_response_s": (
            response_sum / response_count if response_count else 0.0
        ),
        "total_ue_energy_j": energy,
        "total_cloud_cost_usd": cost,
        "platform_usd": platform_usd,
        "cold_starts": totals["cold_starts"],
        "invocations": totals["invocations"],
        "cold_start_fraction": (
            totals["cold_starts"] / totals["invocations"]
            if totals["invocations"]
            else 0.0
        ),
        "sim_events": totals["sim_events"],
    }
    return {
        "schema": SCHEMA,
        "spec": spec.to_dict(),
        "groups": groups_out,
        "aggregates": aggregates,
        # Counters only (ints, work-determined): byte-stable across
        # shard and worker counts like everything else in the document.
        "meter": meter.snapshot(),
    }


def compute_error_bound(
    spec: ShardedFleetSpec,
    plan: ShardPlan,
    group_records: Sequence[Mapping[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The conservative divergence bound for a split-coupled run.

    ``None`` when no link was split (the run is exact).  See the module
    docstring for the guarantee and its conditions.
    """
    if not plan.split_links:
        return None
    by_zone: Dict[str, Mapping[str, Any]] = {}
    for group in group_records:
        for name in group["zones"]:
            by_zone[name] = group

    def adjacent_count(
        source: Mapping[str, Mapping[str, int]],
        other: Mapping[str, Mapping[str, int]],
    ) -> int:
        count = 0
        for function, buckets in source.items():
            peer = other.get(function)
            if not peer:
                continue
            for key, invocations in buckets.items():
                window = int(key)
                if any(str(window + d) in peer for d in (-1, 0, 1)):
                    count += invocations
        return count

    affected = 0
    split_group_jobs = []
    max_cold_s = 0.0
    for a, b in plan.split_links:
        group_a, group_b = by_zone[a], by_zone[b]
        affected += adjacent_count(
            group_a.get("windows", {}), group_b.get("windows", {})
        )
        affected += adjacent_count(
            group_b.get("windows", {}), group_a.get("windows", {})
        )
        for group in (group_a, group_b):
            split_group_jobs.append(sum(u["jobs"] for u in group["ues"]))
            max_cold_s = max(max_cold_s, group.get("max_cold_start_s", 0.0))

    total_jobs = spec.topology.total_jobs
    widest_group = max(split_group_jobs, default=0)
    return {
        "window_s": spec.effective_sync_window_s,
        "split_links": [list(link) for link in plan.split_links],
        "affected_invocations": affected,
        "cold_starts": affected,
        "mean_response_s": (
            affected * max_cold_s * widest_group / total_jobs
            if total_jobs
            else 0.0
        ),
        "total_cloud_cost_usd": 0.0,
    }


# -- fleet health -----------------------------------------------------------


def build_fleet_health(
    spec: ShardedFleetSpec,
    document: Mapping[str, Any],
    snapshot: MonitorSnapshot,
    slos: Optional[Sequence[SLO]] = None,
    rules: Sequence[BurnRateRule] = FLEET_RULES,
    eval_interval_s: float = 60.0,
    rule_overrides: Optional[Mapping[str, Sequence[BurnRateRule]]] = None,
    action_log: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """The merged fleet health document (schema ``repro.monitor.fleet/1``).

    Composes the offline SLO replay over the merged snapshot
    (:class:`~repro.monitor.fleet.FleetSLOEngine`) with per-zone rollups
    derived from the merged fleet document.  A zone inherits the health
    status of its coupling-group entity (the attribution unit — shared
    warm pool, shared fate); numeric rollups come from its own UE
    records.  Every fold walks zones and UEs in sorted order, so the
    document is byte-deterministic whenever the inputs are.
    """
    engine = FleetSLOEngine(
        snapshot,
        slos=slos,
        rules=rules,
        eval_interval_s=eval_interval_s,
        rule_overrides=rule_overrides,
    )
    engine_report = engine.report()
    entity_health = engine_report["health"]

    zones: Dict[str, Dict[str, Any]] = {}
    for group in document["groups"]:
        label = _group_label(group["zones"])
        status = entity_health.get(
            f"zone/{label}", {"status": "ok", "active_alerts": []}
        )
        for zone_name in group["zones"]:
            ues = [u for u in group["ues"] if u["zone"] == zone_name]
            responses = [r for u in ues for r in u["responses_s"]]
            zones[zone_name] = {
                "group": label,
                "status": status["status"],
                "active_alerts": list(status["active_alerts"]),
                "ues": len(ues),
                "jobs": sum(u["jobs"] for u in ues),
                "completed": sum(u["completed"] for u in ues),
                "failures": sum(u["failures"] for u in ues),
                "deadline_misses": sum(u["misses"] for u in ues),
                "mean_response_s": (
                    sum(responses) / len(responses) if responses else 0.0
                ),
                "cost_usd": sum(u["cost_usd"] for u in ues),
            }

    statuses = [entry["status"] for entry in entity_health.values()]
    fleet_status = (
        "critical" if "critical" in statuses
        else "degraded" if "degraded" in statuses
        else "ok"
    )
    aggregates = document["aggregates"]
    # The replay finalizes, so nothing stays literally active; what the
    # rollup wants is alerts that never organically recovered.
    alerts_active = sum(
        1 for a in engine.alerts if a.cleared_at is None or a.final
    )
    out: Dict[str, Any] = {
        "schema": FLEET_HEALTH_SCHEMA,
        "spec": spec.to_dict(),
        "fleet": {
            "status": fleet_status,
            "zones": len(zones),
            "ues": spec.topology.total_ues,
            "groups": len(document["groups"]),
            "alerts_fired": len(engine.alerts),
            "alerts_active": alerts_active,
            "monitored_events": snapshot.total_events,
        },
        "counters": {
            "jobs_submitted": aggregates["jobs_submitted"],
            "jobs_completed": aggregates["jobs_completed"],
            "failures": aggregates["failures"],
            "cold_starts": aggregates["cold_starts"],
            "invocations": aggregates["invocations"],
            "platform_usd": aggregates["platform_usd"],
            "total_cloud_cost_usd": aggregates["total_cloud_cost_usd"],
        },
        # Group-summed runtime meter from the merged document: a pure
        # function of the simulated work, so the health document stays
        # byte-identical across shard/worker counts.
        "meter": dict(document.get("meter", {})),
        "zones": dict(sorted(zones.items())),
        "entities": entity_health,
        "evaluated_at": engine_report["evaluated_at"],
        "eval_interval_s": engine_report["eval_interval_s"],
        "slos": engine_report["slos"],
        "alerts": engine_report["alerts"],
        "log": engine_report["log"],
        "stats": engine_report["stats"],
    }
    if action_log is not None:
        # Remediated runs carry their merged (group-ordered) action log
        # alongside the alert log; the key is absent otherwise so
        # unremediated health documents keep their exact bytes.
        out["actions"] = list(action_log)
    return out


def snapshots_from_group_records(
    group_records: Sequence[Mapping[str, Any]],
) -> List[MonitorSnapshot]:
    """Deserialize every group record's monitor side channel."""
    return [
        MonitorSnapshot.from_dict(group["monitor"])
        for group in group_records
        if "monitor" in group
    ]


def actions_from_group_records(
    group_records: Sequence[Mapping[str, Any]],
) -> List[str]:
    """The merged fleet action log: per-group lines in group-key order.

    Groups are atomic sim units, so each group's lines are internally
    time-ordered and byte-identical under every shard layout; ordering
    the groups by their sorted zone tuple (the same key the document
    merge uses) makes the concatenation layout-independent too.
    """
    ordered = sorted(group_records, key=lambda g: tuple(g["zones"]))
    return [
        line for group in ordered for line in group.get("actions", ())
    ]


# -- drivers ----------------------------------------------------------------


@dataclass
class ShardedFleetResult:
    """A sharded run: plan, merged document, bound, and (if monitored)
    the merged health document."""

    spec: ShardedFleetSpec
    plan: ShardPlan
    document: Dict[str, Any]
    error_bound: Optional[Dict[str, Any]] = None
    health: Optional[Dict[str, Any]] = None
    #: Host-side meter: the folded group counters plus the fan-out/merge
    #: stats only the driver can see (shard runs, merge bytes/seconds).
    meter: Optional[RuntimeMeter] = None
    #: The merged document's canonical text, serialised once at merge
    #: time (it is also what ``merge_bytes`` measured).
    merged_text: Optional[str] = None

    @property
    def aggregates(self) -> Dict[str, Any]:
        return self.document["aggregates"]

    @property
    def exact(self) -> bool:
        """True when no link was split — the byte-identity regime."""
        return self.error_bound is None

    def merged_json(self) -> str:
        """Canonical JSON of the merged document, newline-terminated —
        byte-identical across shard counts and worker counts whenever
        :attr:`exact` holds."""
        if self.merged_text is not None:
            return self.merged_text
        return canonical_json(self.document) + "\n"

    def health_json(self) -> str:
        """Canonical JSON of the health document, newline-terminated.

        Raises ``ValueError`` when the run was not monitored; byte
        determinism matches :meth:`merged_json`.
        """
        if self.health is None:
            raise ValueError(
                "run was not monitored; set ShardedFleetSpec.monitor=True"
            )
        return canonical_json(self.health) + "\n"

    @property
    def alert_log(self) -> str:
        """The merged fleet alert log ("" when unmonitored or quiet)."""
        if self.health is None:
            return ""
        log = self.health["log"]
        return "\n".join(log) + ("\n" if log else "")

    @property
    def action_log(self) -> str:
        """The merged remediation action log ("" when not remediated)."""
        if self.health is None:
            return ""
        log = self.health.get("actions", [])
        return "\n".join(log) + ("\n" if log else "")


def run_sharded(
    spec: ShardedFleetSpec,
    n_shards: int = 1,
    workers: int = 1,
    split_coupled: bool = False,
    cache_dir: Optional[str] = None,
    progress: Optional[Callable[[SweepProgress], None]] = None,
) -> ShardedFleetResult:
    """Partition, fan the shards out, and merge deterministically.

    Shards are one sweep config each, executed by the
    :class:`~repro.sweep.runner.SweepRunner` machinery (in-process when
    ``workers == 1``, a multiprocessing pool otherwise) — completion
    order cannot influence the merge, and a ``cache_dir`` turns repeat
    runs of unchanged shards into cache hits.  ``progress`` receives one
    :class:`~repro.sweep.runner.SweepProgress` per finished shard (live
    heartbeats); when ``spec.monitor`` is set, the shard snapshots are
    merged and the health document attached to the result.
    """
    plan = partition_topology(spec.topology, n_shards, split_coupled)
    spec_dict = spec.to_dict()
    configs = [
        {"shard": index, "spec": spec_dict, "zones": list(shard)}
        for index, shard in enumerate(plan.shards)
    ]
    sweep = SweepSpec(
        scenario="repro.fleet.sharded:shard_run", points=configs
    )
    runner = SweepRunner(
        sweep, workers=workers, cache_dir=cache_dir, progress=progress
    )
    meter = RuntimeMeter()
    meter.shard_runs += len(configs)
    fanout_started = perf_counter() if meter.enabled else 0.0
    result = runner.run()
    if meter.enabled:
        meter.shard_wall_s += perf_counter() - fanout_started
    shard_results = result.results_for(configs)
    group_records = [
        group for shard in shard_results for group in shard["groups"]
    ]
    merge_started = perf_counter() if meter.enabled else 0.0
    document = merge_group_records(spec, group_records)
    merged_text = canonical_json(document) + "\n"
    if meter.enabled:
        meter.merge_wall_s += perf_counter() - merge_started
    meter.merge_bytes += len(merged_text.encode("utf-8"))
    meter.absorb(runner.meter)
    meter.absorb_snapshot(document["meter"])
    bound = compute_error_bound(spec, plan, group_records)
    health = None
    if spec.monitor:
        merged_snapshot = merge_snapshots(
            snapshots_from_group_records(group_records)
        )
        health = build_fleet_health(
            spec, document, merged_snapshot,
            action_log=(
                actions_from_group_records(group_records)
                if spec.remediate else None
            ),
        )
    return ShardedFleetResult(
        spec=spec, plan=plan, document=document, error_bound=bound,
        health=health, meter=meter, merged_text=merged_text,
    )


def reference_report(spec: ShardedFleetSpec) -> Dict[str, Any]:
    """The single-process reference: every coupling group simulated
    in-process through the ordinary ``FleetController`` run path, merged
    with the same arithmetic as the sharded runner.  Differential tests
    compare :func:`run_sharded` output against this byte for byte."""
    records = [
        _simulate_group(spec, group)
        for group in spec.topology.coupling_groups()
    ]
    return merge_group_records(spec, records)


def reference_json(spec: ShardedFleetSpec) -> str:
    """Canonical JSON of :func:`reference_report`, newline-terminated."""
    return canonical_json(reference_report(spec)) + "\n"


def reference_health(spec: ShardedFleetSpec) -> Dict[str, Any]:
    """The single-process reference health document.

    Simulates every coupling group in-process (``spec.monitor`` must be
    set), merges the snapshots, and builds the same health document as
    :func:`run_sharded` — the differential baseline for fleet
    observability byte-identity tests.
    """
    if not spec.monitor:
        raise ValueError("reference_health requires spec.monitor=True")
    records = [
        _simulate_group(spec, group)
        for group in spec.topology.coupling_groups()
    ]
    document = merge_group_records(spec, records)
    merged = merge_snapshots(snapshots_from_group_records(records))
    return build_fleet_health(
        spec, document, merged,
        action_log=(
            actions_from_group_records(records) if spec.remediate else None
        ),
    )


__all__ = [
    "FLEET_CHAOS",
    "SCHEMA",
    "ShardedFleetResult",
    "ShardedFleetSpec",
    "actions_from_group_records",
    "build_fleet_health",
    "compute_error_bound",
    "fleet_chaos_schedule",
    "merge_group_records",
    "reference_health",
    "reference_json",
    "reference_report",
    "run_sharded",
    "shard_run",
    "snapshots_from_group_records",
]
