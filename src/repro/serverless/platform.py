"""The serverless platform simulator.

Implements the instance-pool mechanics that produce cold/warm start
behaviour:

* an invocation reuses a *warm* idle instance when one exists;
* otherwise, if the function is below its concurrency limit, a new
  instance is *cold started* (paying an initialisation delay that grows
  with the deployment-package size);
* otherwise the invocation queues FIFO until an instance frees up;
* idle instances expire after ``keep_alive_s`` (lazily collected, which is
  equivalent for a discrete-event run because expiry only matters at the
  next invocation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional, Tuple

from repro.metrics import MetricRegistry
from repro.serverless.billing import BillingModel, CostBreakdown
from repro.serverless.function import (
    STANDARD_MEMORY_TIERS_MB,
    FunctionSpec,
    Invocation,
    InvocationRequest,
)
from repro.sim import Event, Simulator
from repro.sim.rng import RngStream
from repro.telemetry.tracer import PHASE_COLD_START, PHASE_EXECUTE, PHASE_QUEUE


class ThrottledError(RuntimeError):
    """Raised when a function's pending queue exceeds its bound."""


class InvocationFailedError(RuntimeError):
    """A transient execution failure (the platform survives).

    Carries enough context for retry logic: the function name, how long
    the failed attempt ran, and what it billed.
    """

    def __init__(
        self,
        function: str,
        ran_for_s: float,
        billed_usd: float,
        reason: str = "transient failure",
    ) -> None:
        super().__init__(
            f"{function}: {reason} after {ran_for_s:.3f}s"
        )
        self.function = function
        self.ran_for_s = ran_for_s
        self.billed_usd = billed_usd


class PlatformOutageError(InvocationFailedError):
    """The platform's zone is down; the invocation was rejected outright.

    Nothing ran and nothing billed — the cost of an outage is the time
    lost discovering it plus whatever the retry policy burns waiting.
    """

    def __init__(self, function: str) -> None:
        super().__init__(function, 0.0, 0.0, reason="zone outage")


class SandboxReclaimedError(InvocationFailedError):
    """The sandbox was reclaimed (spot-style) mid-execution.

    The partial runtime bills, like any transient failure, but the
    sandbox is destroyed rather than returned to the warm pool.
    """

    def __init__(self, function: str, ran_for_s: float, billed_usd: float) -> None:
        super().__init__(
            function, ran_for_s, billed_usd, reason="sandbox reclaimed"
        )


@dataclass(frozen=True)
class PlatformConfig:
    """Platform-wide behaviour knobs.

    Cold-start parameters follow published Lambda measurements: a fixed
    sandbox-provisioning delay plus a per-megabyte package fetch/extract
    cost.
    """

    billing: BillingModel = field(default_factory=BillingModel)
    cold_start_base_s: float = 0.25
    cold_start_per_package_mb_s: float = 0.004
    keep_alive_s: float = 600.0
    default_concurrency: int = 1000
    max_queue_per_function: Optional[int] = None
    memory_tiers_mb: Tuple[float, ...] = STANDARD_MEMORY_TIERS_MB
    #: Probability that any single execution attempt fails transiently
    #: (sandbox OOM-kill, runtime error, service hiccup).  Failed attempts
    #: bill for the time they ran; the sandbox survives.
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.cold_start_base_s < 0 or self.cold_start_per_package_mb_s < 0:
            raise ValueError("cold-start parameters must be >= 0")
        if self.keep_alive_s < 0:
            raise ValueError("keep-alive must be >= 0")
        if self.default_concurrency < 1:
            raise ValueError("default concurrency must be >= 1")
        if not 0.0 <= self.failure_probability < 1.0:
            raise ValueError("failure probability must be in [0, 1)")

    def cold_start_duration(self, spec: FunctionSpec) -> float:
        """Initialisation delay for one cold start of ``spec``."""
        return self.cold_start_base_s + self.cold_start_per_package_mb_s * spec.package_mb


class _Instance:
    """One sandbox of a function: either busy or idle-since-a-time.

    ``pinned`` marks pre-warmed (provisioned-concurrency) sandboxes: they
    never expire and bill by the GB-second from ``pinned_since`` until
    released.
    """

    __slots__ = ("busy", "idle_since", "pinned", "pinned_since")

    def __init__(self, now: float, pinned: bool = False) -> None:
        self.busy = not pinned
        self.idle_since = now
        self.pinned = pinned
        self.pinned_since = now if pinned else 0.0


class _FunctionState:
    """Mutable per-function runtime state."""

    __slots__ = ("spec", "instances", "queue", "cost", "prewarm_gb_s_accrued")

    def __init__(self, spec: FunctionSpec) -> None:
        self.spec = spec
        self.instances: List[_Instance] = []
        self.queue: Deque[Event] = deque()
        self.cost = CostBreakdown.zero()
        #: GB-seconds already accrued by released pre-warmed sandboxes.
        self.prewarm_gb_s_accrued = 0.0

    def idle_instance(self, now: float, keep_alive_s: float) -> Optional[_Instance]:
        """Collect expired instances, then return a warm idle one if any.

        Pinned (pre-warmed) sandboxes are exempt from expiry and are
        preferred, since their capacity is already paid for.  This sits on
        every invocation's grant path, so the steady state (nothing
        expired — warm traffic keeps sandboxes alive) must not rebuild
        the instance list; the second pass runs only after an expiry.
        """
        warm: Optional[_Instance] = None
        expired = False
        for inst in self.instances:
            if not inst.busy:
                if not inst.pinned and now - inst.idle_since >= keep_alive_s:
                    expired = True
                    continue
                if warm is None or (inst.pinned and not warm.pinned):
                    warm = inst
        if expired:
            self.instances = [
                inst
                for inst in self.instances
                if inst.busy
                or inst.pinned
                or now - inst.idle_since < keep_alive_s
            ]
        return warm

    def pinned_gb_seconds(self, now: float) -> float:
        """Provisioned GB-seconds: released pools plus the live one."""
        gb = self.spec.memory_mb / 1024.0
        live = sum(
            (now - inst.pinned_since) * gb
            for inst in self.instances
            if inst.pinned
        )
        return self.prewarm_gb_s_accrued + live


class ServerlessPlatform:
    """A multi-function FaaS control plane on the simulation kernel."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[PlatformConfig] = None,
        metrics: Optional[MetricRegistry] = None,
        name: str = "faas",
        rng: Optional["RngStream"] = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else PlatformConfig()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.name = name
        self.rng = rng
        if self.config.failure_probability > 0 and rng is None:
            raise ValueError(
                "failure injection requires an RngStream (pass rng=...)"
            )
        self._functions: Dict[str, _FunctionState] = {}
        self._invocations: List[Invocation] = []
        #: Optional :class:`~repro.faults.injector.PlatformFaultModel`
        #: installed by a fault injector; None means no injected faults
        #: (and, crucially, no extra RNG draws — existing seeds replay
        #: identically).
        self.faults = None

    # -- deployment -----------------------------------------------------------

    def deploy(self, spec: FunctionSpec) -> None:
        """Deploy (or redeploy) a function.

        Redeploying replaces the spec and discards the warm pool — matching
        real platforms, where a configuration change recycles sandboxes.
        """
        self._functions[spec.name] = _FunctionState(spec)

    def undeploy(self, name: str) -> None:
        """Remove a function; outstanding invocations must have finished."""
        state = self._state(name)
        if state.queue or any(i.busy for i in state.instances):
            raise RuntimeError(f"cannot undeploy {name!r}: invocations in flight")
        del self._functions[name]

    def is_deployed(self, name: str) -> bool:
        """True when ``name`` currently has a deployment."""
        return name in self._functions

    def spec(self, name: str) -> FunctionSpec:
        """The active spec of a deployed function."""
        return self._state(name).spec

    def deployed_functions(self) -> List[str]:
        """Sorted names of all deployed functions."""
        return sorted(self._functions)

    def _state(self, name: str) -> _FunctionState:
        if name not in self._functions:
            raise KeyError(f"function {name!r} is not deployed")
        return self._functions[name]

    # -- planning helpers -------------------------------------------------

    def estimate_duration(self, function: str, work_gcycles: float) -> float:
        """Warm-start execution-time estimate (what allocators plan with)."""
        return self._state(function).spec.duration_for(work_gcycles)

    def estimate_cost(self, function: str, work_gcycles: float) -> float:
        """Per-invocation cost estimate at the current configuration."""
        spec = self._state(function).spec
        duration = spec.duration_for(work_gcycles)
        return self.config.billing.invocation_cost(duration, spec.memory_mb).total

    # -- invocation -----------------------------------------------------------

    def invoke(self, request: InvocationRequest) -> Event:
        """Submit a request; the returned process event yields an
        :class:`~repro.serverless.function.Invocation` record."""
        state = self._state(request.function)
        max_queue = self.config.max_queue_per_function
        if max_queue is not None and len(state.queue) >= max_queue:
            failed = self.sim.event()
            failed.fail(ThrottledError(f"{request.function}: queue full"))
            return failed
        return self.sim.spawn(
            self._invoke_proc(state, request), name=f"{self.name}.{request.function}"
        )

    def outage_clear_time(self, at: Optional[float] = None) -> Optional[float]:
        """When the zone outage covering ``at`` (default: now) ends.

        ``None`` when no fault model is installed or no outage is active —
        outage-aware retry policies use this to land attempts past the
        dead zone instead of burning them into it.
        """
        if self.faults is None:
            return None
        t = self.sim.now if at is None else at
        return self.faults.outage_clear_time(t)

    def _invoke_proc(
        self, state: _FunctionState, request: InvocationRequest
    ) -> Generator[Event, object, Invocation]:
        sim = self.sim  # hoisted: this generator is the platform's hot path
        submitted_at = sim.now
        spec = state.spec
        limit = spec.concurrency_limit or self.config.default_concurrency
        tracer = sim.tracer
        trace_parent = request.trace_parent

        if self.faults is not None and self.faults.outage_active(submitted_at):
            # The zone is dark: the control plane rejects immediately.
            self.metrics.counter(f"{self.name}.outage_rejections").increment()
            tracer.instant(
                "outage_rejected", parent=trace_parent, function=request.function
            )
            raise PlatformOutageError(request.function)

        instance = state.idle_instance(sim.now, self.config.keep_alive_s)
        cold = False
        if instance is not None:
            instance.busy = True
        elif len(state.instances) < limit:
            cold = True
            instance = _Instance(sim.now)
            state.instances.append(instance)
            cold_span = tracer.start_span(
                request.function,
                category=PHASE_COLD_START,
                parent=trace_parent,
                package_mb=spec.package_mb,
            )
            yield sim.timeout(self.config.cold_start_duration(spec))
            tracer.end_span(cold_span)
        else:
            max_queue = self.config.max_queue_per_function
            if max_queue is not None and len(state.queue) >= max_queue:
                raise ThrottledError(f"{request.function}: queue full")
            ticket = self.sim.event()
            state.queue.append(ticket)
            queue_span = tracer.start_span(
                request.function,
                category=PHASE_QUEUE,
                parent=trace_parent,
                depth=len(state.queue),
            )
            # The finishing invocation hands over its instance still marked
            # busy, so a same-timestamp arrival cannot steal it in between.
            instance = yield ticket
            tracer.end_span(queue_span)

        started_at = sim.now
        duration = spec.duration_for(request.work_gcycles)
        exec_span = tracer.start_span(
            request.function,
            category=PHASE_EXECUTE,
            parent=trace_parent,
            tier="cloud",
            cold=cold,
            memory_mb=spec.memory_mb,
        )
        if tracer.enabled:
            tracer.metrics.counter(
                "invocations_total",
                function=request.function,
                cold=str(cold).lower(),
            ).increment()

        if self.faults is not None:
            slowdown = self.faults.slowdown_factor(started_at)
            if slowdown > 1.0:
                duration *= slowdown
                self.metrics.counter(f"{self.name}.straggler_slowdowns").increment()

        fails = (
            self.config.failure_probability > 0
            and self.rng is not None
            and self.rng.bernoulli(self.config.failure_probability)
        )
        if fails:
            # The attempt dies partway through; the partial runtime bills,
            # the sandbox survives and is handed back to the pool.
            ran_for = duration * self.rng.uniform(0.05, 0.95)
            yield sim.timeout(ran_for)
            self._release_instance(state, instance)
            partial = self.config.billing.invocation_cost(
                ran_for, spec.memory_mb
            )
            state.cost = state.cost + partial
            self.metrics.counter(f"{self.name}.failures").increment()
            self.metrics.counter(f"{self.name}.cost_usd").increment(partial.total)
            tracer.end_span(
                exec_span, error="InvocationFailedError", billed_usd=partial.total
            )
            raise InvocationFailedError(
                request.function, ran_for, partial.total
            )

        if self.faults is not None:
            reclaim_at = self.faults.reclaim_time(started_at, duration)
            if reclaim_at is not None:
                # The sandbox is reclaimed mid-run: partial runtime bills,
                # but the sandbox is destroyed, not returned to the pool.
                ran_for = reclaim_at - started_at
                yield sim.timeout(ran_for)
                self._reclaim_instance(state, instance, limit)
                partial = self.config.billing.invocation_cost(
                    ran_for, spec.memory_mb
                )
                state.cost = state.cost + partial
                self.metrics.counter(f"{self.name}.failures").increment()
                self.metrics.counter(f"{self.name}.reclamations").increment()
                self.metrics.counter(f"{self.name}.cost_usd").increment(
                    partial.total
                )
                tracer.end_span(
                    exec_span,
                    error="SandboxReclaimedError",
                    billed_usd=partial.total,
                )
                raise SandboxReclaimedError(
                    request.function, ran_for, partial.total
                )

        yield sim.timeout(duration)
        finished_at = sim.now
        self._release_instance(state, instance)
        tracer.end_span(exec_span)

        cost = self.config.billing.invocation_cost(duration, spec.memory_mb)
        state.cost = state.cost + cost
        record = Invocation(
            request=request,
            submitted_at=submitted_at,
            started_at=started_at,
            finished_at=finished_at,
            cold_start=cold,
            memory_mb=spec.memory_mb,
            billed_duration_s=self.config.billing.billed_duration(duration),
            cost=cost.total,
        )
        self._record(record)
        return record

    def _release_instance(self, state: _FunctionState, instance: _Instance) -> None:
        """Hand the instance straight to the next queued request (leaving
        it marked busy so a same-timestamp arrival cannot steal it), or
        idle it."""
        if state.queue:
            ticket = state.queue.popleft()
            ticket.succeed(instance)
        else:
            instance.busy = False
            instance.idle_since = self.sim.now

    def _reclaim_instance(
        self, state: _FunctionState, instance: _Instance, limit: int
    ) -> None:
        """Destroy a reclaimed sandbox; cold-start a replacement if queued
        requests would otherwise be stranded below the concurrency limit."""
        state.instances.remove(instance)
        if state.queue and len(state.instances) < limit:
            self.sim.spawn(
                self._replacement_proc(state), name=f"{self.name}.respawn"
            )

    def _replacement_proc(
        self, state: _FunctionState
    ) -> Generator[Event, object, None]:
        replacement = _Instance(self.sim.now)
        state.instances.append(replacement)
        yield self.sim.timeout(self.config.cold_start_duration(state.spec))
        self._release_instance(state, replacement)

    # -- pre-warming (provisioned concurrency) ------------------------------

    def prewarm(self, function: str, count: int) -> Event:
        """Provision ``count`` always-warm sandboxes for ``function``.

        The returned process event fires once the sandboxes are
        initialised (one cold-start delay; platforms provision in
        parallel).  Pre-warmed sandboxes never expire and bill by the
        GB-second until :meth:`release_prewarm`.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        state = self._state(function)
        limit = state.spec.concurrency_limit or self.config.default_concurrency
        if len(state.instances) + count > limit:
            raise ValueError(
                f"{function}: pre-warming {count} would exceed the "
                f"concurrency limit of {limit}"
            )
        return self.sim.spawn(
            self._prewarm_proc(state, count), name=f"{self.name}.prewarm"
        )

    def _prewarm_proc(
        self, state: _FunctionState, count: int
    ) -> Generator[Event, object, int]:
        yield self.sim.timeout(self.config.cold_start_duration(state.spec))
        now = self.sim.now
        for _ in range(count):
            state.instances.append(_Instance(now, pinned=True))
        # Serve anything already queued with the fresh capacity.
        while state.queue:
            instance = state.idle_instance(now, self.config.keep_alive_s)
            if instance is None:
                break
            instance.busy = True
            state.queue.popleft().succeed(instance)
        return count

    def release_prewarm(self, function: str) -> None:
        """Stop provisioned billing; pinned sandboxes become ordinary warm
        instances subject to keep-alive expiry."""
        state = self._state(function)
        now = self.sim.now
        gb = state.spec.memory_mb / 1024.0
        for instance in state.instances:
            if instance.pinned:
                state.prewarm_gb_s_accrued += (now - instance.pinned_since) * gb
                instance.pinned = False
                if not instance.busy:
                    instance.idle_since = now

    def prewarmed_count(self, function: str) -> int:
        """Currently provisioned (pinned) sandboxes of a function."""
        return sum(1 for i in self._state(function).instances if i.pinned)

    def provisioned_cost(self, function: Optional[str] = None) -> float:
        """USD billed for pre-warmed capacity up to the current time."""
        states = (
            [self._state(function)]
            if function is not None
            else list(self._functions.values())
        )
        gb_seconds = sum(s.pinned_gb_seconds(self.sim.now) for s in states)
        return self.config.billing.provisioned_cost(gb_seconds)

    # -- accounting -----------------------------------------------------------

    def _record(self, inv: Invocation) -> None:
        self._invocations.append(inv)
        m = self.metrics
        m.counter(f"{self.name}.invocations").increment()
        if inv.cold_start:
            m.counter(f"{self.name}.cold_starts").increment()
        m.counter(f"{self.name}.cost_usd").increment(inv.cost)
        m.summary(f"{self.name}.latency_s").observe(inv.latency)
        m.summary(f"{self.name}.queue_delay_s").observe(inv.queue_delay)

    @property
    def invocations(self) -> List[Invocation]:
        """All completed invocation records, in completion order."""
        return list(self._invocations)

    @property
    def total_cost(self) -> float:
        """Accumulated bill across every function, in USD — invocation
        charges (including failed attempts) plus provisioned capacity."""
        invocations = sum(
            (s.cost for s in self._functions.values()), CostBreakdown.zero()
        )
        return invocations.total + self.provisioned_cost()

    def function_cost(self, name: str) -> CostBreakdown:
        """Accumulated bill of one function."""
        return self._state(name).cost

    def cold_start_fraction(self, function: Optional[str] = None) -> float:
        """Fraction of completed invocations that cold-started."""
        records = self._invocations
        if function is not None:
            records = [r for r in records if r.request.function == function]
        if not records:
            return 0.0
        return sum(1 for r in records if r.cold_start) / len(records)

    def warm_pool_size(self, function: str) -> int:
        """Instances currently alive (busy or within keep-alive)."""
        state = self._state(function)
        state.idle_instance(self.sim.now, self.config.keep_alive_s)  # purge
        return len(state.instances)


__all__ = [
    "InvocationFailedError",
    "PlatformConfig",
    "PlatformOutageError",
    "SandboxReclaimedError",
    "ServerlessPlatform",
    "ThrottledError",
]
