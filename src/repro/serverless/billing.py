"""Serverless billing model.

Mirrors the public AWS Lambda price structure (the de-facto reference for
the serverless-allocation literature): a per-request fee plus a GB-second
fee on the billed duration, rounded up to a billing granule (1 ms on
Lambda).  Absolute prices follow the 2022 us-east-1 list; only the ratios
matter for the reproduction's conclusions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of one (or an aggregate of) invocation(s), in USD."""

    request_cost: float
    compute_cost: float

    @property
    def total(self) -> float:
        """Request fee plus compute fee."""
        return self.request_cost + self.compute_cost

    def __add__(self, other: object) -> "CostBreakdown":
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            self.request_cost + other.request_cost,
            self.compute_cost + other.compute_cost,
        )

    def __radd__(self, other: object) -> "CostBreakdown":
        # ``sum(costs)`` starts from the int 0; accept exactly that zero so
        # breakdowns aggregate with the builtin, and nothing else.
        if other == 0:
            return self
        return NotImplemented

    @staticmethod
    def zero() -> "CostBreakdown":
        """The additive identity."""
        return CostBreakdown(0.0, 0.0)


@dataclass(frozen=True)
class BillingModel:
    """Pricing parameters for a serverless platform.

    Parameters
    ----------
    price_per_gb_second:
        USD per GB-second of billed compute (Lambda 2022: 1.6667e-5).
    price_per_request:
        USD per invocation (Lambda 2022: 2e-7).
    granularity_s:
        Billed duration is rounded **up** to a multiple of this.
    minimum_billed_s:
        Floor on the billed duration regardless of actual runtime.
    """

    price_per_gb_second: float = 1.6667e-5
    price_per_request: float = 2.0e-7
    granularity_s: float = 0.001
    minimum_billed_s: float = 0.001
    #: USD per GB-second of *provisioned* (pre-warmed) capacity, billed
    #: for wall-clock time whether invoked or not (Lambda provisioned
    #: concurrency, 2022: ~4.1667e-6).
    provisioned_price_per_gb_second: float = 4.1667e-6

    def __post_init__(self) -> None:
        if self.price_per_gb_second < 0 or self.price_per_request < 0:
            raise ValueError("prices must be >= 0")
        if self.provisioned_price_per_gb_second < 0:
            raise ValueError("provisioned price must be >= 0")
        if self.granularity_s <= 0:
            raise ValueError("billing granularity must be > 0")
        if self.minimum_billed_s < 0:
            raise ValueError("minimum billed duration must be >= 0")

    def billed_duration(self, duration_s: float) -> float:
        """Round a raw runtime up to the billing granule and minimum."""
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        granules = math.ceil(round(duration_s / self.granularity_s, 9))
        return max(granules * self.granularity_s, self.minimum_billed_s)

    def invocation_cost(self, duration_s: float, memory_mb: float) -> CostBreakdown:
        """Cost of one invocation that ran ``duration_s`` at ``memory_mb``."""
        if memory_mb <= 0:
            raise ValueError(f"memory must be > 0, got {memory_mb}")
        gb_seconds = self.billed_duration(duration_s) * (memory_mb / 1024.0)
        return CostBreakdown(
            request_cost=self.price_per_request,
            compute_cost=gb_seconds * self.price_per_gb_second,
        )

    def monthly_cost(
        self, invocations_per_month: float, duration_s: float, memory_mb: float
    ) -> float:
        """Aggregate monthly bill for a steady workload (planning helper)."""
        one = self.invocation_cost(duration_s, memory_mb)
        return one.total * invocations_per_month

    def provisioned_cost(self, gb_seconds: float) -> float:
        """Bill for keeping pre-warmed capacity provisioned."""
        if gb_seconds < 0:
            raise ValueError("gb_seconds must be >= 0")
        return gb_seconds * self.provisioned_price_per_gb_second


__all__ = ["BillingModel", "CostBreakdown"]
