"""Cloud-side workflow orchestration (Step-Functions class).

The controller drives cloud components one invocation at a time, which
is fine when the UE coordinates anyway.  A managed *workflow* instead
executes a whole DAG of functions server-side: the orchestrator charges
per state transition and adds a small scheduling latency, but needs no
coordinator between steps — the natural deployment for a fully-offloaded
partition (the abstract's "appropriate deployment of partitions").

Pricing follows AWS Step Functions standard workflows (2022:
$25 per million state transitions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.serverless.function import Invocation, InvocationRequest
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.retry import RetryPolicy, invoke_with_retries
from repro.sim import Event, Simulator
from repro.sim.rng import RngStream


@dataclass(frozen=True)
class WorkflowStep:
    """One state in a workflow: a function plus its upstream steps."""

    name: str
    function: str
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("step name must be non-empty")
        if self.name in self.depends_on:
            raise ValueError(f"step {self.name!r} depends on itself")


class WorkflowDefinition:
    """A validated DAG of steps."""

    def __init__(self, name: str, steps: Sequence[WorkflowStep]) -> None:
        if not steps:
            raise ValueError(f"workflow {name!r} has no steps")
        self.name = name
        self._steps: Dict[str, WorkflowStep] = {}
        graph = nx.DiGraph()
        for step in steps:
            if step.name in self._steps:
                raise ValueError(f"duplicate step {step.name!r}")
            self._steps[step.name] = step
            graph.add_node(step.name)
        for step in steps:
            for upstream in step.depends_on:
                if upstream not in self._steps:
                    raise KeyError(
                        f"step {step.name!r} depends on unknown {upstream!r}"
                    )
                graph.add_edge(upstream, step.name)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError(f"workflow {name!r} contains a cycle")
        self._order: List[str] = list(nx.topological_sort(graph))

    @property
    def step_names(self) -> List[str]:
        """Step names in topological order."""
        return list(self._order)

    def step(self, name: str) -> WorkflowStep:
        """Look up one step."""
        if name not in self._steps:
            raise KeyError(f"unknown step {name!r} in workflow {self.name!r}")
        return self._steps[name]

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def transition_count(self) -> int:
        """Billable state transitions of one execution.

        Step Functions bills every state entry plus the start/end
        bookkeeping — modelled as steps + 2.
        """
        return len(self._steps) + 2


@dataclass(frozen=True)
class WorkflowExecution:
    """Completion record of one workflow run."""

    workflow: str
    started_at: float
    finished_at: float
    invocations: Dict[str, Invocation]
    orchestration_cost_usd: float

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds of the whole execution."""
        return self.finished_at - self.started_at

    @property
    def compute_cost_usd(self) -> float:
        """Sum of the member invocations' bills."""
        return sum(i.cost for i in self.invocations.values())

    @property
    def total_cost_usd(self) -> float:
        """Compute plus orchestration."""
        return self.compute_cost_usd + self.orchestration_cost_usd


class WorkflowEngine:
    """Executes workflow definitions over a serverless platform.

    Parameters
    ----------
    price_per_transition:
        USD per state transition (Step Functions 2022: 2.5e-5).
    transition_latency_s:
        Orchestrator scheduling delay paid before each step starts.
    retry_policy:
        Applied per step; workflows retry failed states natively.
    """

    def __init__(
        self,
        sim: Simulator,
        platform: ServerlessPlatform,
        price_per_transition: float = 2.5e-5,
        transition_latency_s: float = 0.02,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[RngStream] = None,
    ) -> None:
        if price_per_transition < 0:
            raise ValueError("transition price must be >= 0")
        if transition_latency_s < 0:
            raise ValueError("transition latency must be >= 0")
        self.sim = sim
        self.platform = platform
        self.price_per_transition = price_per_transition
        self.transition_latency_s = transition_latency_s
        self.retry_policy = retry_policy or RetryPolicy()
        self.rng = rng
        self._executions: List[WorkflowExecution] = []

    def validate(self, definition: WorkflowDefinition) -> None:
        """Check every step's function is deployed (deploy-time gate)."""
        missing = [
            definition.step(name).function
            for name in definition.step_names
            if not self.platform.is_deployed(definition.step(name).function)
        ]
        if missing:
            raise KeyError(
                f"workflow {definition.name!r} references undeployed "
                f"functions: {sorted(set(missing))}"
            )

    def run(
        self,
        definition: WorkflowDefinition,
        work_by_step: Dict[str, float],
    ) -> Event:
        """Execute the workflow; the process event yields a
        :class:`WorkflowExecution`.

        ``work_by_step`` maps step name → gigacycles for this execution.
        """
        self.validate(definition)
        missing = set(definition.step_names) - set(work_by_step)
        if missing:
            raise ValueError(f"work missing for steps {sorted(missing)}")
        return self.sim.spawn(
            self._run_proc(definition, work_by_step),
            name=f"workflow.{definition.name}",
        )

    def _run_proc(
        self, definition: WorkflowDefinition, work_by_step: Dict[str, float]
    ) -> Generator[Event, object, WorkflowExecution]:
        started = self.sim.now
        step_done: Dict[str, Event] = {
            name: self.sim.event() for name in definition.step_names
        }
        invocations: Dict[str, Invocation] = {}

        def step_proc(step: WorkflowStep) -> Generator[Event, object, None]:
            if step.depends_on:
                yield self.sim.all_of([step_done[d] for d in step.depends_on])
            yield self.sim.timeout(self.transition_latency_s)
            outcome = yield invoke_with_retries(
                self.platform,
                InvocationRequest(
                    function=step.function,
                    work_gcycles=work_by_step[step.name],
                    tag=f"wf.{definition.name}.{step.name}",
                ),
                policy=self.retry_policy,
                rng=self.rng,
            )
            invocations[step.name] = outcome.invocation
            step_done[step.name].succeed(None)

        processes = [
            self.sim.spawn(step_proc(definition.step(name)), name=f"wf.{name}")
            for name in definition.step_names
        ]
        yield self.sim.all_of(processes)

        execution = WorkflowExecution(
            workflow=definition.name,
            started_at=started,
            finished_at=self.sim.now,
            invocations=invocations,
            orchestration_cost_usd=(
                definition.transition_count * self.price_per_transition
            ),
        )
        self._executions.append(execution)
        return execution

    @property
    def executions(self) -> List[WorkflowExecution]:
        """Completed executions in completion order."""
        return list(self._executions)

    @property
    def total_orchestration_cost(self) -> float:
        """USD billed for state transitions across all executions."""
        return sum(e.orchestration_cost_usd for e in self._executions)


def workflow_from_partition(
    app_name: str,
    cloud_components: Sequence[str],
    predecessors: Dict[str, Sequence[str]],
    function_name: "callable",
) -> WorkflowDefinition:
    """Build a workflow for the cloud side of a partition.

    ``predecessors`` maps each cloud component to its upstream *cloud*
    components (cut edges are the controller's business); ``function_name``
    maps component → deployed function name.
    """
    steps = [
        WorkflowStep(
            name=component,
            function=function_name(component),
            depends_on=tuple(
                p for p in predecessors.get(component, ()) if p in cloud_components
            ),
        )
        for component in cloud_components
    ]
    return WorkflowDefinition(f"{app_name}.cloudside", steps)


__all__ = [
    "WorkflowDefinition",
    "WorkflowEngine",
    "WorkflowExecution",
    "WorkflowStep",
    "workflow_from_partition",
]
