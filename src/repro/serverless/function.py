"""Function specifications and the compute-duration model.

The duration model is the load-bearing piece: CPU capacity scales linearly
with the memory size (one full vCPU at ``full_vcpu_mb``), and a function's
ability to exploit multiple vCPUs is governed by its ``parallel_fraction``
through Amdahl's law.  This reproduces the published Lambda behaviour that
motivates memory-size optimisation: durations fall steeply up to one vCPU,
then flatten for serial code while the GB-second price keeps climbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: Memory at which the platform grants exactly one full vCPU (Lambda: 1769 MB).
FULL_VCPU_MB = 1769.0

#: Reference core speed used to convert work (gigacycles) into seconds.
REFERENCE_CYCLES_PER_SECOND = 2.4e9

#: The platform never grants more vCPUs than this (Lambda: 6 at 10 GB).
MAX_VCPUS = 6.0

#: The discrete memory sizes a function may be configured with.
STANDARD_MEMORY_TIERS_MB: Tuple[float, ...] = (
    128, 256, 512, 768, 1024, 1536, 1769, 2048, 3072, 4096, 6144, 8192, 10240,
)


def vcpus_for_memory(memory_mb: float, full_vcpu_mb: float = FULL_VCPU_MB) -> float:
    """Fractional vCPU count granted at a memory size."""
    if memory_mb <= 0:
        raise ValueError(f"memory must be > 0, got {memory_mb}")
    return min(memory_mb / full_vcpu_mb, MAX_VCPUS)


def amdahl_speedup(cores: float, parallel_fraction: float) -> float:
    """Amdahl's-law speedup at ``cores`` for a given parallel fraction.

    ``cores`` may be fractional: below one core the whole program slows
    down proportionally (a 0.5-vCPU slot runs everything at half speed),
    so the speedup is simply ``cores``.
    """
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError(
            f"parallel_fraction must be in [0, 1], got {parallel_fraction}"
        )
    if cores <= 0:
        raise ValueError(f"cores must be > 0, got {cores}")
    if cores <= 1.0:
        return cores
    serial = 1.0 - parallel_fraction
    return 1.0 / (serial + parallel_fraction / cores)


def execution_time(
    work_gcycles: float,
    memory_mb: float,
    parallel_fraction: float = 0.0,
    full_vcpu_mb: float = FULL_VCPU_MB,
    cycles_per_second: float = REFERENCE_CYCLES_PER_SECOND,
) -> float:
    """Seconds to execute ``work_gcycles`` at a given memory size."""
    if work_gcycles < 0:
        raise ValueError(f"work must be >= 0, got {work_gcycles}")
    cores = vcpus_for_memory(memory_mb, full_vcpu_mb)
    speedup = amdahl_speedup(cores, parallel_fraction)
    baseline_s = work_gcycles * 1e9 / cycles_per_second
    return baseline_s / speedup


@dataclass(frozen=True)
class FunctionSpec:
    """Deployment-time configuration of one serverless function.

    Parameters
    ----------
    name:
        Unique function name on the platform.
    memory_mb:
        Configured memory size; also determines vCPU share.
    package_mb:
        Deployment-package size; drives cold-start duration.
    parallel_fraction:
        Amdahl parallel fraction of the function's code.
    concurrency_limit:
        Maximum simultaneously running instances (None = platform default).
    """

    name: str
    memory_mb: float = 1024.0
    package_mb: float = 50.0
    parallel_fraction: float = 0.0
    concurrency_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"memory must be > 0, got {self.memory_mb}")
        if self.package_mb < 0:
            raise ValueError(f"package size must be >= 0, got {self.package_mb}")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")
        if self.concurrency_limit is not None and self.concurrency_limit < 1:
            raise ValueError("concurrency_limit must be >= 1")

    def with_memory(self, memory_mb: float) -> "FunctionSpec":
        """A copy of this spec at a different memory size."""
        return replace(self, memory_mb=memory_mb)

    def duration_for(self, work_gcycles: float) -> float:
        """Execution time of ``work_gcycles`` under this configuration."""
        return execution_time(
            work_gcycles, self.memory_mb, self.parallel_fraction
        )

    def work_for_duration(self, seconds: float) -> float:
        """Gigacycles that a run of ``seconds`` corresponds to.

        The exact inverse of :meth:`duration_for` — the duration model
        is linear in work, so observed wall time recovers demand without
        an oracle.  This is how the observed-signal mode turns monitored
        execution durations back into demand observations (a straggler's
        inflated runtime honestly inflates the estimate).
        """
        if seconds < 0:
            raise ValueError(f"duration must be >= 0, got {seconds}")
        cores = vcpus_for_memory(self.memory_mb)
        speedup = amdahl_speedup(cores, self.parallel_fraction)
        return seconds * speedup * REFERENCE_CYCLES_PER_SECOND / 1e9


@dataclass(frozen=True)
class InvocationRequest:
    """One unit of work submitted to a function.

    ``trace_parent`` optionally carries the caller's telemetry span so
    the platform and retry layers parent their spans (queue wait, cold
    start, execution, backoff) under the requesting component; ``None``
    (the default, and always when tracing is disabled) records nothing.
    """

    function: str
    work_gcycles: float
    payload_bytes: float = 0.0
    tag: Optional[str] = None
    trace_parent: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.work_gcycles < 0:
            raise ValueError("work must be >= 0")
        if self.payload_bytes < 0:
            raise ValueError("payload must be >= 0")


@dataclass(frozen=True)
class Invocation:
    """The completed record of one invocation."""

    request: InvocationRequest
    submitted_at: float
    started_at: float
    finished_at: float
    cold_start: bool
    memory_mb: float
    billed_duration_s: float
    cost: float

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting for capacity (includes cold-start setup)."""
        return self.started_at - self.submitted_at

    @property
    def execution_time(self) -> float:
        """Seconds the function body actually ran."""
        return self.finished_at - self.started_at

    @property
    def latency(self) -> float:
        """End-to-end seconds from submission to completion."""
        return self.finished_at - self.submitted_at


__all__ = [
    "FULL_VCPU_MB",
    "FunctionSpec",
    "Invocation",
    "InvocationRequest",
    "MAX_VCPUS",
    "REFERENCE_CYCLES_PER_SECOND",
    "STANDARD_MEMORY_TIERS_MB",
    "amdahl_speedup",
    "execution_time",
    "vcpus_for_memory",
]
