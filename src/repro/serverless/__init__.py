"""Serverless (FaaS) platform simulator.

Models the platform mechanics the paper's allocation contribution targets:

* **memory tiers** with CPU proportional to memory (AWS-Lambda-style: one
  full vCPU at 1769 MB, fractional below, multiple above);
* **cold vs warm starts** with a keep-alive instance pool;
* **per-function concurrency limits** with FIFO queueing;
* **billing** per request plus GB-seconds with millisecond rounding.

The compute-duration model applies Amdahl's law to the vCPU count, which
produces the empirically observed "duration flattens, cost keeps rising"
shape that makes memory-size optimisation non-trivial.
"""

from repro.serverless.billing import BillingModel, CostBreakdown
from repro.serverless.function import (
    FunctionSpec,
    Invocation,
    InvocationRequest,
    execution_time,
    vcpus_for_memory,
)
from repro.serverless.platform import (
    InvocationFailedError,
    PlatformConfig,
    PlatformOutageError,
    SandboxReclaimedError,
    ServerlessPlatform,
    ThrottledError,
)
from repro.serverless.retry import (
    HedgedInvocation,
    RetriedInvocation,
    RetriesExhaustedError,
    RetryPolicy,
    invoke_hedged,
    invoke_with_retries,
)
from repro.serverless.workflow import (
    WorkflowDefinition,
    WorkflowEngine,
    WorkflowExecution,
    WorkflowStep,
)

__all__ = [
    "BillingModel",
    "CostBreakdown",
    "FunctionSpec",
    "HedgedInvocation",
    "Invocation",
    "InvocationFailedError",
    "InvocationRequest",
    "PlatformConfig",
    "PlatformOutageError",
    "RetriedInvocation",
    "RetriesExhaustedError",
    "RetryPolicy",
    "SandboxReclaimedError",
    "ServerlessPlatform",
    "ThrottledError",
    "WorkflowDefinition",
    "WorkflowEngine",
    "WorkflowExecution",
    "WorkflowStep",
    "execution_time",
    "invoke_hedged",
    "invoke_with_retries",
    "vcpus_for_memory",
]
