"""Retry policies for transient invocation failures.

Serverless platforms fail a small fraction of attempts (sandbox kills,
service hiccups); production offloading retries them with exponential
backoff.  :func:`invoke_with_retries` wraps
:meth:`~repro.serverless.platform.ServerlessPlatform.invoke` in a policy
and returns a :class:`RetriedInvocation` that accounts the *total* bill
including failed attempts — which matters, since failed attempts bill
for the time they ran.

Two degradation-aware variants serve the fault-injection layer:

* ``outage_aware=True`` makes the retry loop consult the platform's
  outage windows and push attempts past a known dead zone instead of
  burning the budget into it;
* :func:`invoke_hedged` races a duplicate invocation against a primary
  that has been running suspiciously long — the classic tail-latency
  hedge, here used against injected stragglers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.serverless.function import Invocation, InvocationRequest
from repro.serverless.platform import InvocationFailedError, ServerlessPlatform
from repro.sim import Event
from repro.sim.rng import RngStream
from repro.telemetry.tracer import PHASE_RETRY


class RetriesExhaustedError(RuntimeError):
    """All attempts of a retried invocation failed."""

    def __init__(self, function: str, attempts: int, wasted_usd: float) -> None:
        super().__init__(
            f"{function}: {attempts} attempts failed (${wasted_usd:.2e} billed)"
        )
        self.function = function
        self.attempts = attempts
        self.wasted_usd = wasted_usd


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with optional jitter.

    Attempt *k* (0-based) waits ``base_delay_s * multiplier**k`` before
    retrying, multiplied by a uniform jitter in ``[1-jitter, 1+jitter]``
    when an RNG is supplied.
    """

    max_attempts: int = 3
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_before_attempt(
        self, attempt: int, rng: Optional[RngStream] = None
    ) -> float:
        """Backoff before (0-based) ``attempt``; attempt 0 never waits."""
        if attempt <= 0:
            return 0.0
        delay = self.base_delay_s * self.multiplier ** (attempt - 1)
        if rng is not None and self.jitter > 0:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


@dataclass(frozen=True)
class RetriedInvocation:
    """Final outcome of a retried invocation."""

    invocation: Invocation
    attempts: int
    wasted_usd: float  # billed by failed attempts
    backoff_s: float  # total time spent waiting between attempts

    @property
    def total_cost(self) -> float:
        """Successful attempt's bill plus everything wasted on failures."""
        return self.invocation.cost + self.wasted_usd


def invoke_with_retries(
    platform: ServerlessPlatform,
    request: InvocationRequest,
    policy: Optional[RetryPolicy] = None,
    rng: Optional[RngStream] = None,
    outage_aware: bool = False,
) -> Event:
    """Invoke with retries; the process event yields a
    :class:`RetriedInvocation` or fails with :class:`RetriesExhaustedError`.

    With ``outage_aware=True`` every attempt (including the first) is
    delayed until a platform zone outage known to cover its start time has
    cleared — attempts are too precious to burn into a dead zone.
    """
    policy = policy if policy is not None else RetryPolicy()
    return platform.sim.spawn(
        _retry_proc(platform, request, policy, rng, outage_aware),
        name=f"{platform.name}.retry.{request.function}",
    )


def _retry_proc(
    platform: ServerlessPlatform,
    request: InvocationRequest,
    policy: RetryPolicy,
    rng: Optional[RngStream],
    outage_aware: bool = False,
) -> Generator[Event, object, RetriedInvocation]:
    wasted = 0.0
    backoff_total = 0.0
    last_error: Optional[InvocationFailedError] = None
    tracer = platform.sim.tracer
    trace_parent = request.trace_parent
    for attempt in range(policy.max_attempts):
        delay = policy.delay_before_attempt(attempt, rng)
        if outage_aware:
            target_t = platform.sim.now + delay
            clear = platform.outage_clear_time(at=target_t)
            if clear is not None and clear > target_t:
                delay = clear - platform.sim.now
                platform.metrics.counter(
                    f"{platform.name}.retry.outage_waits"
                ).increment()
        if delay > 0:
            backoff_total += delay
            backoff_span = tracer.start_span(
                "backoff",
                category=PHASE_RETRY,
                parent=trace_parent,
                attempt=attempt,
            )
            yield platform.sim.timeout(delay)
            tracer.end_span(backoff_span)
        try:
            invocation: Invocation = yield platform.invoke(request)
        except InvocationFailedError as error:
            wasted += error.billed_usd
            last_error = error
            cause = type(error).__name__
            tracer.instant(
                "attempt_failed",
                parent=trace_parent,
                attempt=attempt,
                cause=cause,
                wasted_usd=error.billed_usd,
            )
            if tracer.enabled:
                tracer.metrics.counter(
                    "attempts_failed_total",
                    function=request.function,
                    cause=cause,
                ).increment()
            continue
        return RetriedInvocation(
            invocation=invocation,
            attempts=attempt + 1,
            wasted_usd=wasted,
            backoff_s=backoff_total,
        )
    raise RetriesExhaustedError(
        request.function, policy.max_attempts, wasted
    ) from last_error


# -- hedging ---------------------------------------------------------------


@dataclass(frozen=True)
class HedgedInvocation:
    """Final outcome of a (possibly) hedged invocation.

    Field semantics match :class:`RetriedInvocation` for the *winning*
    lane; ``wasted_usd`` additionally includes whatever a losing lane had
    provably burned by the time the winner finished.  A losing lane still
    in flight is abandoned — its eventual bill lands on the platform
    ledger, not on this outcome (exactly like a real duplicate request
    you stop waiting for).
    """

    invocation: Invocation
    attempts: int
    wasted_usd: float
    backoff_s: float
    hedged: bool

    @property
    def total_cost(self) -> float:
        """Winning attempt's bill plus all accounted waste."""
        return self.invocation.cost + self.wasted_usd


def _guard(platform: ServerlessPlatform, event: Event) -> Event:
    """Wrap ``event`` in a process that never fails: it returns
    ``(True, value)`` on success and ``(False, error)`` on failure, so
    races over it can distinguish outcomes without AnyOf's all-must-fail
    semantics getting in the way."""

    def proc() -> Generator[Event, object, tuple]:
        try:
            value = yield event
        except BaseException as error:  # noqa: BLE001 - relayed, not hidden
            return (False, error)
        return (True, value)

    return platform.sim.spawn(proc(), name=f"{platform.name}.hedge.guard")


def invoke_hedged(
    platform: ServerlessPlatform,
    request: InvocationRequest,
    policy: Optional[RetryPolicy] = None,
    rng: Optional[RngStream] = None,
    hedge_after_s: Optional[float] = None,
    outage_aware: bool = False,
) -> Event:
    """Invoke with retries, hedging a duplicate after ``hedge_after_s``.

    The process event yields a :class:`HedgedInvocation` (the first lane
    to succeed wins; ``None`` hedge delay degenerates to plain retries)
    or fails with the last lane's error when every lane fails.
    """
    if hedge_after_s is not None and hedge_after_s <= 0:
        raise ValueError(f"hedge_after_s must be > 0, got {hedge_after_s}")
    return platform.sim.spawn(
        _hedged_proc(platform, request, policy, rng, hedge_after_s, outage_aware),
        name=f"{platform.name}.hedged.{request.function}",
    )


def _hedged_proc(
    platform: ServerlessPlatform,
    request: InvocationRequest,
    policy: Optional[RetryPolicy],
    rng: Optional[RngStream],
    hedge_after_s: Optional[float],
    outage_aware: bool,
) -> Generator[Event, object, HedgedInvocation]:
    sim = platform.sim

    def lane() -> Event:
        return invoke_with_retries(
            platform, request, policy=policy, rng=rng, outage_aware=outage_aware
        )

    if hedge_after_s is None:
        outcome: RetriedInvocation = yield lane()
        return HedgedInvocation(
            invocation=outcome.invocation,
            attempts=outcome.attempts,
            wasted_usd=outcome.wasted_usd,
            backoff_s=outcome.backoff_s,
            hedged=False,
        )

    primary = _guard(platform, lane())
    yield sim.any_of([primary, sim.timeout(hedge_after_s)])
    if primary.triggered:
        ok, payload = primary.value
        if ok:
            return HedgedInvocation(
                invocation=payload.invocation,
                attempts=payload.attempts,
                wasted_usd=payload.wasted_usd,
                backoff_s=payload.backoff_s,
                hedged=False,
            )
        raise payload

    platform.metrics.counter(f"{platform.name}.hedges").increment()
    sim.tracer.instant(
        "hedge_started",
        parent=request.trace_parent,
        function=request.function,
        after_s=hedge_after_s,
    )
    lanes = [primary, _guard(platform, lane())]
    while True:
        finished_ok = [g for g in lanes if g.triggered and g.value[0]]
        if finished_ok:
            winner: RetriedInvocation = finished_ok[0].value[1]
            lost = sum(
                g.value[1].wasted_usd
                for g in lanes
                if g.triggered
                and not g.value[0]
                and isinstance(g.value[1], RetriesExhaustedError)
            )
            return HedgedInvocation(
                invocation=winner.invocation,
                attempts=winner.attempts,
                wasted_usd=winner.wasted_usd + lost,
                backoff_s=winner.backoff_s,
                hedged=True,
            )
        pending = [g for g in lanes if not g.triggered]
        if not pending:
            # Every lane failed.  Raising just the last lane's error
            # would silently drop the other lane's wasted spend and
            # attempt count, so the caller's exactly-once accounting
            # (cost += error.wasted_usd) under-bills the episode.
            # Aggregate across lanes instead.
            errors = [g.value[1] for g in lanes]
            exhausted = [
                e for e in errors if isinstance(e, RetriesExhaustedError)
            ]
            if len(exhausted) < len(errors):
                # A non-retry failure (unexpected) propagates as-is.
                raise next(
                    e for e in errors
                    if not isinstance(e, RetriesExhaustedError)
                )
            raise RetriesExhaustedError(
                request.function,
                attempts=sum(e.attempts for e in exhausted),
                wasted_usd=sum(e.wasted_usd for e in exhausted),
            ) from exhausted[-1]
        yield sim.any_of(pending)


__all__ = [
    "HedgedInvocation",
    "RetriedInvocation",
    "RetriesExhaustedError",
    "RetryPolicy",
    "invoke_hedged",
    "invoke_with_retries",
]
