"""Retry policies for transient invocation failures.

Serverless platforms fail a small fraction of attempts (sandbox kills,
service hiccups); production offloading retries them with exponential
backoff.  :func:`invoke_with_retries` wraps
:meth:`~repro.serverless.platform.ServerlessPlatform.invoke` in a policy
and returns a :class:`RetriedInvocation` that accounts the *total* bill
including failed attempts — which matters, since failed attempts bill
for the time they ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.serverless.function import Invocation, InvocationRequest
from repro.serverless.platform import InvocationFailedError, ServerlessPlatform
from repro.sim import Event
from repro.sim.rng import RngStream


class RetriesExhaustedError(RuntimeError):
    """All attempts of a retried invocation failed."""

    def __init__(self, function: str, attempts: int, wasted_usd: float) -> None:
        super().__init__(
            f"{function}: {attempts} attempts failed (${wasted_usd:.2e} billed)"
        )
        self.function = function
        self.attempts = attempts
        self.wasted_usd = wasted_usd


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with optional jitter.

    Attempt *k* (0-based) waits ``base_delay_s * multiplier**k`` before
    retrying, multiplied by a uniform jitter in ``[1-jitter, 1+jitter]``
    when an RNG is supplied.
    """

    max_attempts: int = 3
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base delay must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_before_attempt(
        self, attempt: int, rng: Optional[RngStream] = None
    ) -> float:
        """Backoff before (0-based) ``attempt``; attempt 0 never waits."""
        if attempt <= 0:
            return 0.0
        delay = self.base_delay_s * self.multiplier ** (attempt - 1)
        if rng is not None and self.jitter > 0:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


@dataclass(frozen=True)
class RetriedInvocation:
    """Final outcome of a retried invocation."""

    invocation: Invocation
    attempts: int
    wasted_usd: float  # billed by failed attempts
    backoff_s: float  # total time spent waiting between attempts

    @property
    def total_cost(self) -> float:
        """Successful attempt's bill plus everything wasted on failures."""
        return self.invocation.cost + self.wasted_usd


def invoke_with_retries(
    platform: ServerlessPlatform,
    request: InvocationRequest,
    policy: Optional[RetryPolicy] = None,
    rng: Optional[RngStream] = None,
) -> Event:
    """Invoke with retries; the process event yields a
    :class:`RetriedInvocation` or fails with :class:`RetriesExhaustedError`."""
    policy = policy if policy is not None else RetryPolicy()
    return platform.sim.spawn(
        _retry_proc(platform, request, policy, rng),
        name=f"{platform.name}.retry.{request.function}",
    )


def _retry_proc(
    platform: ServerlessPlatform,
    request: InvocationRequest,
    policy: RetryPolicy,
    rng: Optional[RngStream],
) -> Generator[Event, object, RetriedInvocation]:
    wasted = 0.0
    backoff_total = 0.0
    last_error: Optional[InvocationFailedError] = None
    for attempt in range(policy.max_attempts):
        delay = policy.delay_before_attempt(attempt, rng)
        if delay > 0:
            backoff_total += delay
            yield platform.sim.timeout(delay)
        try:
            invocation: Invocation = yield platform.invoke(request)
        except InvocationFailedError as error:
            wasted += error.billed_usd
            last_error = error
            continue
        return RetriedInvocation(
            invocation=invocation,
            attempts=attempt + 1,
            wasted_usd=wasted,
            backoff_s=backoff_total,
        )
    raise RetriesExhaustedError(
        request.function, policy.max_attempts, wasted
    ) from last_error


__all__ = [
    "RetriedInvocation",
    "RetriesExhaustedError",
    "RetryPolicy",
    "invoke_with_retries",
]
