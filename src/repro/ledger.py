"""The run ledger: an append-only JSONL record of every invocation.

Every ``repro run`` / ``sweep`` / ``fleet`` invocation appends one line:
what ran (command + argv), the SHA-256 of its canonical-JSON config,
the git revision of the working tree, wall time, a few key metrics, and
the artifact paths it wrote.  The ledger is the queryable trajectory of
an experiment series — ``repro ledger show`` lists it, ``repro ledger
show --index N`` replays one entry's full config, and ``repro ledger
diff A B`` compares two entries' metrics with the same direction-aware
threshold logic as ``repro diff``.

Design constraints:

* **Append-only JSONL.**  One canonical-JSON object per line; a crashed
  write corrupts at most the final line, and :func:`read_ledger` skips
  unparsable lines rather than failing the whole history.
* **Config identity by hash.**  ``config_sha256`` is the SHA-256 of the
  canonical JSON of the config mapping — the same keying the sweep
  cache uses — so "did anything change?" is a string compare across
  entries, machines, and time.
* **No clock in the identity.**  ``recorded_at`` (UTC wall clock) and
  ``wall_s`` are provenance, not identity; everything byte-sensitive
  lives in the config hash and metrics.

The default path is ``.repro_ledger.jsonl`` in the working directory;
the ``REPRO_LEDGER`` environment variable overrides it, and setting it
to the empty string (or passing ``--no-ledger``) disables recording.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.sweep.spec import canonical_json

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA",
    "LedgerEntry",
    "append_entry",
    "config_sha256",
    "diff_entries",
    "git_revision",
    "make_entry",
    "read_ledger",
    "render_entries",
    "resolve_ledger_path",
]

#: Schema tag carried by every ledger line.
LEDGER_SCHEMA = "repro.ledger/1"

#: Default ledger file, relative to the working directory.
DEFAULT_LEDGER_PATH = ".repro_ledger.jsonl"

#: Environment variable overriding the ledger path ("" disables).
LEDGER_ENV = "REPRO_LEDGER"


def resolve_ledger_path(explicit: Optional[str] = None) -> Optional[Path]:
    """The ledger file to use, or ``None`` when recording is disabled.

    Precedence: explicit path argument > ``REPRO_LEDGER`` env var >
    default.  An empty string at either level disables recording.
    """
    if explicit is not None:
        return Path(explicit) if explicit else None
    env = os.environ.get(LEDGER_ENV)
    if env is not None:
        return Path(env) if env else None
    return Path(DEFAULT_LEDGER_PATH)


def config_sha256(config: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON of ``config``."""
    return hashlib.sha256(canonical_json(dict(config)).encode()).hexdigest()


def git_revision() -> Optional[str]:
    """The working tree's HEAD revision, or ``None`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded invocation."""

    command: str
    config: Dict[str, Any]
    config_sha256: str
    recorded_at: str
    wall_s: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    artifacts: List[str] = field(default_factory=list)
    argv: List[str] = field(default_factory=list)
    git_rev: Optional[str] = None
    status: str = "ok"
    #: Runtime self-metering of the invocation: ``{"counters": {...},
    #: "timings": {...}}`` from the run's :class:`repro.perf.RuntimeMeter`
    #: snapshot.  Kept separate from ``metrics`` (experiment outcomes) so
    #: direction-aware metric diffs never mix in machine-load noise.
    meter: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LEDGER_SCHEMA,
            "command": self.command,
            "config": self.config,
            "config_sha256": self.config_sha256,
            "recorded_at": self.recorded_at,
            "wall_s": self.wall_s,
            "metrics": self.metrics,
            "artifacts": self.artifacts,
            "argv": self.argv,
            "git_rev": self.git_rev,
            "status": self.status,
            "meter": self.meter,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "LedgerEntry":
        return LedgerEntry(
            command=str(data["command"]),
            config=dict(data.get("config", {})),
            config_sha256=str(data.get("config_sha256", "")),
            recorded_at=str(data.get("recorded_at", "")),
            wall_s=float(data.get("wall_s", 0.0)),
            metrics=dict(data.get("metrics", {})),
            artifacts=[str(a) for a in data.get("artifacts", ())],
            argv=[str(a) for a in data.get("argv", ())],
            git_rev=data.get("git_rev"),
            status=str(data.get("status", "ok")),
            # Legacy records (pre-meter) read back with an empty meter.
            meter=dict(data.get("meter", {})),
        )


def make_entry(
    command: str,
    config: Mapping[str, Any],
    wall_s: float,
    metrics: Optional[Mapping[str, Any]] = None,
    artifacts: Sequence[str] = (),
    argv: Sequence[str] = (),
    status: str = "ok",
    meter: Optional[Mapping[str, Any]] = None,
) -> LedgerEntry:
    """Build an entry, stamping config hash, git rev, and UTC time."""
    return LedgerEntry(
        command=command,
        config=dict(config),
        config_sha256=config_sha256(config),
        recorded_at=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        wall_s=round(float(wall_s), 3),
        metrics=dict(metrics or {}),
        artifacts=[str(a) for a in artifacts],
        argv=[str(a) for a in argv],
        git_rev=git_revision(),
        status=status,
        meter=dict(meter or {}),
    )


def append_entry(path: Path, entry: LedgerEntry) -> int:
    """Append one entry; returns its index in the ledger."""
    path.parent.mkdir(parents=True, exist_ok=True)
    index = 0
    if path.exists():
        with path.open("r") as handle:
            index = sum(1 for line in handle if line.strip())
    with path.open("a") as handle:
        handle.write(canonical_json(entry.to_dict()) + "\n")
    return index


def read_ledger(path: Path) -> List[LedgerEntry]:
    """Every parsable entry in file order (corrupt lines are skipped)."""
    if not path.exists():
        return []
    entries: List[LedgerEntry] = []
    with path.open("r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if data.get("schema") != LEDGER_SCHEMA:
                    continue
                entries.append(LedgerEntry.from_dict(data))
            except (ValueError, KeyError, TypeError):
                continue
    return entries


def render_entries(
    entries: Sequence[LedgerEntry],
    start_index: int = 0,
    indices: Optional[Sequence[int]] = None,
) -> str:
    """A compact fixed-order table of ledger entries for the terminal.

    ``indices`` carries the original ledger positions of a filtered
    subset; without it rows number contiguously from ``start_index``.
    """
    lines = [
        f"{'#':>4}  {'recorded_at':<20} {'command':<7} {'status':<6} "
        f"{'config':<12} {'git':<9} {'wall_s':>8}  metrics"
    ]
    for offset, entry in enumerate(entries):
        index = indices[offset] if indices is not None else (
            start_index + offset
        )
        brief = ", ".join(
            f"{key}={entry.metrics[key]}" for key in sorted(entry.metrics)[:4]
        )
        lines.append(
            f"{index:>4}  {entry.recorded_at:<20} "
            f"{entry.command:<7} {entry.status:<6} "
            f"{entry.config_sha256[:12]:<12} "
            f"{(entry.git_rev or '-'):<9} {entry.wall_s:>8.3f}  {brief}"
        )
    return "\n".join(lines) + "\n"


def diff_entries(a: LedgerEntry, b: LedgerEntry, threshold: float = 0.05):
    """Compare two entries' numeric metrics via the profile differ.

    Returns a :class:`~repro.monitor.diff.TraceDiff`; direction-aware
    regressions follow the same higher-is-better table ``repro diff``
    uses.  Raises ``ValueError`` when the entries ran different
    commands (their metrics would not be comparable).
    """
    from repro.monitor.diff import Profile, diff_profiles

    if a.command != b.command:
        raise ValueError(
            f"cannot diff a {a.command!r} run against a {b.command!r} run"
        )

    def numeric(entry: LedgerEntry) -> Dict[str, float]:
        return {
            key: float(value)
            for key, value in entry.metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    profile_a = Profile(
        kind="ledger", path=f"ledger:{a.config_sha256[:12]}",
        metrics=numeric(a),
    )
    profile_b = Profile(
        kind="ledger", path=f"ledger:{b.config_sha256[:12]}",
        metrics=numeric(b),
    )
    return diff_profiles(profile_a, profile_b, threshold=threshold)
