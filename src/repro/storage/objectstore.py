"""An S3-class object store on the simulation kernel.

Pricing follows the 2022 S3 standard-tier structure (only ratios matter):
storage by GB-month, small per-request fees, and an egress fee per GB
that dominates everything for chatty download patterns — the reason
well-partitioned applications keep heavy intermediates in the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.metrics import MetricRegistry
from repro.sim import Event, Simulator

SECONDS_PER_MONTH = 30 * 24 * 3600.0
GB = 1e9


class ObjectNotFoundError(KeyError):
    """Raised when getting or deleting a key that is not stored."""


@dataclass(frozen=True)
class StoragePricing:
    """Object-store price card (USD)."""

    price_per_gb_month: float = 0.023
    price_per_put: float = 5.0e-6
    price_per_get: float = 4.0e-7
    egress_price_per_gb: float = 0.09
    intra_cloud_price_per_gb: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "price_per_gb_month",
            "price_per_put",
            "price_per_get",
            "egress_price_per_gb",
            "intra_cloud_price_per_gb",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def storage_cost(self, gb_seconds: float) -> float:
        """Cost of holding data measured in GB-seconds."""
        if gb_seconds < 0:
            raise ValueError("gb_seconds must be >= 0")
        return gb_seconds / SECONDS_PER_MONTH * self.price_per_gb_month

    def transfer_cost(self, nbytes: float, external: bool) -> float:
        """Egress (external) or intra-cloud transfer cost for ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        rate = self.egress_price_per_gb if external else self.intra_cloud_price_per_gb
        return nbytes / GB * rate


@dataclass(frozen=True)
class StoredObject:
    """Metadata of one stored object."""

    key: str
    nbytes: float
    stored_at: float


class ObjectStore:
    """A keyed byte store with request latency and full cost accounting.

    Request latency models the service-side overhead only; moving the
    bytes over the access network is the caller's job (via
    :class:`~repro.network.link.NetworkPath`), keeping the two charges —
    time on the radio vs dollars at the provider — separate.
    """

    def __init__(
        self,
        sim: Simulator,
        pricing: Optional[StoragePricing] = None,
        request_latency_s: float = 0.015,
        name: str = "store",
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        if request_latency_s < 0:
            raise ValueError("request latency must be >= 0")
        self.sim = sim
        self.pricing = pricing if pricing is not None else StoragePricing()
        self.request_latency_s = request_latency_s
        self.name = name
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._objects: Dict[str, StoredObject] = {}
        self._request_cost = 0.0
        self._transfer_cost = 0.0
        self._storage_gb_s_accrued = 0.0  # from deleted/overwritten objects

    # -- operations -----------------------------------------------------------

    def put(self, key: str, nbytes: float) -> Event:
        """Store ``nbytes`` under ``key`` (overwrites); process event
        yields the :class:`StoredObject`."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.sim.spawn(self._put_proc(key, nbytes), name=f"{self.name}.put")

    def _put_proc(self, key: str, nbytes: float) -> Generator[Event, object, StoredObject]:
        yield self.sim.timeout(self.request_latency_s)
        self._retire(key)
        record = StoredObject(key=key, nbytes=nbytes, stored_at=self.sim.now)
        self._objects[key] = record
        self._request_cost += self.pricing.price_per_put
        self.metrics.counter(f"{self.name}.puts").increment()
        self.metrics.counter(f"{self.name}.bytes_in").increment(nbytes)
        return record

    def get(self, key: str, external: bool = False) -> Event:
        """Read ``key``; ``external=True`` charges egress (towards the
        UE/internet), ``False`` charges the intra-cloud rate.  Process
        event yields the :class:`StoredObject`."""
        return self.sim.spawn(
            self._get_proc(key, external), name=f"{self.name}.get"
        )

    def _get_proc(self, key: str, external: bool) -> Generator[Event, object, StoredObject]:
        yield self.sim.timeout(self.request_latency_s)
        if key not in self._objects:
            raise ObjectNotFoundError(key)
        record = self._objects[key]
        self._request_cost += self.pricing.price_per_get
        self._transfer_cost += self.pricing.transfer_cost(record.nbytes, external)
        self.metrics.counter(f"{self.name}.gets").increment()
        if external:
            self.metrics.counter(f"{self.name}.egress_bytes").increment(record.nbytes)
        return record

    def delete(self, key: str) -> None:
        """Remove ``key`` immediately (metadata operation, free)."""
        if key not in self._objects:
            raise ObjectNotFoundError(key)
        self._retire(key)

    def _retire(self, key: str) -> None:
        previous = self._objects.pop(key, None)
        if previous is not None:
            held = self.sim.now - previous.stored_at
            self._storage_gb_s_accrued += previous.nbytes / GB * held

    # -- inspection -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def size_of(self, key: str) -> float:
        """Bytes stored under ``key``."""
        if key not in self._objects:
            raise ObjectNotFoundError(key)
        return self._objects[key].nbytes

    @property
    def stored_bytes(self) -> float:
        """Total bytes currently held."""
        return sum(o.nbytes for o in self._objects.values())

    def keys(self) -> List[str]:
        """Sorted keys currently stored."""
        return sorted(self._objects)

    # -- billing ----------------------------------------------------------

    def storage_gb_seconds(self, until: Optional[float] = None) -> float:
        """GB-seconds held, retired objects plus live ones."""
        now = self.sim.now if until is None else until
        live = sum(
            o.nbytes / GB * max(now - o.stored_at, 0.0)
            for o in self._objects.values()
        )
        return self._storage_gb_s_accrued + live

    def total_cost(self, until: Optional[float] = None) -> float:
        """Requests + transfers + storage-time, in USD."""
        return (
            self._request_cost
            + self._transfer_cost
            + self.pricing.storage_cost(self.storage_gb_seconds(until))
        )


__all__ = ["ObjectNotFoundError", "ObjectStore", "StoragePricing", "StoredObject"]
