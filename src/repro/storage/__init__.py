"""Cloud object storage: the data plane between offloaded components.

Real offloading frameworks stage intermediate data in an object store
(S3-class): uploads land there, cloud functions read/write it for free
or cheaply within the region, and *egress* back to the device is the
expensive direction.  This package models exactly that price structure
plus request latency, so partitioning decisions can account for data
gravity.
"""

from repro.storage.objectstore import (
    ObjectNotFoundError,
    ObjectStore,
    StoragePricing,
    StoredObject,
)

__all__ = [
    "ObjectNotFoundError",
    "ObjectStore",
    "StoragePricing",
    "StoredObject",
]
