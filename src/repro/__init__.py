"""repro — serverless computational offloading for non-time-critical
applications.

A complete, simulation-backed implementation of the framework proposed in
R. Patsch, *Computational Offloading for Non-Time-Critical Applications*
(ICDCS 2022): demand determination, serverless resource allocation, code
partitioning, delay-tolerant scheduling, and CI/CD-integrated deployment,
together with every substrate needed to evaluate them (discrete-event
kernel, network/device/serverless/edge simulators, workload generators).

Quickstart::

    from repro import Environment, OffloadController, photo_backup_app, Job

    env = Environment.build(seed=42, connectivity="4g")
    controller = OffloadController(env, photo_backup_app())
    controller.profile_offline()
    controller.plan(input_mb=4.0)
    report = controller.run_workload(
        [Job(controller.app, input_mb=4.0, deadline=3600.0)]
    )
    print(report.mean_response_s, report.total_cloud_cost_usd)
"""

from repro.apps import (
    AppGraph,
    Component,
    DataFlow,
    Job,
    JobResult,
    ml_training_app,
    nightly_analytics_app,
    photo_backup_app,
)
from repro.core import (
    ControllerReport,
    CostWindowScheduler,
    DeadlineBatcher,
    DemandModel,
    EagerScheduler,
    Environment,
    MemoryAllocator,
    MinCutPartitioner,
    ObjectiveWeights,
    OffloadController,
    OffloadPipeline,
    Partition,
    PartitionContext,
)
from repro.faults import (
    DegradationPolicy,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultWindow,
    inject_faults,
)
from repro.serverless import FunctionSpec, ServerlessPlatform
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AppGraph",
    "Component",
    "ControllerReport",
    "CostWindowScheduler",
    "DataFlow",
    "DeadlineBatcher",
    "DegradationPolicy",
    "DemandModel",
    "EagerScheduler",
    "Environment",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultWindow",
    "FunctionSpec",
    "Job",
    "JobResult",
    "MemoryAllocator",
    "MinCutPartitioner",
    "ObjectiveWeights",
    "OffloadController",
    "OffloadPipeline",
    "Partition",
    "PartitionContext",
    "ServerlessPlatform",
    "Simulator",
    "__version__",
    "inject_faults",
    "ml_training_app",
    "nightly_analytics_app",
    "photo_backup_app",
]
