"""Closed-loop remediation: SLO alerts drive controller actions.

:class:`RemediationEngine` subscribes to a live
:class:`~repro.monitor.slo.SLOEngine` (see
:meth:`~repro.monitor.slo.SLOEngine.subscribe`) and maps every newly
fired alert through the declarative policy table
(:mod:`repro.remediate.policy`) to one or more controller actions,
applied by a :class:`ControllerActuator`.  A forecast pump on the same
simulated cadence polls :class:`~repro.remediate.forecast.LinkForecaster`
verdicts, so a *degrading trend* triggers proactive re-planning before
any burn-rate rule fires.

Every applied action is appended to an action log that is canonical by
the same construction as the alert log: alert-driven actions inherit the
engine's (SLO name, rule name) evaluation order within an instant,
forecast-driven actions follow a fixed forecaster order, and floats
render via ``repr`` — so two same-seed runs, at any shard or sweep
worker count, emit byte-identical action logs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.monitor.fleet import (
    FLEET_RULES,
    default_fleet_rule_overrides,
    live_fleet_slos,
)
from repro.monitor.monitor import Monitor, attach_monitor
from repro.monitor.slo import Alert, SLOEngine
from repro.remediate.forecast import Forecast, LinkForecaster
from repro.remediate.policy import (
    ACTION_ESCALATE_HEDGING,
    ACTION_FALLBACK_LOCAL,
    ACTION_REALLOCATE_MEMORY,
    ACTION_REPLAN_RATE,
    ACTION_SHIFT_TRAFFIC,
    DEFAULT_POLICY,
    PolicyRule,
)
from repro.serverless.function import STANDARD_MEMORY_TIERS_MB

__all__ = [
    "Action",
    "ControllerActuator",
    "RemediationEngine",
    "RemediationPlane",
    "attach_remediation",
]


@dataclass(frozen=True)
class Action:
    """One applied remediation action (a row of the action log)."""

    at: float
    kind: str
    rule: str
    slo: str
    entity: str
    reason: str  # "alert" | "cleared" | "forecast"
    detail: str

    def line(self) -> str:
        """The canonical log line (same conventions as the alert log)."""
        return (
            f"t={self.at!r} ACTION kind={self.kind} rule={self.rule} "
            f"slo={self.slo} entity={self.entity} reason={self.reason} "
            f"detail=[{self.detail}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "kind": self.kind,
            "rule": self.rule,
            "slo": self.slo,
            "entity": self.entity,
            "reason": self.reason,
            "detail": self.detail,
        }


class ControllerActuator:
    """Applies remediation actions to one or more offload controllers.

    The controller list is fixed at construction and iterated in order,
    so multi-controller fleets (one actuator per coupling group) stay
    deterministic.  Every ``apply`` returns a canonical detail string
    when at least one controller actually changed, or ``None`` for a
    no-op — the engine skips logging no-ops, so a saturated knob does
    not spam the action log.
    """

    def __init__(
        self,
        controllers: Sequence[Any],
        hedge_floor_s: float = 15.0,
        hedge_factor: float = 0.5,
        hedge_start_s: float = 60.0,
        hold_local_s: float = 300.0,
        min_fallback_fraction: float = 0.1,
        memory_tiers_mb: Sequence[float] = STANDARD_MEMORY_TIERS_MB,
    ) -> None:
        if not controllers:
            raise ValueError("actuator needs at least one controller")
        self.controllers = list(controllers)
        self.hedge_floor_s = hedge_floor_s
        self.hedge_factor = hedge_factor
        self.hedge_start_s = hedge_start_s
        self.hold_local_s = hold_local_s
        self.min_fallback_fraction = min_fallback_fraction
        self.memory_tiers_mb = tuple(sorted(memory_tiers_mb))

    # -- actions -----------------------------------------------------------

    def apply(
        self, kind: str, now: float, forecast: Optional[Forecast] = None
    ) -> Optional[str]:
        """Apply action ``kind``; detail string on change, None on no-op."""
        if kind == ACTION_SHIFT_TRAFFIC:
            return self._shift_traffic(now)
        if kind == ACTION_ESCALATE_HEDGING:
            return self._escalate_hedging()
        if kind == ACTION_FALLBACK_LOCAL:
            return self._tighten_fallback()
        if kind == ACTION_REALLOCATE_MEMORY:
            return self._reallocate_memory()
        if kind == ACTION_REPLAN_RATE:
            assert forecast is not None
            return self._replan_rate(forecast)
        raise ValueError(f"unknown action kind {kind!r}")

    def _shift_traffic(self, now: float) -> Optional[str]:
        until = now + self.hold_local_s
        changed = False
        for controller in self.controllers:
            changed = controller.hold_local(until) or changed
        return f"hold_local_until={until!r}" if changed else None

    def _escalate_hedging(self) -> Optional[str]:
        applied: Optional[float] = None
        for controller in self.controllers:
            policy = controller.degradation
            if policy is None:
                continue
            current = policy.hedge_after_s
            new = (
                self.hedge_start_s if current is None
                else max(self.hedge_floor_s, current * self.hedge_factor)
            )
            if current is not None and new >= current:
                continue
            controller.degradation = dataclasses.replace(
                policy, hedge_after_s=new
            )
            applied = new if applied is None else applied
        return None if applied is None else f"hedge_after_s={applied!r}"

    def _tighten_fallback(self) -> Optional[str]:
        applied: Optional[float] = None
        for controller in self.controllers:
            policy = controller.degradation
            if policy is None:
                continue
            fraction = policy.fallback_slack_fraction
            if policy.fallback_local:
                new = max(self.min_fallback_fraction, fraction * 0.5)
                if new >= fraction:
                    continue
            else:
                new = fraction
            controller.degradation = dataclasses.replace(
                policy, fallback_local=True, fallback_slack_fraction=new
            )
            applied = new if applied is None else applied
        return (
            None if applied is None
            else f"fallback_slack_fraction={applied!r}"
        )

    def _reallocate_memory(self) -> Optional[str]:
        applied: Optional[float] = None
        for controller in self.controllers:
            current = max(
                controller.memory_floor_mb,
                max(
                    (d.memory_mb for d in controller.allocation.values()),
                    default=0.0,
                ),
            )
            above = [t for t in self.memory_tiers_mb if t > current]
            if not above:
                continue
            controller.memory_floor_mb = above[0]
            controller.plan(controller.planned_input_mb)
            applied = above[0] if applied is None else applied
        return None if applied is None else f"memory_floor_mb={applied!r}"

    def _replan_rate(self, forecast: Forecast) -> Optional[str]:
        changed = False
        for controller in self.controllers:
            if controller.plan_rate_overrides.get(forecast.link) != (
                forecast.forecast_bps
            ):
                controller.plan_rate_overrides[forecast.link] = (
                    forecast.forecast_bps
                )
                controller.plan(controller.planned_input_mb)
                changed = True
        return forecast.detail() if changed else None

    def clear_rate_override(self, link: str) -> Optional[str]:
        """Drop a pinned planning rate once the link's alert clears."""
        changed = False
        for controller in self.controllers:
            if link in controller.plan_rate_overrides:
                del controller.plan_rate_overrides[link]
                controller.plan(controller.planned_input_mb)
                changed = True
        return f"link={link}" if changed else None


class RemediationEngine:
    """Maps SLO alerts (and forecasts) to controller actions, with a log.

    Subscribes itself to ``engine`` at construction.  Cooldowns are per
    (policy rule, alert entity): within ``rule.cooldown_s`` of a prior
    application, that rule stays quiet for that entity even if the alert
    re-fires.  Forecast polling shares the cooldown machinery under a
    synthetic rule name per forecaster.
    """

    def __init__(
        self,
        engine: SLOEngine,
        actuator: ControllerActuator,
        policy: Sequence[PolicyRule] = DEFAULT_POLICY,
        forecasters: Sequence[LinkForecaster] = (),
    ) -> None:
        names = [rule.name for rule in policy]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate policy rule names: {sorted(names)}")
        self.engine = engine
        self.actuator = actuator
        self.policy = tuple(policy)
        self.forecasters = tuple(forecasters)
        self.actions: List[Action] = []
        self.log: List[str] = []
        self._last_applied: Dict[Tuple[str, str], float] = {}
        engine.subscribe(self)

    # -- SLOEngine listener protocol ---------------------------------------

    def on_alert_fired(self, alert: Alert, now: float) -> None:
        for rule in self.policy:
            if not rule.matches(alert.slo, alert.severity):
                continue
            key = (rule.name, alert.entity)
            last = self._last_applied.get(key)
            if last is not None and now - last < rule.cooldown_s:
                continue
            detail = self.actuator.apply(rule.action, now)
            if detail is None:
                continue
            self._last_applied[key] = now
            self._record(Action(
                at=now, kind=rule.action, rule=rule.name, slo=alert.slo,
                entity=alert.entity, reason="alert", detail=detail,
            ))

    def on_alert_cleared(self, alert: Alert, now: float) -> None:
        if not alert.entity.startswith("link/"):
            return
        link = alert.entity.split("/", 1)[1]
        detail = self.actuator.clear_rate_override(link)
        if detail is None:
            return
        self._record(Action(
            at=now, kind=ACTION_REPLAN_RATE, rule="-", slo=alert.slo,
            entity=alert.entity, reason="cleared", detail=detail,
        ))

    # -- forecast pump -----------------------------------------------------

    def poll(self, now: float) -> None:
        """Assess every forecaster at ``now`` and act on degrading trends."""
        for forecaster in self.forecasters:
            key = (f"forecast:{forecaster.name}", f"link/{forecaster.link}")
            last = self._last_applied.get(key)
            if last is not None and now - last < forecaster.cooldown_s:
                continue
            verdict = forecaster.assess(now)
            if verdict is None:
                continue
            detail = self.actuator.apply(
                ACTION_REPLAN_RATE, now, forecast=verdict
            )
            if detail is None:
                continue
            self._last_applied[key] = now
            self._record(Action(
                at=now, kind=ACTION_REPLAN_RATE, rule=key[0],
                slo="-", entity=key[1], reason="forecast", detail=detail,
            ))

    def attach(self, sim: Any, interval_s: Optional[float] = None) -> None:
        """Spawn the forecast pump on ``sim``'s clock.

        Defaults to the SLO engine's evaluation cadence.  The pump is
        spawned *after* the SLO engine's (construction order), so at a
        shared instant alerts are handled before forecasts — fixed, and
        therefore deterministic.
        """
        interval = interval_s or self.engine.eval_interval_s

        def _pump():
            while True:
                yield sim.timeout(interval)
                self.poll(sim.now)

        sim.spawn(_pump())

    # -- reading -----------------------------------------------------------

    def _record(self, action: Action) -> None:
        self.actions.append(action)
        self.log.append(action.line())

    def action_log(self) -> str:
        """Canonical action log text (newline-terminated when non-empty)."""
        return "\n".join(self.log) + ("\n" if self.log else "")

    def counts(self) -> Dict[str, int]:
        """Actions applied per kind, key-sorted (for metrics/ledger)."""
        out: Dict[str, int] = {}
        for action in self.actions:
            out[action.kind] = out.get(action.kind, 0) + 1
        return dict(sorted(out.items()))


@dataclass
class RemediationPlane:
    """Monitoring plus remediation, attached to one environment."""

    monitor: Monitor
    engine: SLOEngine
    remediation: RemediationEngine


def attach_remediation(
    env: Any,
    controllers: Sequence[Any],
    zone: str = "faas",
    eval_interval_s: float = 30.0,
    policy: Sequence[PolicyRule] = DEFAULT_POLICY,
    monitor: Optional[Monitor] = None,
) -> RemediationPlane:
    """Wire monitor → SLO engine → remediation onto one environment.

    The environment must already carry a recording tracer.  SLOs use the
    fleet vocabulary (``availability:<zone>``, ``uplink-stall``, …) with
    the fleet rule set, so single-run and fleet policies match the same
    table.  A goodput forecaster on the uplink feeds proactive
    re-planning.
    """
    monitor = attach_monitor(env, monitor)
    slos = live_fleet_slos(zone)
    engine = SLOEngine(
        monitor,
        slos,
        rules=FLEET_RULES,
        eval_interval_s=eval_interval_s,
        rule_overrides=default_fleet_rule_overrides(slos),
    )
    engine.attach(env.sim)
    remediation = RemediationEngine(
        engine,
        ControllerActuator(controllers),
        policy=policy,
        forecasters=(LinkForecaster(monitor),),
    )
    remediation.attach(env.sim)
    return RemediationPlane(
        monitor=monitor, engine=engine, remediation=remediation
    )
