"""Short-horizon link-goodput forecasting for proactive re-planning.

Burn-rate rules are *reactive*: they need a short and a long window of
bad events before they page, so the controller only hears about a
degrading uplink after jobs have already burned spend into it.  A
degradation *trend*, by contrast, is visible earlier — goodput falls
bucket over bucket before transfers start stalling outright.

:func:`holt_linear` fits the classic double-exponential (Holt linear)
smoother to the per-bucket goodput points a
:class:`~repro.monitor.monitor.Monitor` exposes via
``link_goodput_points``: a smoothed *level* plus a smoothed *trend*,
extrapolated ``h`` steps ahead.  With ``beta=0`` it degenerates to a
plain EWMA (level only, no trend).  Everything here is pure float
arithmetic over already-deterministic bucket data, so two same-seed runs
forecast byte-identically.

:class:`LinkForecaster` wraps the smoother into a verdict the
:class:`~repro.remediate.engine.RemediationEngine` polls on its
evaluation cadence: *will this link's goodput fall below a fraction of
its recent best within the horizon?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["Forecast", "LinkForecaster", "ewma", "holt_linear"]


def ewma(values: Sequence[float], alpha: float = 0.5) -> Optional[float]:
    """Exponentially weighted moving average; ``None`` on empty input."""
    if not values:
        return None
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    level = values[0]
    for value in values[1:]:
        level = alpha * value + (1.0 - alpha) * level
    return level


def holt_linear(
    values: Sequence[float], alpha: float = 0.5, beta: float = 0.3
) -> Optional[Tuple[float, float]]:
    """Holt's linear method: smoothed ``(level, trend)`` after ``values``.

    Needs at least two points to seed the trend; returns ``None``
    otherwise.  ``beta=0`` freezes the trend at its seed — with a seed
    of zero that is exactly an EWMA.
    """
    if len(values) < 2:
        return None
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    level = values[0]
    trend = values[1] - values[0]
    for value in values[1:]:
        prev_level = level
        level = alpha * value + (1.0 - alpha) * (level + trend)
        trend = beta * (level - prev_level) + (1.0 - beta) * trend
    return level, trend


def forecast_ahead(
    values: Sequence[float], steps: float, alpha: float = 0.5,
    beta: float = 0.3,
) -> Optional[float]:
    """Holt linear forecast ``steps`` buckets ahead, floored at zero."""
    fit = holt_linear(values, alpha=alpha, beta=beta)
    if fit is None:
        return None
    level, trend = fit
    return max(0.0, level + steps * trend)


@dataclass(frozen=True)
class Forecast:
    """One degradation verdict: the link is trending below its baseline."""

    link: str
    at: float
    horizon_s: float
    observed_bps: float  # latest bucket's goodput
    forecast_bps: float  # Holt extrapolation at the horizon
    baseline_bps: float  # best bucket goodput in the window

    def detail(self) -> str:
        """Canonical key=value rendering for the action log."""
        return (
            f"link={self.link} forecast_bps={self.forecast_bps!r} "
            f"baseline_bps={self.baseline_bps!r} horizon_s={self.horizon_s!r}"
        )


class LinkForecaster:
    """Polls one link's goodput buckets and flags a degrading trend.

    A verdict is returned when the Holt forecast ``horizon_s`` ahead
    falls below ``degraded_fraction`` of the best bucket goodput seen in
    the window — i.e. the link is *predicted* to lose most of its recent
    capacity, even if no transfer has stalled yet.
    """

    def __init__(
        self,
        monitor: "object",
        link: str = "uplink",
        window_s: float = 300.0,
        horizon_s: float = 60.0,
        degraded_fraction: float = 0.5,
        min_points: int = 3,
        cooldown_s: float = 240.0,
        alpha: float = 0.5,
        beta: float = 0.3,
    ) -> None:
        if not 0.0 < degraded_fraction < 1.0:
            raise ValueError(
                f"degraded_fraction must be in (0, 1), got {degraded_fraction}"
            )
        if min_points < 2:
            raise ValueError(f"min_points must be >= 2, got {min_points}")
        self.monitor = monitor
        self.link = link
        self.window_s = window_s
        self.horizon_s = horizon_s
        self.degraded_fraction = degraded_fraction
        self.min_points = min_points
        self.cooldown_s = cooldown_s
        self.alpha = alpha
        self.beta = beta

    @property
    def name(self) -> str:
        return f"{self.link}-goodput"

    def assess(self, now: float) -> Optional[Forecast]:
        """The degradation verdict at sim time ``now``, or ``None``."""
        points = self.monitor.link_goodput_points(  # type: ignore[attr-defined]
            self.link, now, self.window_s
        )
        if len(points) < self.min_points:
            return None
        values: List[float] = [v for _, v in points]
        bucket_s = float(getattr(self.monitor, "bucket_s", 10.0))
        steps = self.horizon_s / bucket_s
        predicted = forecast_ahead(
            values, steps, alpha=self.alpha, beta=self.beta
        )
        if predicted is None:
            return None
        baseline = max(values)
        if baseline <= 0.0 or predicted >= self.degraded_fraction * baseline:
            return None
        return Forecast(
            link=self.link,
            at=now,
            horizon_s=self.horizon_s,
            observed_bps=values[-1],
            forecast_bps=predicted,
            baseline_bps=baseline,
        )
