"""Closed-loop remediation: SLO alerts and forecasts drive the controller.

The monitor plane detects burn; this package *acts* on it.  A
:class:`~repro.remediate.engine.RemediationEngine` subscribes to a live
:class:`~repro.monitor.slo.SLOEngine`, maps alerts through the
declarative policy table in :mod:`repro.remediate.policy` to controller
actions (hedging escalation, memory re-allocation, traffic shifting,
fallback-to-local), and polls the short-horizon goodput forecasters in
:mod:`repro.remediate.forecast` for proactive re-planning — all logged
into a byte-deterministic action log mirroring the alert log.
"""

from repro.remediate.engine import (
    Action,
    ControllerActuator,
    RemediationEngine,
    RemediationPlane,
    attach_remediation,
)
from repro.remediate.forecast import (
    Forecast,
    LinkForecaster,
    ewma,
    holt_linear,
)
from repro.remediate.policy import (
    ACTION_ESCALATE_HEDGING,
    ACTION_FALLBACK_LOCAL,
    ACTION_REALLOCATE_MEMORY,
    ACTION_REPLAN_RATE,
    ACTION_SHIFT_TRAFFIC,
    DEFAULT_POLICY,
    PolicyRule,
)

__all__ = [
    "ACTION_ESCALATE_HEDGING",
    "ACTION_FALLBACK_LOCAL",
    "ACTION_REALLOCATE_MEMORY",
    "ACTION_REPLAN_RATE",
    "ACTION_SHIFT_TRAFFIC",
    "Action",
    "ControllerActuator",
    "DEFAULT_POLICY",
    "Forecast",
    "LinkForecaster",
    "PolicyRule",
    "RemediationEngine",
    "RemediationPlane",
    "attach_remediation",
    "ewma",
    "holt_linear",
]
