"""The declarative alert→action policy table.

Remediation is a *mapping*, not a program: each :class:`PolicyRule`
matches alerts by SLO-name glob and severity and names one controller
action.  Rules are evaluated in table order against every newly fired
alert; a per-(rule, entity) cooldown stops a still-burning alert's
re-fires (or sibling rules on the same entity) from hammering the same
knob every evaluation tick.

The action vocabulary mirrors the degradation responses the controller
already has, plus the two planning knobs remediation adds:

=====================  ====================================================
action                 effect on the controller(s)
=====================  ====================================================
``escalate-hedging``   tighten ``hedge_after_s`` (duplicate stragglers
                       sooner)
``fallback-local``     enable / tighten fallback-to-local budgets
``shift-traffic``      route upcoming jobs fully local for a hold window
``reallocate-memory``  floor function memory at the next tier and replan
``replan-rate``        pin planning link rates to a forecast and replan
                       (the proactive action; also used to *drop* the pin
                       when the trend recovers)
=====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Tuple

__all__ = [
    "ACTION_ESCALATE_HEDGING",
    "ACTION_FALLBACK_LOCAL",
    "ACTION_REALLOCATE_MEMORY",
    "ACTION_REPLAN_RATE",
    "ACTION_SHIFT_TRAFFIC",
    "DEFAULT_POLICY",
    "PolicyRule",
]

ACTION_ESCALATE_HEDGING = "escalate-hedging"
ACTION_FALLBACK_LOCAL = "fallback-local"
ACTION_SHIFT_TRAFFIC = "shift-traffic"
ACTION_REALLOCATE_MEMORY = "reallocate-memory"
ACTION_REPLAN_RATE = "replan-rate"

_ACTIONS = frozenset({
    ACTION_ESCALATE_HEDGING,
    ACTION_FALLBACK_LOCAL,
    ACTION_SHIFT_TRAFFIC,
    ACTION_REALLOCATE_MEMORY,
    ACTION_REPLAN_RATE,
})


@dataclass(frozen=True)
class PolicyRule:
    """One row of the policy table.

    ``match_slo`` is an ``fnmatch``-style glob over the SLO name (the
    stable vocabulary: ``availability*``, ``*-stall``, ``cold-start*``,
    ``cost*``); ``match_severity`` is an exact severity or ``"*"``.
    ``cooldown_s`` is the minimum sim-time gap between two applications
    of *this rule to the same entity*.
    """

    name: str
    action: str
    match_slo: str = "*"
    match_severity: str = "*"
    cooldown_s: float = 300.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"rule {self.name!r}: unknown action {self.action!r} "
                f"(known: {sorted(_ACTIONS)})"
            )
        if self.cooldown_s < 0:
            raise ValueError(
                f"rule {self.name!r}: cooldown_s must be >= 0, "
                f"got {self.cooldown_s}"
            )

    def matches(self, slo: str, severity: str) -> bool:
        """True when this rule applies to an alert of (slo, severity)."""
        if not fnmatchcase(slo, self.match_slo):
            return False
        return self.match_severity == "*" or self.match_severity == severity


#: The stock table.  Order matters: for one alert, traffic is shifted
#: away from the burning zone *first* (stops new spend immediately),
#: then in-flight resilience knobs are tightened.  Stall alerts come
#: from the link-outage detector; availability alerts from failed cloud
#: attempts; both get the shift + tighten pair.  Cold-start spikes get
#: the memory re-allocation (bigger sandboxes start and run faster);
#: cost burn gets traffic shifting only.
DEFAULT_POLICY: Tuple[PolicyRule, ...] = (
    PolicyRule("stall-shift", ACTION_SHIFT_TRAFFIC,
               match_slo="*-stall", cooldown_s=180.0),
    PolicyRule("stall-fallback", ACTION_FALLBACK_LOCAL,
               match_slo="*-stall", cooldown_s=300.0),
    PolicyRule("availability-shift", ACTION_SHIFT_TRAFFIC,
               match_slo="availability*", cooldown_s=180.0),
    PolicyRule("availability-hedge", ACTION_ESCALATE_HEDGING,
               match_slo="availability*", cooldown_s=120.0),
    PolicyRule("availability-fallback", ACTION_FALLBACK_LOCAL,
               match_slo="availability*", match_severity="page",
               cooldown_s=300.0),
    PolicyRule("cold-start-memory", ACTION_REALLOCATE_MEMORY,
               match_slo="cold-start*", cooldown_s=600.0),
    PolicyRule("cost-shift", ACTION_SHIFT_TRAFFIC,
               match_slo="cost*", cooldown_s=300.0),
)
