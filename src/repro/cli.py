"""Command-line interface.

Exposes the library's main flows without writing code::

    python -m repro list-apps
    python -m repro plan --app photo_backup --connectivity 4g --input-mb 4
    python -m repro run  --app ml_training --jobs 5 --slack 3600 \\
                         --scheduler batcher --window 600
    python -m repro pipeline --app nightly_analytics
    python -m repro sweep --grid '{"connectivity": ["3g", "4g"]}' \\
                          --seeds 3 --workers 4 --out merged.json
    python -m repro fleet --zones 8 --shards 4 --chaos uplink-outage \\
                          --remediate --health-out health.json
    python -m repro diff baseline_trace.json candidate_trace.json
    python -m repro bench run --short --out bench.json
    python -m repro ledger show --last 5

Every command is deterministic for a given ``--seed``; ``sweep`` output
is additionally byte-identical regardless of ``--workers``, and
``fleet --health-out`` is byte-identical across shard/worker counts when
the merge is exact.  ``run``/``sweep``/``fleet`` invocations append one
line to the run ledger (``.repro_ledger.jsonl`` by default; disable
with ``--no-ledger`` or ``REPRO_LEDGER=""``).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional, Sequence

from repro.apps.catalog import CATALOG
from repro.core.controller import Environment, OffloadController
from repro.core.partitioning import ObjectiveWeights
from repro.core.scheduler import (
    CostWindowScheduler,
    DeadlineBatcher,
    EagerScheduler,
    EdfScheduler,
    Scheduler,
)
from repro.apps.jobs import Job
from repro.metrics import Table
from repro.network.profiles import CONNECTIVITY_PROFILES


def _resolve_app(name: str):
    if name not in CATALOG:
        raise SystemExit(
            f"unknown app {name!r}; choose from {sorted(CATALOG)}"
        )
    return CATALOG[name]()


def _resolve_weights(preset: str) -> ObjectiveWeights:
    presets = {
        "balanced": ObjectiveWeights(),
        "interactive": ObjectiveWeights.interactive(),
        "non-time-critical": ObjectiveWeights.non_time_critical(),
    }
    if preset not in presets:
        raise SystemExit(
            f"unknown weights preset {preset!r}; choose from {sorted(presets)}"
        )
    return presets[preset]


def _resolve_scheduler(name: str, window_s: float) -> Scheduler:
    if name == "eager":
        return EagerScheduler()
    if name == "edf":
        return EdfScheduler()
    if name == "batcher":
        return DeadlineBatcher(window_s=window_s)
    if name == "costwindow":
        # A generic diurnal congestion price anchored at t=0.
        price = lambda t: 1.0 + 0.8 * math.sin(2 * math.pi * t / 86_400.0)
        return CostWindowScheduler(price, resolution_s=max(window_s, 60.0))
    raise SystemExit(
        f"unknown scheduler {name!r}; choose from "
        "['eager', 'edf', 'batcher', 'costwindow']"
    )


def _ledger_record(
    args: argparse.Namespace,
    command: str,
    config,
    wall_s: float,
    metrics=None,
    artifacts=(),
    status: str = "ok",
    meter=None,
) -> None:
    """Append one run-ledger entry (best-effort, never fatal)."""
    if getattr(args, "no_ledger", False):
        return
    from repro.ledger import append_entry, make_entry, resolve_ledger_path

    path = resolve_ledger_path(getattr(args, "ledger", None))
    if path is None:
        return
    entry = make_entry(
        command,
        config,
        wall_s,
        metrics=metrics,
        artifacts=[str(a) for a in artifacts if a],
        argv=getattr(args, "invocation_argv", []),
        status=status,
        meter=meter,
    )
    try:
        index = append_entry(path, entry)
    except OSError as error:
        print(f"warning: ledger append failed: {error}", file=sys.stderr)
        return
    print(
        f"ledger: entry #{index} ({entry.config_sha256[:12]}, "
        f"{entry.status}) -> {path}",
        file=sys.stderr,
    )


def _meter_payload(meter) -> dict:
    """Ledger-shaped view of a :class:`~repro.perf.RuntimeMeter`:
    deterministic counters and host wall-clock timings, kept apart so
    byte-sensitive consumers can drop the timings block wholesale."""
    return {"counters": meter.snapshot(), "timings": meter.timings()}


def _ledger_guard(args: argparse.Namespace, command: str, config, started):
    """Context manager recording a ``status: error`` ledger entry when the
    guarded command body dies mid-flight, so crashed runs still leave a
    trace in the experiment trajectory.  The exception propagates."""
    import contextlib
    import time

    @contextlib.contextmanager
    def guard():
        try:
            yield
        except Exception as error:
            _ledger_record(
                args,
                command=command,
                config=config,
                wall_s=time.perf_counter() - started,
                metrics={"error": type(error).__name__},
                status="error",
            )
            raise

    return guard()


def cmd_list_apps(_args: argparse.Namespace) -> int:
    table = Table(
        ["app", "components", "flows", "pinned", "total work @1MB (gcycles)"],
        title="Catalog applications",
        precision=1,
    )
    for name, factory in sorted(CATALOG.items()):
        app = factory()
        table.add_row(
            name, len(app), len(app.flows), len(app.pinned_names()),
            app.total_work(1.0),
        )
    print(table)
    return 0


def cmd_list_profiles(_args: argparse.Namespace) -> int:
    table = Table(
        ["profile", "uplink Mbit/s", "downlink Mbit/s", "access ms", "WAN ms"],
        title="Connectivity presets",
        precision=1,
    )
    for name, profile in sorted(CONNECTIVITY_PROFILES.items()):
        table.add_row(
            name,
            profile.uplink_bps * 8 / 1e6,
            profile.downlink_bps * 8 / 1e6,
            profile.access_latency_s * 1000,
            profile.wan_latency_s * 1000,
        )
    print(table)
    return 0


def _build_controller(args: argparse.Namespace) -> OffloadController:
    env = Environment.build(
        seed=args.seed,
        connectivity=args.connectivity,
        with_storage=getattr(args, "with_storage", False),
    )
    remediate = bool(getattr(args, "remediate", False))
    if getattr(args, "trace", None) or remediate:
        # Attach before planning so the plan span is captured too (the
        # remediation monitor needs a recording tracer either way).
        from repro.telemetry import attach_tracer

        attach_tracer(env)
    degradation = None
    if remediate:
        # Remediation drives the degradation knobs, so the controller
        # needs the policy object to act on; hedging starts disabled and
        # is escalated by the engine on availability burn.
        from repro.faults.policy import DegradationPolicy

        degradation = DegradationPolicy(
            outage_aware_backoff=True,
            hedge_after_s=None,
            fallback_local=True,
        )
    controller = OffloadController(
        env,
        _resolve_app(args.app),
        scheduler=_resolve_scheduler(
            getattr(args, "scheduler", "eager"), getattr(args, "window", 300.0)
        ),
        weights=_resolve_weights(args.weights),
        degradation=degradation,
    )
    controller.profile_offline()
    controller.plan(input_mb=args.input_mb)
    return controller


def cmd_plan(args: argparse.Namespace) -> int:
    controller = _build_controller(args)
    partition = controller.partition
    assert partition is not None
    print(f"app: {args.app}   connectivity: {args.connectivity}   "
          f"input: {args.input_mb} MB   weights: {args.weights}")
    print(f"cloud components: {sorted(partition.cloud) or '(none)'}")
    local = [
        n for n in controller.app.component_names if not partition.is_cloud(n)
    ]
    print(f"local components: {local}")
    if controller.allocation:
        table = Table(
            ["function", "memory MB", "expected s", "expected $/invocation"],
            title="Memory allocation",
            precision=3,
        )
        for name, decision in sorted(controller.allocation.items()):
            table.add_row(
                name, decision.memory_mb, decision.expected_duration_s,
                decision.expected_cost_usd,
            )
        print(table)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import time

    if args.actions_out and not args.remediate:
        raise SystemExit("--actions-out requires --remediate")
    started = time.perf_counter()
    config = {
        "app": args.app,
        "connectivity": args.connectivity,
        "input_mb": args.input_mb,
        "jobs": args.jobs,
        "remediate": bool(args.remediate),
        "scheduler": args.scheduler,
        "seed": args.seed,
        "slack": args.slack,
        "spacing": args.spacing,
        "weights": args.weights,
        "window": args.window,
        "with_storage": bool(args.with_storage),
        "workload": args.workload,
    }
    with _ledger_guard(args, "run", config, started):
        return _cmd_run_body(args, config, started)


def _cmd_run_body(args: argparse.Namespace, config, started) -> int:
    import time

    controller = _build_controller(args)
    plane = None
    if args.remediate:
        from repro.remediate import attach_remediation

        plane = attach_remediation(controller.env, [controller])
    if args.workload:
        from repro.traces.replay import load_workload

        jobs = load_workload(
            args.workload, lambda name: _resolve_app(name)
        )
        jobs = [job for job in jobs if job.app.name == args.app]
        if not jobs:
            raise SystemExit(
                f"trace {args.workload!r} has no jobs for app {args.app!r}"
            )
        # Rebind to the controller's graph instance.
        jobs = [
            Job(controller.app, input_mb=j.input_mb,
                released_at=j.released_at, deadline=j.deadline)
            for j in jobs
        ]
    else:
        jobs = [
            Job(
                controller.app,
                input_mb=args.input_mb,
                released_at=args.spacing * i,
                deadline=args.spacing * i + args.slack,
            )
            for i in range(args.jobs)
        ]
    report = controller.run_workload(jobs)
    if plane is not None:
        plane.engine.finalize(float(controller.env.sim.now))
    if args.trace:
        from repro.telemetry import write_chrome_trace

        write_chrome_trace(
            args.trace,
            controller.env.sim.tracer,
            metadata={
                "app": args.app,
                "connectivity": args.connectivity,
                "input_mb": args.input_mb,
                "jobs": len(jobs),
                "seed": args.seed,
            },
        )
        print(f"trace written to {args.trace}")
    if args.save_report:
        from repro.traces.replay import save_report

        save_report(args.save_report, report)
        print(f"report written to {args.save_report}")
    table = Table(["metric", "value"], title="Workload report", precision=3)
    table.add_row("jobs completed", report.jobs_completed)
    table.add_row("job failures", len(report.failures))
    table.add_row("deadline miss %", 100 * report.deadline_miss_rate)
    table.add_row("mean response s", report.mean_response_s)
    table.add_row("p95 response s", report.percentile_response_s(95))
    table.add_row("UE energy J", report.total_ue_energy_j)
    table.add_row("cloud cost $", report.total_cloud_cost_usd)
    table.add_row(
        "cold-start %",
        100 * controller.env.platform.cold_start_fraction(),
    )
    sim_meter = controller.env.sim.meter
    table.add_row("sim events", sim_meter.events_dispatched)
    table.add_row("fast-lane events", sim_meter.fast_lane_hits)
    table.add_row("plans computed", sim_meter.plans_computed)
    if plane is not None:
        table.add_row("alerts fired", len(plane.engine.alerts))
        table.add_row("actions applied", len(plane.remediation.actions))
    print(table)
    if plane is not None:
        if plane.remediation.log:
            print("action log:")
            for line in plane.remediation.log:
                print(f"  {line}")
        else:
            print("action log: empty (no remediation action applied)")
        if args.actions_out:
            from pathlib import Path

            Path(args.actions_out).write_text(
                plane.remediation.action_log()
            )
            print(f"action log written to {args.actions_out}")
    metrics = {
        "deadline_miss_rate": report.deadline_miss_rate,
        "failures": len(report.failures),
        "jobs_completed": report.jobs_completed,
        "mean_response_s": report.mean_response_s,
        "total_cloud_cost_usd": report.total_cloud_cost_usd,
    }
    if plane is not None:
        metrics["actions_applied"] = len(plane.remediation.actions)
        metrics["alerts_fired"] = len(plane.engine.alerts)
    _ledger_record(
        args,
        command="run",
        config=config,
        wall_s=time.perf_counter() - started,
        metrics=metrics,
        artifacts=(args.trace, args.save_report, args.actions_out),
        meter=_meter_payload(sim_meter),
    )
    return 0 if not report.failures else 1


def _load_artifact(loader, path: str):
    """Run ``loader(path)``, mapping load failures to a one-line exit 2.

    Missing files surface as ``OSError``, truncated/non-JSON content as
    ``json.JSONDecodeError`` (a ``ValueError`` subclass), and JSON of
    the wrong shape as ``ValueError`` — all user-input problems, so they
    get one stderr line and exit code 2 instead of a traceback.
    """
    try:
        return loader(path)
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    except ValueError as error:
        print(f"error: {path}: {error}", file=sys.stderr)
        raise SystemExit(2)


def _report_fleet_health(args: argparse.Namespace, payload: dict) -> int:
    """Render a ``repro fleet --health-out`` document."""
    from repro.monitor import fleet_health_to_prometheus

    fleet = payload.get("fleet", {})
    counters = payload.get("counters", {})
    table = Table(["metric", "value"], title="Fleet health report",
                  precision=3)
    table.add_row("fleet status", fleet.get("status", "?"))
    table.add_row("zones", fleet.get("zones", 0))
    table.add_row("UEs", fleet.get("ues", 0))
    table.add_row("coupling groups", fleet.get("groups", 0))
    table.add_row("alerts fired", fleet.get("alerts_fired", 0))
    table.add_row("alerts active", fleet.get("alerts_active", 0))
    table.add_row("monitored events", fleet.get("monitored_events", 0))
    table.add_row("jobs submitted", counters.get("jobs_submitted", 0))
    table.add_row("jobs completed", counters.get("jobs_completed", 0))
    table.add_row("failures", counters.get("failures", 0))
    table.add_row("cold starts", counters.get("cold_starts", 0))
    table.add_row("cloud cost $", counters.get("total_cloud_cost_usd", 0.0))
    print(table)
    zones = payload.get("zones", {})
    if zones:
        zone_table = Table(
            ["zone", "status", "UEs", "jobs", "completed", "failures",
             "mean resp s", "cost $"],
            title="Zone health",
            precision=3,
        )
        for name in sorted(zones):
            zone = zones[name]
            zone_table.add_row(
                name, zone.get("status", "?"), zone.get("ues", 0),
                zone.get("jobs", 0), zone.get("completed", 0),
                zone.get("failures", 0), zone.get("mean_response_s", 0.0),
                zone.get("cost_usd", 0.0),
            )
        print(zone_table)
    log = payload.get("log", [])
    if log:
        print("alert log:")
        for line in log:
            print(f"  {line}")
    else:
        print("alert log: empty (no SLO burn-rate rule fired)")
    if args.prometheus:
        print()
        sys.stdout.write(fleet_health_to_prometheus(payload))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.telemetry import report_from_file

    try:
        payload = json.loads(Path(args.trace).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        # Unreadable/truncated inputs fall through to _load_artifact,
        # which maps them to the usual one-line exit 2.
        payload = None
    if isinstance(payload, dict):
        schema = payload.get("schema")
        if schema == "repro.monitor.fleet/1":
            return _report_fleet_health(args, payload)
        if schema == "repro.fleet.sharded/1":
            print(
                f"error: {args.trace} is a merged fleet document with no "
                "health rollups; re-run `repro fleet --health-out "
                "health.json` and report on that file",
                file=sys.stderr,
            )
            return 2
    run_report = _load_artifact(report_from_file, args.trace)
    print(run_report.render())
    if args.prometheus:
        print()
        for line in sorted(
            f"{name} {value!r}"
            for name, value in run_report.metrics.items()
        ):
            print(line)
    return 0


def _render_diff(result, threshold: float, out: Optional[str] = None) -> int:
    """Print a :class:`~repro.monitor.diff.TraceDiff`; returns exit code."""
    table = Table(
        ["metric", "before", "after", "delta", "rel %", "regressed"],
        title=f"{result.kind} diff (threshold {threshold:.0%})",
        precision=6,
    )
    for row in result.rows:
        rel = (
            "n/a" if math.isinf(row.relative) else f"{100 * row.relative:+.2f}"
        )
        table.add_row(
            row.metric, row.before, row.after, row.delta, rel,
            "REGRESSED" if row.regressed else "",
        )
    print(table)
    if out:
        import json
        from pathlib import Path

        Path(out).write_text(
            json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"
        )
        print(f"diff written to {out}")
    if result.ok:
        print("OK: no regressions above threshold.")
        return 0
    names = ", ".join(row.metric for row in result.regressions)
    print(f"REGRESSION: {len(result.regressions)} metric(s) worsened "
          f">= {threshold:.0%}: {names}")
    return 1


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.monitor.diff import diff_profiles, load_profile

    before = _load_artifact(load_profile, args.before)
    after = _load_artifact(load_profile, args.after)
    try:
        result = diff_profiles(before, after, threshold=args.threshold)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _render_diff(result, args.threshold, out=args.out)


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import crossover_bandwidth, edge_breakeven_rate
    from repro.apps.lint import lint_app

    app = _resolve_app(args.app)
    weights = _resolve_weights(args.weights)
    print(f"Analysis of {args.app!r} at {args.input_mb} MB inputs "
          f"({args.weights} weights)\n")

    warnings = lint_app(app)
    if warnings:
        print("Lint findings:")
        for warning in warnings:
            print(f"  {warning}")
    else:
        print("Lint: clean.")

    crossover = crossover_bandwidth(app, input_mb=args.input_mb, weights=weights)
    if crossover is None:
        print("Offload crossover: none in 1 kB/s – 1 GB/s "
              "(one placement dominates everywhere).")
    else:
        print(f"Offload crossover: {crossover * 8 / 1e6:.2f} Mbit/s uplink — "
              "below this, keep it local; above, offload wins.")

    breakeven = edge_breakeven_rate(app, input_mb=args.input_mb)
    if math.isinf(breakeven):
        print("Edge breakeven: never (no offloadable work).")
    else:
        print(f"Edge breakeven: {breakeven:.1f} jobs/hour — below this "
              "rate a provisioned edge node costs more per job than "
              "serverless.")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import os
    import time
    from pathlib import Path

    from repro.sweep import SweepRunner, SweepSpec, canonical_json

    if args.spec:
        spec = SweepSpec.from_file(args.spec)
    else:
        try:
            grid = json.loads(args.grid) if args.grid else {}
            base = json.loads(args.base) if args.base else {}
        except json.JSONDecodeError as error:
            raise SystemExit(f"--grid/--base must be valid JSON: {error}")
        if not isinstance(grid, dict) or not isinstance(base, dict):
            raise SystemExit("--grid and --base must be JSON objects")
        spec = SweepSpec(
            scenario=args.scenario, base=base, grid=grid, seeds=args.seeds
        )
    workers = args.workers if args.workers else (os.cpu_count() or 1)
    progress = None
    if args.progress:
        def progress(update):
            tag = "cached" if update.cached else "done"
            print(
                f"[sweep {update.completed}/{update.total}] {tag} "
                f"{update.key[:72]} ({update.wall_s:.1f}s)",
                file=sys.stderr,
                flush=True,
            )
    runner = SweepRunner(
        spec, workers=workers, cache_dir=args.cache_dir, progress=progress
    )
    config = spec.to_dict()
    started = time.perf_counter()
    with _ledger_guard(args, "sweep", config, started):
        result = runner.run()
    wall_s = time.perf_counter() - started

    if args.out:
        Path(args.out).write_text(result.merged_json())
        print(f"merged results written to {args.out}")
    if args.manifest:
        Path(args.manifest).write_text(canonical_json(result.manifest()) + "\n")
        print(f"manifest written to {args.manifest}")

    table = Table(["metric", "value"], title="Sweep summary", precision=2)
    table.add_row("scenario", spec.scenario_name)
    table.add_row("configs", len(result))
    table.add_row("executed", result.executed)
    table.add_row("cached", result.cached)
    table.add_row("workers", workers)
    table.add_row("wall s", wall_s)
    print(table)
    _ledger_record(
        args,
        command="sweep",
        config=config,
        wall_s=wall_s,
        metrics={
            "cached": result.cached,
            "configs": len(result),
            "executed": result.executed,
        },
        artifacts=(args.out, args.manifest),
        meter=_meter_payload(runner.meter),
    )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from repro.fleet.sharded import ShardedFleetSpec
    from repro.fleet.topology import FleetTopology

    if args.actions_out and not args.remediate:
        raise SystemExit("--actions-out requires --remediate")
    topology = FleetTopology.uniform(
        n_zones=args.zones,
        ues_per_zone=args.ues_per_zone,
        connectivity=args.connectivity,
        jobs_per_ue=args.jobs_per_ue,
        couple=args.couple,
        seed=args.seed,
    )
    monitored = bool(args.monitor or args.health_out or args.remediate)
    spec = ShardedFleetSpec(
        topology=topology,
        app=args.app,
        input_mb=args.input_mb,
        window_s=args.window,
        slack_s=args.slack,
        keep_alive_s=args.keep_alive,
        sync_window_s=args.sync_window,
        monitor=monitored,
        chaos=args.chaos,
        remediate=bool(args.remediate),
    )
    config = {**spec.to_dict(), "n_shards": args.shards,
              "split_coupled": bool(args.split_coupled)}
    started = time.perf_counter()
    with _ledger_guard(args, "fleet", config, started):
        return _cmd_fleet_body(args, topology, spec, config, started)


def _cmd_fleet_body(args, topology, spec, config, started) -> int:
    import os
    import time
    from pathlib import Path

    from repro.fleet.sharded import run_sharded

    workers = args.workers if args.workers else (os.cpu_count() or 1)
    progress = None
    if args.progress:
        def progress(update):
            shard = "?"
            events = 0
            if isinstance(update.result, dict):
                shard = update.result.get("shard", "?")
                events = sum(
                    group.get("sim_events", 0)
                    for group in update.result.get("groups", ())
                    if isinstance(group, dict)
                )
            tag = "cached" if update.cached else "done"
            print(
                f"[fleet {update.completed}/{update.total}] shard {shard} "
                f"{tag}: {events} sim events ({update.wall_s:.1f}s)",
                file=sys.stderr,
                flush=True,
            )
    result = run_sharded(
        spec,
        n_shards=args.shards,
        workers=workers,
        split_coupled=args.split_coupled,
        cache_dir=args.cache_dir,
        progress=progress,
    )
    wall_s = time.perf_counter() - started

    if args.out:
        Path(args.out).write_text(result.merged_json())
        print(f"merged fleet report written to {args.out}")
    if args.health_out:
        Path(args.health_out).write_text(result.health_json())
        print(f"fleet health report written to {args.health_out}")

    aggregates = result.aggregates
    table = Table(["metric", "value"], title="Sharded fleet report",
                  precision=3)
    table.add_row("zones", len(topology.zones))
    table.add_row("UEs", topology.total_ues)
    table.add_row("jobs submitted", aggregates["jobs_submitted"])
    table.add_row("shards", result.plan.n_shards)
    table.add_row("workers", workers)
    table.add_row("merge", "exact" if result.exact else "bounded-error")
    table.add_row("jobs completed", aggregates["jobs_completed"])
    table.add_row("job failures", aggregates["failures"])
    table.add_row("deadline miss %", 100 * aggregates["deadline_miss_rate"])
    table.add_row("mean response s", aggregates["mean_response_s"])
    table.add_row("UE energy J", aggregates["total_ue_energy_j"])
    table.add_row("cloud cost $", aggregates["total_cloud_cost_usd"])
    table.add_row("platform bill $", aggregates["platform_usd"])
    table.add_row("cold-start %", 100 * aggregates["cold_start_fraction"])
    table.add_row("sim events", aggregates["sim_events"])
    if result.meter is not None:
        table.add_row("merge bytes", result.meter.merge_bytes)
    if result.health is not None:
        fleet_rollup = result.health["fleet"]
        table.add_row("fleet status", fleet_rollup["status"])
        table.add_row("alerts fired", fleet_rollup["alerts_fired"])
        table.add_row("alerts active", fleet_rollup["alerts_active"])
    if spec.remediate:
        table.add_row(
            "actions applied", len(result.health.get("actions", []))
        )
    table.add_row("wall s", wall_s)
    if wall_s > 0:
        table.add_row("UEs / wall s", topology.total_ues / wall_s)
    print(table)
    if result.health is not None and result.health["log"]:
        print("alert log:")
        for line in result.health["log"]:
            print(f"  {line}")
    if spec.remediate:
        action_lines = result.health.get("actions", [])
        if action_lines:
            print("action log:")
            for line in action_lines:
                print(f"  {line}")
        else:
            print("action log: empty (no remediation action applied)")
        if args.actions_out:
            Path(args.actions_out).write_text(result.action_log)
            print(f"action log written to {args.actions_out}")
    if result.error_bound is not None:
        bound = result.error_bound
        print(
            f"error bound (split links {bound['split_links']}): "
            f"|Δcold_starts| <= {bound['cold_starts']}, "
            f"|Δmean_response_s| <= {bound['mean_response_s']:.3f}, "
            f"Δcost = {bound['total_cloud_cost_usd']:.1f} "
            f"(window {bound['window_s']:.0f}s)"
        )
    metrics = {
        "cold_start_fraction": aggregates["cold_start_fraction"],
        "deadline_miss_rate": aggregates["deadline_miss_rate"],
        "failures": aggregates["failures"],
        "jobs_completed": aggregates["jobs_completed"],
        "jobs_submitted": aggregates["jobs_submitted"],
        "mean_response_s": aggregates["mean_response_s"],
        "sim_events": aggregates["sim_events"],
        "total_cloud_cost_usd": aggregates["total_cloud_cost_usd"],
    }
    if result.health is not None:
        metrics["alerts_fired"] = result.health["fleet"]["alerts_fired"]
        metrics["alerts_active"] = result.health["fleet"]["alerts_active"]
        metrics["fleet_status"] = result.health["fleet"]["status"]
    if spec.remediate:
        metrics["actions_applied"] = len(result.health.get("actions", []))
    _ledger_record(
        args,
        command="fleet",
        config=config,
        wall_s=wall_s,
        metrics=metrics,
        artifacts=(args.out, args.health_out, args.actions_out),
        meter=(
            _meter_payload(result.meter) if result.meter is not None else None
        ),
    )
    return 0 if not aggregates["failures"] else 1


def cmd_ledger(args: argparse.Namespace) -> int:
    from repro.ledger import (
        diff_entries,
        read_ledger,
        render_entries,
        resolve_ledger_path,
    )

    path = resolve_ledger_path(args.ledger)
    if path is None:
        print("error: ledger recording is disabled (empty path)",
              file=sys.stderr)
        return 2
    entries = read_ledger(path)

    if args.ledger_command == "show":
        if not entries:
            print(f"ledger {path}: no entries")
            return 0
        if args.index is not None:
            index = args.index + len(entries) if args.index < 0 else args.index
            if not 0 <= index < len(entries):
                print(f"error: index {args.index} out of range "
                      f"(ledger has {len(entries)} entries)", file=sys.stderr)
                return 2
            entry = entries[index]
            import json

            print(json.dumps(entry.to_dict(), sort_keys=True, indent=2))
            return 0
        indexed = list(enumerate(entries))
        if args.filter_command:
            indexed = [
                (i, e) for i, e in indexed if e.command == args.filter_command
            ]
        if args.last:
            indexed = indexed[-args.last:]
        if not indexed:
            print(f"ledger {path}: no matching entries")
            return 0
        if args.json:
            from repro.sweep import canonical_json

            for _, entry in indexed:
                print(canonical_json(entry.to_dict()))
            return 0
        print(
            render_entries(
                [e for _, e in indexed], indices=[i for i, _ in indexed]
            ),
            end="",
        )
        return 0

    # diff
    def pick(token: str):
        try:
            index = int(token)
        except ValueError:
            raise SystemExit(f"ledger indices must be integers, got {token!r}")
        resolved = index + len(entries) if index < 0 else index
        if not 0 <= resolved < len(entries):
            raise SystemExit(
                f"index {token} out of range (ledger has "
                f"{len(entries)} entries)"
            )
        return entries[resolved]

    before, after = pick(args.before), pick(args.after)
    try:
        result = diff_entries(before, after, threshold=args.threshold)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _render_diff(result, args.threshold)


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.profiling.hotspots import profile_scenario

    try:
        config = json.loads(args.config) if args.config else {}
    except json.JSONDecodeError as error:
        raise SystemExit(f"--config must be valid JSON: {error}")
    if not isinstance(config, dict):
        raise SystemExit("--config must be a JSON object")
    try:
        result = profile_scenario(args.scenario, config, top=args.top)
    except (ValueError, TypeError, ModuleNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    print(f"\n{result.total_calls} calls ({result.total_prim_calls} "
          f"primitive) in {result.wall_s:.3f} s — row order is "
          "call-count-ranked and reproducible; times are wall-clock.")
    if args.out:
        import json as _json
        from pathlib import Path

        Path(args.out).write_text(
            _json.dumps(result.to_dict(), sort_keys=True, indent=2,
                        default=str) + "\n"
        )
        print(f"profile written to {args.out}")
    return 0


def cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.cicd import SourceRepository
    from repro.core.pipeline import OffloadPipeline, PipelineConfig

    env = Environment.build(seed=args.seed, connectivity=args.connectivity)
    app = _resolve_app(args.app)
    repo = SourceRepository(args.app, app)
    pipeline = OffloadPipeline(
        env,
        repo,
        weights=_resolve_weights(args.weights),
        config=PipelineConfig(canary_jobs=args.canary_jobs),
    )
    run = pipeline.run_to_completion()
    print(f"revision {run.revision}: "
          f"{'PROMOTED' if run.promoted else 'ABANDONED'}")
    table = Table(["stage", "duration s", "detail"], precision=1)
    for stage in run.stages:
        table.add_row(stage.name, stage.duration_s, stage.detail[:60])
    print(table)
    return 0 if run.promoted else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import os
    import time
    from pathlib import Path

    from repro.perf import bench as perf_bench

    if args.bench_command == "run":
        if args.short:
            # Bench modules read REPRO_BENCH_SHORT at import time, so the
            # flag must be in the environment before the registry loads.
            os.environ["REPRO_BENCH_SHORT"] = "1"
        registry = perf_bench.load_registry()
        ordered = [
            registry[spec.name]
            for module in perf_bench.REGISTERED_MODULES
            for spec in sorted(registry.values(), key=lambda s: s.name)
            if spec.module == module
        ]
        if args.bench:
            unknown = sorted(set(args.bench) - set(registry))
            if unknown:
                raise SystemExit(
                    f"unknown benchmark(s) {unknown}; registered: "
                    f"{sorted(registry)}"
                )
            ordered = [spec for spec in ordered if spec.name in set(args.bench)]
        mode = "short" if args.short else "full"
        results = {}
        table = Table(
            ["bench", "wall s", "primary metric"],
            title="Benchmark run",
            precision=3,
        )
        for spec in ordered:
            started = time.perf_counter()
            spec.runner()
            wall = time.perf_counter() - started
            payload = perf_bench.LAST_SUMMARIES.get(spec.name)
            if payload is None:
                raise SystemExit(
                    f"benchmark {spec.name!r} ran but recorded no summary "
                    "(its runner must call write_bench_summary)"
                )
            results[spec.name] = payload
            primary = ""
            if spec.primary is not None and spec.primary in payload:
                primary = f"{spec.primary}={payload[spec.primary]}"
            table.add_row(spec.name, wall, primary)
        document = perf_bench.build_document(results, mode)
        print(table)
        print(f"mode: {mode}; {len(results)} benchmark(s) executed")
        if args.out:
            from repro.sweep.spec import canonical_json

            Path(args.out).write_text(canonical_json(document) + "\n")
            print(f"bench document written to {args.out}")
        history_path = perf_bench.resolve_history_path(args.history)
        if history_path is not None:
            try:
                index = perf_bench.append_history(history_path, document)
            except OSError as error:
                print(f"warning: history append failed: {error}",
                      file=sys.stderr)
            else:
                print(f"history: entry #{index} -> {history_path}",
                      file=sys.stderr)
        return 0

    if args.bench_command == "compare":
        from repro.perf.check import main as check_main

        argv: List[str] = [args.fresh]
        for name in args.bench or ():
            argv += ["--bench", name]
        if args.committed:
            argv += ["--committed", args.committed]
        if args.baseline_dir:
            argv += ["--baseline-dir", args.baseline_dir]
        if args.threshold is not None:
            argv += ["--threshold", str(args.threshold)]
        if args.history is not None:
            argv += ["--history", args.history]
        if args.no_trend:
            argv.append("--no-trend")
        if args.trend_fail:
            argv.append("--trend-fail")
        return check_main(argv)

    # history
    path = perf_bench.resolve_history_path(args.history)
    if path is None:
        print("error: bench history is disabled (empty path)",
              file=sys.stderr)
        return 2
    entries = perf_bench.read_history(path)
    if not entries:
        print(f"bench history {path}: no entries")
        return 0
    if args.metric:
        series = perf_bench.history_series(entries, args.metric,
                                           mode=args.mode)
        if not series:
            print(f"bench history {path}: no values for {args.metric!r}")
            return 0
        for value in series:
            print(value)
        return 0
    if args.last:
        entries = entries[-args.last:]
    table = Table(
        ["#", "recorded_at", "mode", "git", "metrics"],
        title=f"Bench history ({path})",
    )
    for index, entry in enumerate(entries):
        fingerprint = entry.get("fingerprint", {})
        metrics = entry.get("metrics", {})
        brief = ", ".join(
            f"{key}={metrics[key]}" for key in sorted(metrics)[:3]
        )
        table.add_row(
            index,
            fingerprint.get("recorded_at", "?"),
            entry.get("mode", "?"),
            fingerprint.get("git_rev") or "-",
            brief,
        )
    print(table)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serverless offloading for non-time-critical applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="show the catalog applications")
    sub.add_parser("list-profiles", help="show connectivity presets")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--app", required=True, help="catalog app name")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--connectivity", default="4g",
                       choices=sorted(CONNECTIVITY_PROFILES))
        p.add_argument("--input-mb", type=float, default=4.0)
        p.add_argument("--weights", default="non-time-critical",
                       help="balanced | interactive | non-time-critical")

    plan = sub.add_parser("plan", help="compute partition + allocation")
    common(plan)

    def ledger_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--ledger", default=None,
                       help="run-ledger JSONL path (default "
                            ".repro_ledger.jsonl; REPRO_LEDGER env "
                            "overrides; empty string disables)")
        p.add_argument("--no-ledger", action="store_true",
                       help="skip the run-ledger append for this invocation")

    run = sub.add_parser("run", help="run a workload end to end")
    common(run)
    ledger_flags(run)
    run.add_argument("--jobs", type=int, default=5)
    run.add_argument("--spacing", type=float, default=60.0,
                     help="seconds between job releases")
    run.add_argument("--slack", type=float, default=3600.0,
                     help="seconds from release to deadline")
    run.add_argument("--scheduler", default="eager",
                     choices=["eager", "edf", "batcher", "costwindow"])
    run.add_argument("--window", type=float, default=300.0,
                     help="batcher window / costwindow resolution (s)")
    run.add_argument("--with-storage", action="store_true",
                     help="stage cut-edge data through an object store")
    run.add_argument("--workload", default=None,
                     help="JSON job trace to replay instead of synthesising")
    run.add_argument("--save-report", default=None,
                     help="write the run report to this JSON file")
    run.add_argument("--trace", default=None,
                     help="write a Chrome trace-event JSON of the run "
                          "(load in Perfetto, or feed to `repro report`)")
    run.add_argument("--remediate", action="store_true",
                     help="attach the closed-loop remediation plane: "
                          "live SLO alerts and goodput forecasts drive "
                          "hedging, memory, traffic-shift, and fallback "
                          "actions during the run")
    run.add_argument("--actions-out", default=None,
                     help="write the canonical remediation action log "
                          "here (requires --remediate)")

    report = sub.add_parser(
        "report", help="print phase attribution for a saved trace"
    )
    report.add_argument("trace", help="trace JSON written by `run --trace`")
    report.add_argument("--prometheus", action="store_true",
                        help="also dump the labeled metrics in Prometheus "
                             "text format")

    diff = sub.add_parser(
        "diff", help="compare two traces or reports phase by phase"
    )
    diff.add_argument("before", help="baseline trace/report JSON")
    diff.add_argument("after", help="candidate trace/report JSON")
    diff.add_argument("--threshold", type=float, default=0.05,
                      help="relative worsening that counts as a regression "
                           "(default 0.05 = 5%%)")
    diff.add_argument("--out", default=None,
                      help="also write the full diff as JSON here")

    pipeline = sub.add_parser("pipeline", help="run the CI/CD pipeline once")
    common(pipeline)
    pipeline.add_argument("--canary-jobs", type=int, default=3)

    analyze = sub.add_parser(
        "analyze", help="lint an app and compute its breakeven points"
    )
    common(analyze)

    profile = sub.add_parser(
        "profile",
        help="cProfile a scenario; deterministic call-count-ranked top-N",
    )
    profile.add_argument(
        "--scenario", default="offload_run",
        help="built-in scenario name or importable 'module:function' "
             "taking one config dict (default: offload_run)",
    )
    profile.add_argument(
        "--config", default=None,
        help='JSON config for the scenario, e.g. \'{"jobs": 20}\'',
    )
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the hot-function table (default 15)")
    profile.add_argument("--out", default=None,
                         help="also write the full profile as JSON here")

    sweep = sub.add_parser(
        "sweep", help="fan a scenario grid out across worker processes"
    )
    sweep.add_argument(
        "--scenario", default="repro.sweep.scenarios:offload_run",
        help="importable 'module:function' taking one config dict",
    )
    sweep.add_argument(
        "--spec", default=None,
        help="JSON sweep-spec file (overrides --scenario/--grid/--base/--seeds)",
    )
    sweep.add_argument(
        "--grid", default=None,
        help='JSON object of parameter axes, e.g. \'{"connectivity": ["3g", "4g"]}\'',
    )
    sweep.add_argument(
        "--base", default=None,
        help="JSON object merged into every config",
    )
    sweep.add_argument("--seeds", type=int, default=1,
                       help="seed replications per grid point")
    sweep.add_argument("--workers", type=int, default=0,
                       help="worker processes (default: all cores)")
    sweep.add_argument("--cache-dir", default=None,
                       help="per-config result cache directory "
                            "(e.g. .sweep_cache); re-runs execute only "
                            "the delta")
    sweep.add_argument("--out", default=None,
                       help="write the merged results JSON here "
                            "(byte-identical across worker counts)")
    sweep.add_argument("--manifest", default=None,
                       help="write the execution manifest JSON here")
    sweep.add_argument("--progress", action="store_true",
                       help="print per-config completion heartbeats to "
                            "stderr (completion order is nondeterministic)")
    ledger_flags(sweep)

    fleet = sub.add_parser(
        "fleet",
        help="simulate a zoned UE fleet, sharded across worker processes",
    )
    fleet.add_argument("--app", default="photo_backup",
                       help="catalog app every UE runs")
    fleet.add_argument("--zones", type=int, default=4,
                       help="number of zones (default 4)")
    fleet.add_argument("--ues-per-zone", type=int, default=8,
                       help="UEs in each zone (default 8)")
    fleet.add_argument("--jobs-per-ue", type=int, default=1,
                       help="jobs each UE submits (default 1)")
    fleet.add_argument("--shards", type=int, default=1,
                       help="shards to partition the topology into")
    fleet.add_argument("--workers", type=int, default=0,
                       help="worker processes (default: all cores)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--connectivity", default="4g",
                       choices=sorted(CONNECTIVITY_PROFILES))
    fleet.add_argument("--couple", default="none",
                       choices=["none", "ring", "pairs"],
                       help="warm-pool coupling links between zones")
    fleet.add_argument("--split-coupled", action="store_true",
                       help="allow links to cross shards (bounded-error "
                            "merge instead of exact)")
    fleet.add_argument("--input-mb", type=float, default=2.0,
                       help="input size per job (default 2.0)")
    fleet.add_argument("--window", type=float, default=3600.0,
                       help="release window spreading the fleet's jobs (s)")
    fleet.add_argument("--slack", type=float, default=3600.0,
                       help="seconds from release to deadline")
    fleet.add_argument("--keep-alive", type=float, default=600.0,
                       help="platform sandbox keep-alive (s)")
    fleet.add_argument("--sync-window", type=float, default=600.0,
                       help="conservative sync window for the error bound "
                            "(clamped up to keep-alive)")
    fleet.add_argument("--cache-dir", default=None,
                       help="per-shard result cache directory")
    fleet.add_argument("--out", default=None,
                       help="write the merged fleet report JSON here "
                            "(byte-identical across shard/worker counts "
                            "when the merge is exact)")
    fleet.add_argument("--monitor", action="store_true",
                       help="attach a monitor shard to every coupling "
                            "group and merge the snapshots")
    fleet.add_argument("--chaos", default="none",
                       choices=["none", "uplink-outage", "uplink-degraded"],
                       help="deterministic fault schedule injected into "
                            "every UE's access link (default none)")
    fleet.add_argument("--health-out", default=None,
                       help="write the merged fleet health + alert-log "
                            "report JSON here (implies --monitor; "
                            "byte-identical across shard/worker counts "
                            "when the merge is exact)")
    fleet.add_argument("--remediate", action="store_true",
                       help="attach a closed-loop remediation engine to "
                            "every coupling group (implies --monitor); "
                            "the merged action log is byte-identical "
                            "across shard/worker counts")
    fleet.add_argument("--actions-out", default=None,
                       help="write the merged remediation action log "
                            "here (requires --remediate)")
    fleet.add_argument("--progress", action="store_true",
                       help="print per-shard completion heartbeats to "
                            "stderr (completion order is nondeterministic)")
    ledger_flags(fleet)

    bench = sub.add_parser(
        "bench",
        help="run the registered benchmark suite and gate on baselines",
    )
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    brun = bsub.add_parser(
        "run", help="execute registered benchmarks, emit repro.bench/1 JSON"
    )
    brun.add_argument("--short", action="store_true",
                      help="short mode: reduced workloads (CI-sized)")
    brun.add_argument("--bench", action="append", default=None,
                      help="run only this benchmark (repeatable); "
                           "default: the full registered suite")
    brun.add_argument("--out", default=None,
                      help="write the canonical repro.bench/1 document here")
    brun.add_argument("--history", default=None,
                      help="bench-history JSONL path (default "
                           ".repro_bench_history.jsonl; REPRO_BENCH_HISTORY "
                           "env overrides; empty string disables)")
    bcompare = bsub.add_parser(
        "compare",
        help="check a fresh bench document against committed baselines",
    )
    bcompare.add_argument("fresh",
                          help="repro.bench/1 document (or legacy "
                               "BENCH_*.json summary) to check")
    bcompare.add_argument("--bench", action="append", default=None,
                          help="check only this benchmark (repeatable)")
    bcompare.add_argument("--committed", default=None,
                          help="explicit committed baseline file (single "
                               "bench only)")
    bcompare.add_argument("--baseline-dir", default=None,
                          help="directory of committed BENCH_<name>.json "
                               "baselines (default: repo benchmarks/)")
    bcompare.add_argument("--threshold", type=float, default=None,
                          help="override the primary metric's threshold")
    bcompare.add_argument("--history", default=None,
                          help="bench-history JSONL for trend analysis")
    bcompare.add_argument("--no-trend", action="store_true",
                          help="skip the trend sentinel")
    bcompare.add_argument("--trend-fail", action="store_true",
                          help="trend drifts fail instead of warn")
    bhistory = bsub.add_parser(
        "history", help="show the benchmark history ledger"
    )
    bhistory.add_argument("--history", default=None,
                          help="bench-history JSONL path (default "
                               ".repro_bench_history.jsonl)")
    bhistory.add_argument("--last", type=int, default=0,
                          help="only the last N entries")
    bhistory.add_argument("--metric", default=None,
                          help="print one '<bench>.<metric>' series, "
                               "one value per line, oldest first")
    bhistory.add_argument("--mode", default=None,
                          help="with --metric: only entries of this mode "
                               "(short | full)")

    ledger = sub.add_parser(
        "ledger", help="inspect the append-only run ledger"
    )
    lsub = ledger.add_subparsers(dest="ledger_command", required=True)
    show = lsub.add_parser("show", help="list recorded invocations")
    show.add_argument("--ledger", default=None,
                      help="ledger JSONL path (default .repro_ledger.jsonl; "
                           "REPRO_LEDGER env overrides)")
    show.add_argument("--last", type=int, default=0,
                      help="only the last N matching entries")
    show.add_argument("--command", dest="filter_command", default=None,
                      help="only entries recorded by this command "
                           "(run | sweep | fleet)")
    show.add_argument("--index", type=int, default=None,
                      help="print one entry in full (negative counts "
                           "from the end)")
    show.add_argument("--json", action="store_true",
                      help="emit entries as canonical JSON lines")
    ldiff = lsub.add_parser(
        "diff", help="compare two entries' metrics, direction-aware"
    )
    ldiff.add_argument("before", help="baseline entry index "
                                      "(negative counts from the end)")
    ldiff.add_argument("after", help="candidate entry index")
    ldiff.add_argument("--ledger", default=None,
                       help="ledger JSONL path (default .repro_ledger.jsonl; "
                            "REPRO_LEDGER env overrides)")
    ldiff.add_argument("--threshold", type=float, default=0.05,
                       help="relative worsening that counts as a "
                            "regression (default 0.05 = 5%%)")

    return parser


COMMANDS = {
    "analyze": cmd_analyze,
    "bench": cmd_bench,
    "fleet": cmd_fleet,
    "diff": cmd_diff,
    "ledger": cmd_ledger,
    "list-apps": cmd_list_apps,
    "list-profiles": cmd_list_profiles,
    "plan": cmd_plan,
    "profile": cmd_profile,
    "report": cmd_report,
    "run": cmd_run,
    "pipeline": cmd_pipeline,
    "sweep": cmd_sweep,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    args.invocation_argv = list(argv) if argv is not None else sys.argv[1:]
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
