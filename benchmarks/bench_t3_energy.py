"""T3 — UE energy savings across connectivity.

Runs the photo-backup workload end to end (not just planning estimates)
under each connectivity preset and compares the optimiser's measured UE
energy against local-only.  Expected shape: savings grow with uplink
quality; on the slowest link the optimiser falls back toward local and
never does *worse* than the better trivial policy.
"""

import pytest

from repro import Environment, Job, ObjectiveWeights, OffloadController, photo_backup_app
from repro.baselines import local_only_controller
from repro.metrics import Table

from _common import emit

CONNECTIVITIES = ["3g", "4g", "5g", "wifi"]
N_JOBS = 6
INPUT_MB = 4.0
SLACK_S = 3600.0
SEED = 33


def run_workload(make_controller, connectivity):
    env = Environment.build(seed=SEED, connectivity=connectivity)
    controller = make_controller(env)
    if controller.partition is None:
        controller.profile_offline()
        controller.plan(input_mb=INPUT_MB)
    jobs = [
        Job(controller.app, input_mb=INPUT_MB, released_at=60.0 * i,
            deadline=60.0 * i + SLACK_S)
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    return report, controller


def run_t3() -> Table:
    table = Table(
        ["connectivity", "policy", "energy J", "resp s", "cloud $",
         "miss %", "n cloud"],
        title=f"T3: measured UE energy — photo backup, {N_JOBS} jobs of "
              f"{INPUT_MB:.0f} MB, 1 h slack",
        precision=2,
    )
    for connectivity in CONNECTIVITIES:
        local_report, _ = run_workload(
            lambda env: local_only_controller(env, photo_backup_app()),
            connectivity,
        )
        opt_report, opt = run_workload(
            lambda env: OffloadController(
                env, photo_backup_app(),
                weights=ObjectiveWeights.non_time_critical(),
            ),
            connectivity,
        )
        for policy, report, ncloud in (
            ("local-only", local_report, 0),
            ("optimised", opt_report, len(opt.partition.cloud)),
        ):
            table.add_row(
                connectivity, policy, report.total_ue_energy_j,
                report.mean_response_s, report.total_cloud_cost_usd,
                100 * report.deadline_miss_rate, ncloud,
            )
        # The optimiser never burns meaningfully more energy than local.
        assert opt_report.total_ue_energy_j <= local_report.total_ue_energy_j * 1.05
    return table


def bench_t3_energy(benchmark):
    table = benchmark.pedantic(run_t3, rounds=1, iterations=1)
    emit(table)
    energies = {}
    for row in table.rows:
        energies.setdefault(row[0], {})[row[1]] = row[2]
    # On a good link the savings are large (>50%)...
    assert energies["wifi"]["optimised"] < 0.5 * energies["wifi"]["local-only"]
    # ...and savings never shrink when moving 3g -> wifi.
    saving = lambda c: 1 - energies[c]["optimised"] / energies[c]["local-only"]
    assert saving("wifi") >= saving("3g") - 0.05


if __name__ == "__main__":
    emit(run_t3())
