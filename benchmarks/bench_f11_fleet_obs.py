"""F11 — Fleet observability under chaos.

The observability plane's claims, measured at fleet scale: (1) the
merged health document and alert log are *byte-identical* across shard
counts — monitoring adds no layout sensitivity — and (2) the R1
uplink-outage schedule produces alert rollups a fault-free fleet never
shows: the ``uplink-stall`` SLO fires and clears on the merged uplink
stream while the quiet fleet stays all-``ok`` with an empty log.  The
table reports alert counts, zone health tallies, and the monitoring
overhead (monitored vs unmonitored wall time on the same spec).
"""

import os

from repro.fleet.sharded import ShardedFleetSpec, run_sharded
from repro.fleet.topology import FleetTopology
from repro.metrics import Table

from _common import (
    MetricSpec,
    emit,
    register_bench,
    timed_rows,
    write_bench_summary,
)

SHORT = os.environ.get("REPRO_BENCH_SHORT") == "1"

N_ZONES = 4 if SHORT else 16
UES_PER_ZONE = 2 if SHORT else 16
JOBS_PER_UE = 1 if SHORT else 2
SEED = 1111


def build_spec(chaos: str, monitor: bool = True) -> ShardedFleetSpec:
    topology = FleetTopology.uniform(
        n_zones=N_ZONES,
        ues_per_zone=UES_PER_ZONE,
        connectivity=["4g", "wifi"],
        jobs_per_ue=JOBS_PER_UE,
        couple="pairs",
        seed=SEED,
    )
    return ShardedFleetSpec(
        topology=topology,
        window_s=600.0,
        slack_s=1200.0,
        monitor=monitor,
        chaos=chaos,
    )


def _zone_tally(health: dict) -> dict:
    tally = {"ok": 0, "degraded": 0, "critical": 0}
    for zone in health["zones"].values():
        tally[zone["status"]] += 1
    return tally


@register_bench(
    "F11",
    metrics=(
        MetricSpec("byte_identical", kind="flag"),
        MetricSpec("monitor_overhead_x", kind="ratio", direction="lower",
                   threshold=None),
    ),
    deterministic=("mode", "zones", "ues", "byte_identical", "alerts",
                   "log_lines", "meter_events"),
    primary="monitor_overhead_x",
)
def run_f11() -> Table:
    # Claim 1: health bytes are shard-layout-independent, chaos included.
    reference = run_sharded(
        build_spec("uplink-outage"), n_shards=1, workers=1
    )
    byte_identical = all(
        run_sharded(
            build_spec("uplink-outage"), n_shards=n, workers=1
        ).health_json() == reference.health_json()
        for n in (2, 4)
    )
    assert byte_identical, "health document diverged across shard counts"
    # The health document now embeds the group-summed runtime meter, so
    # the byte check covers it; pin the event count as a deterministic
    # baseline check too.
    meter_events = int(reference.health["meter"]["events_dispatched"])

    # Claim 2: chaos is visible in the rollups, quiet fleets are quiet.
    results = {
        chaos: run_sharded(build_spec(chaos), n_shards=2)
        for chaos in ("none", "uplink-outage", "uplink-degraded")
    }
    quiet = results["none"].health
    assert quiet["fleet"]["alerts_fired"] == 0, "quiet fleet paged"
    outage_log = results["uplink-outage"].alert_log
    assert "FIRING slo=uplink-stall" in outage_log, "outage did not page"

    table = Table(
        ["chaos", "alerts fired", "log lines", "zones ok", "degraded",
         "critical", "monitored events"],
        title=f"F11: fleet observability — {reference.spec.topology.total_ues}"
              f" UEs, {N_ZONES} zones, paired coupling, 2 shards",
        precision=0,
    )
    for chaos, result in results.items():
        health = result.health
        tally = _zone_tally(health)
        table.add_row(
            chaos, health["fleet"]["alerts_fired"], len(health["log"]),
            tally["ok"], tally["degraded"], tally["critical"],
            health["fleet"]["monitored_events"],
        )

    # Monitoring overhead: same spec with and without the monitor shard.
    cases = {
        "unmonitored": lambda: run_sharded(
            build_spec("none", monitor=False), n_shards=2
        ),
        "monitored": lambda: run_sharded(build_spec("none"), n_shards=2),
    }
    best = timed_rows(cases, repeats=1 if SHORT else 3, warmup=not SHORT)
    overhead = best["monitored"] / best["unmonitored"]

    write_bench_summary("F11", {
        "mode": "short" if SHORT else "full",
        "zones": N_ZONES,
        "ues": reference.spec.topology.total_ues,
        "byte_identical": byte_identical,
        "meter_events": meter_events,
        "alerts": {
            chaos: result.health["fleet"]["alerts_fired"]
            for chaos, result in results.items()
        },
        "log_lines": {
            chaos: len(result.health["log"])
            for chaos, result in results.items()
        },
        "wall_s": {name: best[name] for name in cases},
        "monitor_overhead_x": overhead,
    })
    return table


def bench_f11_fleet_obs(benchmark):
    table = benchmark.pedantic(run_f11, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_f11())
