"""O1 — Observability overhead: disabled tracer and meter cost nothing.

The telemetry layer's contract (see ``repro.telemetry.tracer``) is that
an uninstrumented run pays one hoisted attribute read per instrumented
operation and nothing per kernel event; the runtime meter
(``repro.perf.meter``) makes the same promise for its wall-clock
metering sites.  This bench measures the kernel event loop under four
configurations and asserts both contracts:

* **baseline** — a plain event loop with no tracer reference at all;
* **disabled** — the instrumented loop shape (hoisted ``sim.tracer``,
  ``if tracer.enabled:`` guard per operation) against the default
  :data:`~repro.telemetry.tracer.NULL_TRACER`;
* **meter** — the meter-instrumented loop shape: a hoisted
  :data:`~repro.perf.meter.NULL_METER` with one ``if meter.enabled:``
  guard per operation (the counter increments themselves ride inside
  the kernel in every configuration — they *are* the event count);
* **enabled** — the tracer loop with a recording
  :class:`~repro.telemetry.tracer.Tracer` attached, one span per event.

Rounds are interleaved (baseline, disabled, meter, enabled, repeat) so
slow drift in the host machine hits every configuration equally, and
each configuration is scored by its *minimum* over the repeats — the
best observed time is the least noise-contaminated estimate of the true
cost.  The wall-clock columns are the only non-deterministic output in
the benchmark suite besides F6's; the shape assertions (disabled and
meter within 2% of baseline) are what CI enforces.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.metrics import Table
from repro.perf.meter import NULL_METER
from repro.sim import Simulator
from repro.telemetry import attach_tracer
from repro.telemetry.tracer import PHASE_EXECUTE

from _common import (
    MetricSpec,
    emit,
    register_bench,
    write_bench_summary,
)

#: Short mode (CI-sized): half the events.  The repeat count stays at 5
#: — the ≤2% budget is a hard assert, and the min-of-repeats estimator
#: needs enough rounds to shed scheduler noise at any size.
SHORT = os.environ.get("REPRO_BENCH_SHORT", "") not in ("", "0")

N_EVENTS = 100_000 if SHORT else 200_000
REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.02  # disabled tracer/meter ≤ 2% over baseline

CONFIGS = ("baseline", "disabled", "meter", "enabled")


def _plain_proc(sim, n):
    """The untraced reference loop: n timeout events, nothing else."""
    timeout = sim.timeout
    for _ in range(n):
        yield timeout(1.0)


def _instrumented_proc(sim, n):
    """The loop as an instrumented subsystem writes it.

    ``sim.tracer`` and its ``enabled`` flag are hoisted once per
    process activation, exactly like the controller/platform sites; the
    per-operation residue with the null tracer installed is one local
    bool test on top of :func:`_plain_proc`'s timeout.
    """
    tracer = sim.tracer
    enabled = tracer.enabled
    timeout = sim.timeout
    if enabled:
        for _ in range(n):
            span = tracer.start_span("tick", category=PHASE_EXECUTE)
            yield timeout(1.0)
            tracer.end_span(span)
    else:
        for _ in range(n):
            if enabled:  # the per-operation guard being measured
                pass
            yield timeout(1.0)


def _metered_proc(sim, n):
    """The loop as a meter-instrumented subsystem writes it.

    The wall-clock metering sites (controller plan, sweep, merge) hoist
    the meter once and guard their ``perf_counter()`` calls on
    ``meter.enabled``; with :data:`NULL_METER` installed the residue is
    one local bool test per operation — the same shape as the disabled
    tracer path.
    """
    meter = NULL_METER
    enabled = meter.enabled
    timeout = sim.timeout
    for _ in range(n):
        if enabled:  # the per-operation wall-clock guard being measured
            pass
        yield timeout(1.0)


class SimpleEnv:
    """The minimal ``env`` shape :func:`attach_tracer` needs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim


def _run_once(config: str, n: int = N_EVENTS) -> float:
    """One timed round of ``n`` kernel events; returns wall seconds."""
    sim = Simulator()
    if config == "baseline":
        proc = _plain_proc(sim, n)
    elif config == "meter":
        proc = _metered_proc(sim, n)
    else:
        if config == "enabled":
            attach_tracer(SimpleEnv(sim))
        proc = _instrumented_proc(sim, n)
    root = sim.spawn(proc)
    start = perf_counter()
    sim.run(until=root)
    elapsed = perf_counter() - start
    if config == "enabled":
        assert len(sim.tracer) == n, (len(sim.tracer), n)
    else:
        assert not sim.tracer.enabled
    assert sim.now == float(n)
    # The kernel's own counters are always on; every configuration must
    # have metered exactly the events it dispatched.
    assert sim.meter.events_dispatched == sim.events_processed
    return elapsed


def measure() -> dict:
    """Per-configuration wall-time samples, rounds interleaved.

    Returns ``{config: [seconds per round]}``.  Interleaving means each
    round's configurations share the same host drift, so *per-round*
    ratios against baseline are far less noise-contaminated than a ratio
    of cross-round minima — the overhead asserts use the minimum round
    ratio (one clean round proves the true overhead is within budget).
    """
    for config in CONFIGS:  # cheap warmup sweep at a tenth of the size
        _run_once(config, n=N_EVENTS // 10)
    samples: dict = {config: [] for config in CONFIGS}
    for _ in range(REPEATS):
        for config in CONFIGS:
            samples[config].append(_run_once(config))
    return samples


def _overhead_ratio(samples: dict, config: str) -> float:
    """The least-noise estimate of ``config``'s cost over baseline:
    the minimum per-round ratio across the interleaved rounds."""
    return min(
        sample / base
        for sample, base in zip(samples[config], samples["baseline"])
    )


@register_bench(
    "O1",
    metrics=(
        MetricSpec("disabled_overhead_pct", kind="max", threshold=2.0),
        MetricSpec("meter_overhead_pct", kind="max", threshold=2.0),
    ),
    deterministic=("mode", "events", "repeats", "budget_pct"),
    primary="disabled_overhead_pct",
)
def run_o1() -> Table:
    samples = measure()
    best = {config: min(samples[config]) for config in CONFIGS}
    table = Table(
        ["config", "events", "wall s (min of N)", "events/s",
         "overhead vs baseline %"],
        title=f"O1: observability overhead — {N_EVENTS} kernel events per "
              f"round, interleaved rounds, min of {REPEATS}",
        precision=3,
    )
    for config in CONFIGS:
        seconds = best[config]
        overhead = 100.0 * (seconds / best["baseline"] - 1.0)
        table.add_row(config, N_EVENTS, seconds, N_EVENTS / seconds, overhead)

    disabled_ratio = _overhead_ratio(samples, "disabled")
    assert disabled_ratio <= 1.0 + MAX_DISABLED_OVERHEAD, (
        f"disabled tracer costs {100 * (disabled_ratio - 1):.2f}% "
        f"over baseline (budget {100 * MAX_DISABLED_OVERHEAD:.0f}%)"
    )
    meter_ratio = _overhead_ratio(samples, "meter")
    assert meter_ratio <= 1.0 + MAX_DISABLED_OVERHEAD, (
        f"disabled meter costs {100 * (meter_ratio - 1):.2f}% "
        f"over baseline (budget {100 * MAX_DISABLED_OVERHEAD:.0f}%)"
    )
    # Recording is allowed to cost real time; it must at least have
    # actually recorded (sanity that the enabled row measured tracing).
    assert best["enabled"] >= best["disabled"]
    write_bench_summary(
        "O1",
        {
            "mode": "short" if SHORT else "full",
            "events": N_EVENTS,
            "repeats": REPEATS,
            "wall_s": {config: best[config] for config in CONFIGS},
            "disabled_overhead_pct": 100.0 * (disabled_ratio - 1.0),
            "meter_overhead_pct": 100.0 * (meter_ratio - 1.0),
            "budget_pct": 100.0 * MAX_DISABLED_OVERHEAD,
        },
    )
    return table


def bench_o1_overhead(benchmark):
    table = benchmark.pedantic(run_o1, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_o1())
