"""O1 — Telemetry overhead: the disabled tracer must cost nothing.

The telemetry layer's contract (see ``repro.telemetry.tracer``) is that
an uninstrumented run pays one hoisted attribute read per instrumented
operation and nothing per kernel event.  This bench measures the kernel
event loop under three configurations and asserts the contract:

* **baseline** — a plain event loop with no tracer reference at all;
* **disabled** — the instrumented loop shape (hoisted ``sim.tracer``,
  ``if tracer.enabled:`` guard per operation) against the default
  :data:`~repro.telemetry.tracer.NULL_TRACER`;
* **enabled** — the same loop with a recording
  :class:`~repro.telemetry.tracer.Tracer` attached, one span per event.

Rounds are interleaved (baseline, disabled, enabled, repeat) so slow
drift in the host machine hits every configuration equally, and each
configuration is scored by its *minimum* over the repeats — the best
observed time is the least noise-contaminated estimate of the true
cost.  The wall-clock columns are the only non-deterministic output in
the benchmark suite besides F6's; the shape assertion (disabled within
2% of baseline) is what CI enforces.
"""

from __future__ import annotations

from time import perf_counter

from repro.metrics import Table
from repro.sim import Simulator
from repro.telemetry import attach_tracer
from repro.telemetry.tracer import PHASE_EXECUTE

from _common import emit, timed_rows, write_bench_summary

N_EVENTS = 200_000
REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.02  # disabled tracer ≤ 2% over baseline

CONFIGS = ("baseline", "disabled", "enabled")


def _plain_proc(sim, n):
    """The untraced reference loop: n timeout events, nothing else."""
    timeout = sim.timeout
    for _ in range(n):
        yield timeout(1.0)


def _instrumented_proc(sim, n):
    """The loop as an instrumented subsystem writes it.

    ``sim.tracer`` and its ``enabled`` flag are hoisted once per
    process activation, exactly like the controller/platform sites; the
    per-operation residue with the null tracer installed is one local
    bool test on top of :func:`_plain_proc`'s timeout.
    """
    tracer = sim.tracer
    enabled = tracer.enabled
    timeout = sim.timeout
    if enabled:
        for _ in range(n):
            span = tracer.start_span("tick", category=PHASE_EXECUTE)
            yield timeout(1.0)
            tracer.end_span(span)
    else:
        for _ in range(n):
            if enabled:  # the per-operation guard being measured
                pass
            yield timeout(1.0)


class SimpleEnv:
    """The minimal ``env`` shape :func:`attach_tracer` needs."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim


def _run_once(config: str, n: int = N_EVENTS) -> float:
    """One timed round of ``n`` kernel events; returns wall seconds."""
    sim = Simulator()
    if config == "baseline":
        proc = _plain_proc(sim, n)
    else:
        if config == "enabled":
            attach_tracer(SimpleEnv(sim))
        proc = _instrumented_proc(sim, n)
    root = sim.spawn(proc)
    start = perf_counter()
    sim.run(until=root)
    elapsed = perf_counter() - start
    if config == "enabled":
        assert len(sim.tracer) == n, (len(sim.tracer), n)
    else:
        assert not sim.tracer.enabled
    assert sim.now == float(n)
    return elapsed


def measure() -> dict:
    """Min-of-REPEATS wall time per configuration, rounds interleaved.

    Each case thunk returns its own measured seconds (the timed region
    excludes simulator setup), which :func:`timed_rows` uses directly.
    """
    for config in CONFIGS:  # cheap warmup sweep at a tenth of the size
        _run_once(config, n=N_EVENTS // 10)
    return timed_rows(
        {config: (lambda c=config: _run_once(c)) for config in CONFIGS},
        repeats=REPEATS,
        warmup=False,
    )


def run_o1() -> Table:
    best = measure()
    table = Table(
        ["config", "events", "wall s (min of 5)", "events/s",
         "overhead vs baseline %"],
        title=f"O1: tracer overhead — {N_EVENTS} kernel events per round, "
              f"interleaved rounds, min of {REPEATS}",
        precision=3,
    )
    for config in CONFIGS:
        seconds = best[config]
        overhead = 100.0 * (seconds / best["baseline"] - 1.0)
        table.add_row(config, N_EVENTS, seconds, N_EVENTS / seconds, overhead)

    disabled_ratio = best["disabled"] / best["baseline"]
    assert disabled_ratio <= 1.0 + MAX_DISABLED_OVERHEAD, (
        f"disabled tracer costs {100 * (disabled_ratio - 1):.2f}% "
        f"over baseline (budget {100 * MAX_DISABLED_OVERHEAD:.0f}%)"
    )
    # Recording is allowed to cost real time; it must at least have
    # actually recorded (sanity that the enabled row measured tracing).
    assert best["enabled"] >= best["disabled"]
    write_bench_summary(
        "o1_overhead",
        {
            "events": N_EVENTS,
            "repeats": REPEATS,
            "wall_s": {config: best[config] for config in CONFIGS},
            "disabled_overhead_pct": 100.0 * (disabled_ratio - 1.0),
            "budget_pct": 100.0 * MAX_DISABLED_OVERHEAD,
        },
    )
    return table


def bench_o1_overhead(benchmark):
    table = benchmark.pedantic(run_o1, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_o1())
