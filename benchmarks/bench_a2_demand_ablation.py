"""A2 — Ablation: demand estimators under three demand regimes.

Each estimator trains on the same observation stream and is scored by
mean relative prediction error at an unseen input size:

* **input-scaling** — demand grows with input size (the catalog apps'
  reality): regression should win, size-blind estimators plateau;
* **drifting** — demand shifts mid-stream: EWMA should win;
* **stationary-noisy** — flat demand, heavy noise: mean-family
  estimators win, the static guess stays bad.
"""

import pytest

from repro.core.demand import (
    BayesianLinearEstimator,
    EwmaEstimator,
    MeanEstimator,
    QuantileEstimator,
    RegressionEstimator,
    StaticEstimator,
)
from repro.profiling import DemandObservation
from repro.metrics import Table
from repro.sim.rng import RngStream

from _common import emit

SEED = 111
N_OBSERVATIONS = 120


def estimator_zoo():
    return [
        ("static", StaticEstimator("c", guess_gcycles=5.0)),
        ("mean", MeanEstimator("c")),
        ("ewma", EwmaEstimator("c", alpha=0.15)),
        ("p95", QuantileEstimator("c", quantile=0.95)),
        ("regression", RegressionEstimator("c")),
        ("bayes", BayesianLinearEstimator("c", noise_std=1.0)),
    ]


def scenario_input_scaling(rng):
    """True demand 2 + 3*input_mb; inputs vary; mild noise.

    Scored at input 8 MB (beyond the training range's centre)."""
    observations = []
    for _ in range(N_OBSERVATIONS):
        x = rng.uniform(0.5, 5.0)
        truth = 2.0 + 3.0 * x
        noise = rng.lognormal_bounded(1.0, 0.08, low=0.5, high=2.0)
        observations.append(DemandObservation("c", x, truth * noise))
    return observations, 8.0, 2.0 + 3.0 * 8.0


def scenario_drift(rng):
    """Demand jumps from 10 to 25 gcycles two thirds through the stream.

    Scored against the *current* (post-drift) truth."""
    observations = []
    for i in range(N_OBSERVATIONS):
        truth = 10.0 if i < 2 * N_OBSERVATIONS // 3 else 25.0
        noise = rng.lognormal_bounded(1.0, 0.08, low=0.5, high=2.0)
        observations.append(DemandObservation("c", 2.0, truth * noise))
    return observations, 2.0, 25.0


def scenario_stationary_noisy(rng):
    """Flat demand of 12 gcycles with 30% noise."""
    observations = []
    for _ in range(N_OBSERVATIONS):
        noise = rng.lognormal_bounded(1.0, 0.3, low=0.3, high=3.0)
        observations.append(DemandObservation("c", 2.0, 12.0 * noise))
    return observations, 2.0, 12.0


SCENARIOS = [
    ("input-scaling", scenario_input_scaling),
    ("drift", scenario_drift),
    ("stationary-noisy", scenario_stationary_noisy),
]


def run_a2() -> Table:
    table = Table(
        ["scenario"] + [name for name, _ in estimator_zoo()],
        title=f"A2: mean relative prediction error (%) by estimator, "
              f"{N_OBSERVATIONS} observations per scenario",
        precision=1,
    )
    errors_by_scenario = {}
    for scenario_name, build in SCENARIOS:
        rng = RngStream(SEED)
        observations, test_input, truth = build(rng)
        row = [scenario_name]
        errors = {}
        for estimator_name, estimator in estimator_zoo():
            estimator.observe_all(observations)
            predicted = estimator.predict(test_input)
            error = 100 * abs(predicted - truth) / truth
            errors[estimator_name] = error
            row.append(error)
        errors_by_scenario[scenario_name] = errors
        table.add_row(*row)
    # Expected winners per regime.
    scaling = errors_by_scenario["input-scaling"]
    assert scaling["regression"] < min(scaling["mean"], scaling["ewma"],
                                       scaling["static"])
    # The Bayesian estimator matches the frequentist fit on this regime.
    assert scaling["bayes"] < 1.5 * scaling["regression"] + 1.0
    drift = errors_by_scenario["drift"]
    assert drift["ewma"] < min(drift["mean"], drift["static"], drift["p95"])
    noisy = errors_by_scenario["stationary-noisy"]
    assert noisy["mean"] < noisy["static"]
    return table


def bench_a2_demand_ablation(benchmark):
    table = benchmark.pedantic(run_a2, rounds=1, iterations=1)
    emit(table)
    # Regression is the right default: on the input-scaling regime (the
    # one the catalog apps live in) its error stays within the
    # measurement-noise floor (~8% lognormal).
    assert table.rows[0][table.columns.index("regression")] < 10.0


if __name__ == "__main__":
    emit(run_a2())
