"""A3 — Ablation: allocation search strategies.

Compares the exhaustive scan, the convexity-aware walk, and the coarse
probe-and-refine heuristic across a grid of function shapes: decision
quality (cost regret vs scan) and the number of tier probes each needed.
Expected shape: convex matches scan exactly (the cost curve is unimodal
under the Amdahl duration model) with fewer probes; coarse saves more
probes with occasional small regret.
"""

import math

import pytest

from repro.core.allocation import MemoryAllocator
from repro.metrics import Table

from _common import emit

WORKLOADS = [
    ("tiny-serial", 0.5, 0.0, math.inf),
    ("small-parallel", 4.0, 0.6, math.inf),
    ("medium-serial", 20.0, 0.0, math.inf),
    ("medium-parallel", 20.0, 0.9, math.inf),
    ("large-parallel", 200.0, 0.95, math.inf),
    ("slo-bound", 50.0, 0.9, 8.0),
]


def run_a3() -> Table:
    table = Table(
        ["workload", "strategy", "chosen MB", "cost $", "probes",
         "regret %"],
        title="A3: allocation search strategies (regret vs exhaustive scan)",
        precision=3,
    )
    total_probes = {"scan": 0, "convex": 0, "coarse": 0}
    worst_regret = {"scan": 0.0, "convex": 0.0, "coarse": 0.0}
    for name, work, parallel, slo in WORKLOADS:
        reference = MemoryAllocator(strategy="scan").cheapest(
            name, work, parallel_fraction=parallel, latency_slo_s=slo
        )
        for strategy in ("scan", "convex", "coarse"):
            allocator = MemoryAllocator(strategy=strategy)
            decision = allocator.cheapest(
                name, work, parallel_fraction=parallel, latency_slo_s=slo
            )
            regret = 100 * (
                decision.expected_cost_usd / reference.expected_cost_usd - 1
            )
            total_probes[strategy] += decision.probes
            worst_regret[strategy] = max(worst_regret[strategy], regret)
            table.add_row(
                name, strategy, decision.memory_mb,
                decision.expected_cost_usd, decision.probes, regret,
            )
            assert decision.expected_duration_s <= slo + 1e-9
    # Convex is exact and cheaper to evaluate; coarse is cheapest with
    # bounded regret.
    assert worst_regret["convex"] <= 1e-9
    assert total_probes["convex"] < total_probes["scan"]
    assert total_probes["coarse"] < total_probes["scan"]
    assert worst_regret["coarse"] < 50.0
    return table


def bench_a3_allocation_ablation(benchmark):
    table = benchmark.pedantic(run_a3, rounds=1, iterations=1)
    emit(table)

    probes = {}
    for row in table.rows:
        probes.setdefault(row[1], []).append(row[4])
    assert sum(probes["convex"]) < sum(probes["scan"])


if __name__ == "__main__":
    emit(run_a3())
