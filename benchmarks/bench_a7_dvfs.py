"""A7 — Ablation: DVFS under slack (crawl-to-deadline vs race-to-idle).

For the *local* share of a partition, slack admits a second energy lever
besides offloading: running the device slower.  Dynamic power scales
with f³, so halving the frequency doubles the runtime but quarters the
energy.  Sweeping the slack factor shows the controller walking down the
DVFS ladder exactly as fast as deadlines allow — and never missing.
"""

import pytest

from repro import Environment, Job, OffloadController, photo_backup_app
from repro.core.partitioning import FixedPartitioner, Partition
from repro.metrics import Table

from _common import emit

SLACK_FACTORS = [1.2, 2.0, 4.0, 10.0, 1e6]
N_JOBS = 4
INPUT_MB = 4.0
SEED = 161
FULL_SPEED_SERVICE_S = 35.0  # local-only photo backup at 4 MB


def run_mode(dvfs, slack_factor):
    env = Environment.build(seed=SEED, execution_noise_sigma=0.0)
    app = photo_backup_app()
    controller = OffloadController(
        env, app,
        partitioner=FixedPartitioner(Partition.local_only(app)),
        dvfs=dvfs,
    )
    controller.profile_offline()  # DVFS leans on demand accuracy
    controller.plan(input_mb=INPUT_MB)
    slack = slack_factor * FULL_SPEED_SERVICE_S
    spacing = 400.0
    jobs = [
        Job(app, input_mb=INPUT_MB, released_at=spacing * i,
            deadline=spacing * i + slack)
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    frequency = controller.select_frequency(jobs[-1], jobs[-1].released_at)
    return report, frequency


def run_a7() -> Table:
    table = Table(
        ["slack factor", "mode", "chosen freq", "energy/job J",
         "mean resp s", "miss %"],
        title=f"A7: DVFS vs slack — local-only photo backup, "
              f"service ≈ {FULL_SPEED_SERVICE_S:.0f} s at full speed",
        precision=2,
    )
    frequencies = []
    for slack_factor in SLACK_FACTORS:
        fixed_report, _ = run_mode(False, slack_factor)
        dvfs_report, frequency = run_mode(True, slack_factor)
        frequencies.append(frequency)
        for mode, report, freq in (
            ("full-speed", fixed_report, 1.0),
            ("dvfs", dvfs_report, frequency),
        ):
            table.add_row(
                slack_factor, mode, freq,
                report.total_ue_energy_j / N_JOBS,
                report.mean_response_s,
                100 * report.deadline_miss_rate,
            )
        # DVFS never misses and never burns more than full speed.
        assert dvfs_report.deadline_miss_rate == 0.0, slack_factor
        assert (
            dvfs_report.total_ue_energy_j
            <= fixed_report.total_ue_energy_j + 1e-9
        )
    # The chosen frequency walks down monotonically as slack grows.
    assert all(a >= b for a, b in zip(frequencies, frequencies[1:]))
    assert frequencies[0] == 1.0
    assert frequencies[-1] == 0.4
    return table


def figure_a7(table) -> str:
    from repro.metrics import ascii_bars

    rows = [row for row in table.rows if row[1] == "dvfs"]
    return ascii_bars(
        [f"slack x{row[0]:g}" for row in rows],
        [row[3] for row in rows],
        title="DVFS energy/job by slack (full-speed baseline: "
              f"{table.rows[0][3]:.1f} J)",
        unit=" J",
    )


def bench_a7_dvfs(benchmark):
    table = benchmark.pedantic(run_a7, rounds=1, iterations=1)
    emit(table)
    print(figure_a7(table))
    # At the loosest slack the energy saving approaches the f² bound
    # (0.4² = 0.16 of full-speed compute energy).
    rows = [r for r in table.rows if r[0] == SLACK_FACTORS[-1]]
    by_mode = {r[1]: r[3] for r in rows}
    assert by_mode["dvfs"] < 0.25 * by_mode["full-speed"]


if __name__ == "__main__":
    table = run_a7()
    emit(table)
    print(figure_a7(table))
