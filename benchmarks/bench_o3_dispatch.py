"""O3 — batched dispatch: burst drains, batch speedup, compiled core.

Three microbenches isolate what the O3 kernel work bought:

* **burst_drain** — ``N`` pre-triggered no-callback events in the fast
  lane plus one far-future heap entry, drained by ``run()``.  The heap
  entry is the honest part: the pre-O3 loop paid a heap-front comparison
  and a clock read *per event* whenever the heap was non-empty, which is
  the steady state of every real workload (there is always a pending
  timeout).  The batched loop pays both once per batch.
* **per_event_reference** — the identical workload drained by an
  in-module reconstruction of the pre-O3 per-event loop (kept verbatim
  below).  ``batch_speedup`` is the ratio of the two and must stay above
  the registered floor: it gates the batching win itself, not the
  machine.
* **relight_chain** — O2's callback-chained immediate events, re-run
  here on an explicitly pure-loop simulator and (when built) on the
  compiled core, so the pure-vs-compiled column pair regenerates from
  one bench.

The compiled-core cells engage the C loop per-simulator (a
``_ckernel.FastLane`` fast lane) without touching ``REPRO_SIM_CORE``;
the ``events_per_s_compiled`` floor is gated on ``{"compiled": True}``
so pure-only hosts skip it instead of failing it.

``REPRO_BENCH_SHORT=1`` shrinks op counts ~8x for CI smoke runs.  Event
counts (including ``batched_events``) regenerate bit-identically; wall
clocks and throughputs are host-dependent.
"""

from __future__ import annotations

import gc
import heapq
import os
from collections import deque
from contextlib import contextmanager
from time import perf_counter

from repro.metrics import Table
from repro.sim import Simulator
from repro.sim._core import ACTIVE, COMPILED_AVAILABLE, CKERNEL
from repro.sim.events import Event

from _common import (
    MetricSpec,
    emit,
    register_bench,
    timed_rows,
    write_bench_summary,
)

SHORT = os.environ.get("REPRO_BENCH_SHORT", "") not in ("", "0")
SCALE = 8 if SHORT else 1
N_DRAIN = 400_000 // SCALE
N_CHAIN = 200_000 // SCALE
REPEATS = 3 if SHORT else 5

#: Far-future pending timeout: keeps the heap non-empty through the
#: drain so the per-event reference pays its heap-front check honestly.
FAR_FUTURE = 1e9


@contextmanager
def _gc_quiet():
    """Collect, then hold the collector off for the timed region.

    The drains free hundreds of thousands of event objects inside the
    measured window; when this bench runs after the rest of the suite,
    the inherited tracked-object population otherwise triggers gen-2
    collections mid-drain and the number measures suite position, not
    the loop.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class PureLoopSimulator(Simulator):
    """``run()`` takes the pure batched loop regardless of core mode."""

    def __init__(self) -> None:
        super().__init__()
        self._fast = deque()


if CKERNEL is not None:

    class CompiledLoopSimulator(Simulator):
        """``run()`` engages the compiled loop (FastLane fast lane)."""

        def __init__(self) -> None:
            super().__init__()
            self._fast = CKERNEL.FastLane()


def _loaded_burst(sim_class, n: int, event_class=Event) -> Simulator:
    """A simulator holding ``n`` triggered lane events + one heap entry."""
    sim = sim_class()
    sim.timeout(FAR_FUTURE)
    for _ in range(n):
        event_class(sim).succeed(None)
    return sim


def _batched_drain(sim_class, n: int, event_class=Event) -> float:
    """Drain the burst through ``run()`` (the batched loop)."""
    sim = _loaded_burst(sim_class, n, event_class)
    with _gc_quiet():
        started = perf_counter()
        sim.run(until=0.5)
        elapsed = perf_counter() - started
    assert sim.events_processed == n, sim.events_processed
    return elapsed


def _per_event_drain(n: int) -> float:
    """Drain the burst through the pre-O3 loop, reconstructed verbatim.

    This is the exact horizon branch ``run()`` shipped with before the
    batching change: one heap-front comparison, one ``self._now`` read
    and one meter increment per dispatched event.
    """
    sim = _loaded_burst(PureLoopSimulator, n)
    horizon = 0.5
    fast = sim._fast
    heap = sim._heap
    pool = sim._entry_pool
    pop = heapq.heappop
    meter = sim.meter
    with _gc_quiet():
        started = perf_counter()
        _run_per_event(sim, fast, heap, pool, pop, meter, horizon)
        elapsed = perf_counter() - started
    assert sim.events_processed == n, sim.events_processed
    return elapsed


def _run_per_event(sim, fast, heap, pool, pop, meter, horizon):
    while True:
        if fast:
            if heap and heap[0][0] == sim._now:
                entry = pop(heap)
                event = entry[2]
                entry[2] = None
                pool.append(entry)
                meter.heap_hits += 1
            else:
                event = fast.popleft()
                meter.fast_lane_hits += 1
            event._run_callbacks()
        elif heap:
            when = heap[0][0]
            if when > horizon:
                break
            entry = pop(heap)
            sim._now = when
            event = entry[2]
            entry[2] = None
            pool.append(entry)
            meter.heap_hits += 1
            event._run_callbacks()
        else:
            break
    sim._now = horizon


def _relight_chain(sim_class, n: int, event_class=Event) -> float:
    """O2's pure_events cell: callback-chained immediate succeeds."""
    sim = sim_class()
    remaining = [n]

    def relight(_event) -> None:
        if remaining[0]:
            remaining[0] -= 1
            nxt = event_class(sim)
            nxt.callbacks.append(relight)
            nxt.succeed(None)

    first = event_class(sim)
    first.callbacks.append(relight)
    first.succeed(None)
    with _gc_quiet():
        started = perf_counter()
        sim.run()
        elapsed = perf_counter() - started
    assert sim.events_processed == n + 1, sim.events_processed
    return elapsed


def measure() -> dict:
    cases = {
        "burst_drain": lambda: _batched_drain(PureLoopSimulator, N_DRAIN),
        "per_event_reference": lambda: _per_event_drain(N_DRAIN),
        "relight_chain": lambda: _relight_chain(PureLoopSimulator, N_CHAIN),
    }
    if COMPILED_AVAILABLE:
        # The compiled core is the C loop *and* the C event type: exact
        # C events take the loop's inline dispatch path, which is what
        # REPRO_SIM_CORE=compiled runs end to end.
        cases["burst_drain_compiled"] = lambda: _batched_drain(
            CompiledLoopSimulator, N_DRAIN, CKERNEL.Event
        )
        cases["relight_chain_compiled"] = lambda: _relight_chain(
            CompiledLoopSimulator, N_CHAIN, CKERNEL.Event
        )
    return timed_rows(cases, repeats=REPEATS)


@register_bench(
    "O3",
    metrics=(
        # Cross-commit regression gate on the batched drain itself (the
        # O2 shape: fresh vs committed events/sec within 20%).
        MetricSpec("events_per_s_drain", kind="ratio", direction="higher",
                   threshold=0.20),
        # The batching win proper: batched loop vs the reconstructed
        # per-event loop on identical work, same process, same machine.
        # Machine-independent by construction, so an absolute floor —
        # but a *pure-core* property: under REPRO_SIM_CORE=compiled the
        # active Event type is the C one, whose `_run_callbacks` hands
        # the per-event reference a C dispatch the pre-O3 pure loop
        # never had, so the comparison only means something on "pure".
        MetricSpec("batch_speedup", kind="min", direction="higher",
                   threshold=1.2, gate={"core": "pure"}),
        # The compiled core's burst-drain floor; armed only when the
        # extension is built (pure-only hosts skip, never fail).
        MetricSpec("events_per_s_compiled", kind="min", direction="higher",
                   threshold=5e6, gate={"compiled": True}),
    ),
    deterministic=("mode", "short_mode", "repeats", "ops",
                   "drain_events", "drain_batched_events", "chain_events"),
    primary="events_per_s_drain",
)
def run_o3() -> Table:
    best = measure()

    # Determinism shape: the batched drain books every lane dispatch as
    # batched, and the far-future heap entry never fires.
    probe = _loaded_burst(PureLoopSimulator, 1024)
    probe.run(until=0.5)
    meter = probe.meter
    assert meter.batched_events == 1024, meter.batched_events
    assert meter.fast_lane_hits == 1024 and meter.heap_hits == 0

    drain_per_s = N_DRAIN / best["burst_drain"]
    reference_per_s = N_DRAIN / best["per_event_reference"]
    batch_speedup = best["per_event_reference"] / best["burst_drain"]
    chain_per_s = (N_CHAIN + 1) / best["relight_chain"]

    table = Table(
        ["workload", "loop", "ops", "wall s (min of N)", "events/s"],
        title=f"O3: batched dispatch — interleaved rounds, min of {REPEATS}"
              f"{' (short mode)' if SHORT else ''}",
        precision=3,
    )
    table.add_row("burst drain", "per-event (pre-O3)", N_DRAIN,
                  best["per_event_reference"], reference_per_s)
    table.add_row("burst drain", "batched", N_DRAIN,
                  best["burst_drain"], drain_per_s)
    table.add_row("relight chain", "batched", N_CHAIN,
                  best["relight_chain"], chain_per_s)

    compiled_drain_per_s = None
    compiled_chain_per_s = None
    if COMPILED_AVAILABLE:
        compiled_drain_per_s = N_DRAIN / best["burst_drain_compiled"]
        compiled_chain_per_s = (N_CHAIN + 1) / best["relight_chain_compiled"]
        table.add_row("burst drain", "compiled", N_DRAIN,
                      best["burst_drain_compiled"], compiled_drain_per_s)
        table.add_row("relight chain", "compiled", N_CHAIN,
                      best["relight_chain_compiled"], compiled_chain_per_s)

    # Machine-independent shape: draining no-callback events beats the
    # relight chain (which runs user code per event) on every loop.
    assert drain_per_s > chain_per_s, (drain_per_s, chain_per_s)
    if COMPILED_AVAILABLE:
        assert compiled_drain_per_s > compiled_chain_per_s

    payload = {
        "mode": "short" if SHORT else "full",
        "short_mode": SHORT,
        "repeats": REPEATS,
        "ops": {"burst_drain": N_DRAIN, "relight_chain": N_CHAIN},
        "drain_events": N_DRAIN,
        "drain_batched_events": N_DRAIN,
        "chain_events": N_CHAIN + 1,
        "core": ACTIVE,
        "compiled": COMPILED_AVAILABLE,
        "wall_s": dict(best),
        "events_per_s_drain": drain_per_s,
        "events_per_s_reference": reference_per_s,
        "batch_speedup": batch_speedup,
        "events_per_s_chain": chain_per_s,
    }
    if COMPILED_AVAILABLE:
        payload["events_per_s_compiled"] = compiled_drain_per_s
        payload["events_per_s_chain_compiled"] = compiled_chain_per_s
    write_bench_summary("O3", payload)
    return table


def bench_o3_dispatch(benchmark):
    table = benchmark.pedantic(run_o3, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_o3())
