"""A5 — Ablation: retry policy under transient failures.

Sweeps the platform's transient-failure probability against the retry
budget.  Expected shape: one attempt fails jobs at roughly the failure
rate; a few retries push end-to-end success toward 100% while the wasted
(billed-but-failed) spend grows with the failure rate, not with the
budget — retries only run when needed.
"""

import pytest

from repro.metrics import Table
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    RetriesExhaustedError,
    RetryPolicy,
    ServerlessPlatform,
    invoke_with_retries,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream

from _common import emit

FAILURE_RATES = [0.0, 0.1, 0.3]
MAX_ATTEMPTS = [1, 2, 4]
N_REQUESTS = 200
WORK_GCYCLES = 2.4
SEED = 131


def run_cell(failure_rate, attempts):
    sim = Simulator()
    platform = ServerlessPlatform(
        sim,
        PlatformConfig(
            keep_alive_s=600.0,
            cold_start_base_s=0.4,
            cold_start_per_package_mb_s=0.0,
            failure_probability=failure_rate,
        ),
        rng=RngStream(SEED),
    )
    platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
    policy = RetryPolicy(max_attempts=attempts, base_delay_s=0.5, multiplier=2.0)
    stats = {"ok": 0, "failed": 0, "wasted": 0.0, "latency": 0.0}

    def driver(sim):
        for _ in range(N_REQUESTS):
            started = sim.now
            try:
                outcome = yield invoke_with_retries(
                    platform, InvocationRequest("f", WORK_GCYCLES), policy
                )
            except RetriesExhaustedError as error:
                stats["failed"] += 1
                stats["wasted"] += error.wasted_usd
            else:
                stats["ok"] += 1
                stats["wasted"] += outcome.wasted_usd
                stats["latency"] += sim.now - started
            yield sim.timeout(10.0)

    sim.run(until=sim.spawn(driver(sim)))
    return {
        "success": stats["ok"] / N_REQUESTS,
        "wasted_usd": stats["wasted"],
        "mean_latency": stats["latency"] / max(stats["ok"], 1),
    }


def run_a5() -> Table:
    table = Table(
        ["failure %", "max attempts", "success %", "wasted $ (x1e-5)",
         "mean ok-latency s"],
        title=f"A5: retry budget vs transient failure rate — "
              f"{N_REQUESTS} requests each",
        precision=2,
    )
    cells = {}
    for failure_rate in FAILURE_RATES:
        for attempts in MAX_ATTEMPTS:
            outcome = run_cell(failure_rate, attempts)
            cells[(failure_rate, attempts)] = outcome
            table.add_row(
                100 * failure_rate, attempts, 100 * outcome["success"],
                outcome["wasted_usd"] * 1e5, outcome["mean_latency"],
            )
    # No failures -> perfect success, zero waste, for any budget.
    for attempts in MAX_ATTEMPTS:
        clean = cells[(0.0, attempts)]
        assert clean["success"] == 1.0
        assert clean["wasted_usd"] == 0.0
    # With failures, success grows with the retry budget...
    for failure_rate in FAILURE_RATES[1:]:
        successes = [cells[(failure_rate, a)]["success"] for a in MAX_ATTEMPTS]
        assert all(a <= b + 1e-9 for a, b in zip(successes, successes[1:]))
        # ...single attempts lose roughly the failure rate...
        assert cells[(failure_rate, 1)]["success"] == pytest.approx(
            1 - failure_rate, abs=0.08
        )
        # ...and four attempts recover nearly everything.
        assert cells[(failure_rate, 4)]["success"] > 0.98
    return table


def bench_a5_retry_ablation(benchmark):
    table = benchmark.pedantic(run_a5, rounds=1, iterations=1)
    emit(table)
    # Waste scales with the failure rate (for the biggest budget).
    waste = {
        (row[0], row[1]): row[3] for row in table.rows
    }
    assert waste[(30.0, 4)] > waste[(10.0, 4)] > waste[(0.0, 4)]


if __name__ == "__main__":
    emit(run_a5())
