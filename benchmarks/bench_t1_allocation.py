"""T1 — Serverless memory-size allocation.

For six function archetypes, compare the allocator's choice against the
two fixed policies practitioners default to (smallest tier, largest
tier), with and without a latency SLO.  Reproduces the Lambda-Power-
Tuning shape: the allocator finds the tier where CPU-bound cost is still
flat but duration is minimal, and pays for larger sizes only when an SLO
forces it.
"""

import math

import pytest

from repro.core.allocation import MemoryAllocator
from repro.metrics import Table

from _common import emit

#: (name, work_gcycles, parallel_fraction, min_memory_mb, slo_s)
ARCHETYPES = [
    ("thumbnailer",      2.0,  0.50, 128,  math.inf),
    ("transcoder",      24.0,  0.80, 512,  math.inf),
    ("feature-extract", 48.0,  0.90, 1024, math.inf),
    ("hash-dedup",       1.0,  0.00, 128,  math.inf),
    ("report-render",    6.0,  0.30, 256,  10.0),
    ("ml-train-step",  240.0,  0.95, 2048, 60.0),
]


def run_t1() -> Table:
    allocator = MemoryAllocator()
    table = Table(
        [
            "function", "slo s", "chosen MB", "dur s", "cost $",
            "128MB dur s", "128MB cost $", "10GB dur s", "10GB cost $",
        ],
        title="T1: memory allocation per function archetype "
              "(chosen vs fixed-min vs fixed-max)",
        precision=3,
    )
    for name, work, parallel, floor, slo in ARCHETYPES:
        chosen = allocator.cheapest(
            name, work, parallel_fraction=parallel,
            latency_slo_s=slo, min_memory_mb=floor,
        )
        curve = {
            point.memory_mb: point
            for point in allocator.curve(work, parallel)
        }
        smallest = curve[128]
        largest = curve[10240]
        table.add_row(
            name, None if math.isinf(slo) else slo,
            chosen.memory_mb, chosen.expected_duration_s,
            chosen.expected_cost_usd,
            smallest.duration_s, smallest.cost_usd,
            largest.duration_s, largest.cost_usd,
        )

        # Shape assertions: the chosen size is never slower than 128 MB,
        # never pricier than 10 GB, and meets its SLO.
        assert chosen.expected_duration_s <= smallest.duration_s + 1e-9
        assert chosen.expected_cost_usd <= largest.cost_usd + 1e-12
        assert chosen.expected_duration_s <= slo + 1e-9
        assert chosen.memory_mb >= floor
    return table


def bench_t1_allocation(benchmark):
    table = benchmark.pedantic(run_t1, rounds=1, iterations=1)
    emit(table)

    # The headline claim: for CPU-heavy serial-ish work the chosen tier
    # is dramatically faster than fixed-128 at comparable cost.
    chosen_duration = table.column("dur s")[3]      # hash-dedup, serial
    fixed_duration = table.column("128MB dur s")[3]
    assert fixed_duration > 5 * chosen_duration


if __name__ == "__main__":
    emit(run_t1())
