"""F10 — Sharded fleet scaling.

The sharded fleet runner's two claims, measured together: (1) the merged
report is *byte-identical* for any shard count — partitioning is free of
semantic drift — and (2) fanning the shards over worker processes scales
UEs-simulated-per-wall-second toward the million-UE regime.  The byte
check is the hard gate (any machine can verify it); the scaling curve is
meaningful only on multi-core hosts, so the ≥3x assertion arms itself
only when ``os.cpu_count() >= 4`` and the bench runs in full mode
(``tools/check_bench_f10.py`` applies the same rule to the JSON).
"""

import os

from repro.fleet.sharded import ShardedFleetSpec, run_sharded
from repro.fleet.topology import FleetTopology
from repro.metrics import Table

from _common import (
    MetricSpec,
    emit,
    register_bench,
    timed_rows,
    write_bench_summary,
)

SHORT = os.environ.get("REPRO_BENCH_SHORT") == "1"

#: Uncoupled topology (the exact-merge regime): shards share nothing, so
#: scaling is embarrassingly parallel and the merge must be byte-stable.
N_ZONES = 4 if SHORT else 32
UES_PER_ZONE = 3 if SHORT else 32
JOBS_PER_UE = 1 if SHORT else 4
WORKER_COUNTS = [1, 2, 4]
SEED = 1010


def build_spec() -> ShardedFleetSpec:
    topology = FleetTopology.uniform(
        n_zones=N_ZONES,
        ues_per_zone=UES_PER_ZONE,
        connectivity=["4g", "wifi"],
        jobs_per_ue=JOBS_PER_UE,
        couple="none",
        seed=SEED,
    )
    return ShardedFleetSpec(topology=topology, window_s=7200.0)


@register_bench(
    "F10",
    metrics=(
        MetricSpec("byte_identical", kind="flag"),
        MetricSpec("speedup_4w", kind="min", threshold=3.0,
                   gate={"cores_min": 4, "mode": "full"}),
    ),
    deterministic=("mode", "zones", "ues", "jobs", "byte_identical",
                   "meter_events"),
    primary="speedup_4w",
)
def run_f10() -> Table:
    spec = build_spec()
    total_ues = spec.topology.total_ues

    # Claim 1: byte identity across shard counts (single worker, so the
    # comparison isolates partitioning from process scheduling).
    reference_result = run_sharded(spec, n_shards=1, workers=1)
    reference = reference_result.merged_json()
    byte_identical = all(
        run_sharded(spec, n_shards=n, workers=1).merged_json() == reference
        for n in (2, 4)
    )
    assert byte_identical, "merged report diverged across shard counts"
    # The merged document embeds the group-summed runtime meter, so the
    # byte check above already proves the meter snapshot is identical
    # across shard layouts; surface its event count as a deterministic
    # check the baseline comparison can pin exactly.
    meter_events = int(
        reference_result.document["meter"]["events_dispatched"]
    )

    # Claim 2: shard fan-out scales throughput with worker processes.
    cases = {
        workers: (lambda w=workers: run_sharded(spec, n_shards=4, workers=w))
        for workers in WORKER_COUNTS
    }
    best = timed_rows(cases, repeats=1 if SHORT else 3, warmup=not SHORT)

    table = Table(
        ["workers", "wall s", "UEs / wall s", "speedup vs 1w"],
        title=f"F10: sharded fleet scaling — {total_ues} UEs, "
              f"{spec.topology.total_jobs} jobs, 4 shards, uncoupled",
        precision=3,
    )
    base = best[1]
    for workers in WORKER_COUNTS:
        wall = best[workers]
        table.add_row(workers, wall, total_ues / wall, base / wall)

    cores = os.cpu_count() or 1
    speedup_4w = base / best[4]
    write_bench_summary("F10", {
        "mode": "short" if SHORT else "full",
        "cores": cores,
        "zones": N_ZONES,
        "ues": total_ues,
        "jobs": spec.topology.total_jobs,
        "byte_identical": byte_identical,
        "meter_events": meter_events,
        "wall_s": {str(w): best[w] for w in WORKER_COUNTS},
        "ues_per_wall_s": {str(w): total_ues / best[w] for w in WORKER_COUNTS},
        "speedup_4w": speedup_4w,
    })
    if cores >= 4 and not SHORT:
        assert speedup_4w >= 3.0, (
            f"4-worker speedup {speedup_4w:.2f}x < 3x on a {cores}-core host"
        )
    return table


def bench_f10_sharding(benchmark):
    table = benchmark.pedantic(run_f10, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_f10())
