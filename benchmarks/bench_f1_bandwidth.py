"""F1 — Offload benefit vs uplink bandwidth (the crossover figure).

Sweeps the uplink from 0.1 to 100 Mbit/s and measures three policies end
to end on the photo-backup workload.  Expected shape: local-only is flat;
full-offload improves with bandwidth and crosses local somewhere in the
single-digit Mbit/s range; the controller tracks whichever side is better
(its objective is min-like) across the whole sweep.
"""

import pytest

from repro import Job, ObjectiveWeights, OffloadController, photo_backup_app
from repro.baselines import full_offload_controller, local_only_controller
from repro.metrics import Table

from _common import MBPS, build_env_with_uplink, emit

BANDWIDTHS_MBPS = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0]
N_JOBS = 4
INPUT_MB = 4.0
SLACK_S = 7200.0
SEED = 44
WEIGHTS = ObjectiveWeights()  # balanced: latency visible, cost counted


def run_policy(make_controller, mbps):
    env = build_env_with_uplink(mbps * MBPS, seed=SEED)
    controller = make_controller(env)
    if controller.partition is None:
        controller.profile_offline()
        controller.plan(input_mb=INPUT_MB)
    jobs = [
        Job(controller.app, input_mb=INPUT_MB, released_at=90.0 * i,
            deadline=90.0 * i + SLACK_S)
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    objective = WEIGHTS.combine(
        report.mean_response_s,
        report.total_ue_energy_j / N_JOBS,
        report.total_cloud_cost_usd / N_JOBS,
    )
    return report, objective, controller


def run_f1() -> Table:
    table = Table(
        ["uplink Mbit/s", "policy", "mean resp s", "energy/job J",
         "$/job", "objective", "n cloud"],
        title="F1: policy comparison vs uplink bandwidth (photo backup)",
        precision=3,
    )
    for mbps in BANDWIDTHS_MBPS:
        local_report, local_obj, _ = run_policy(
            lambda env: local_only_controller(
                env, photo_backup_app(), weights=WEIGHTS
            ),
            mbps,
        )
        full_report, full_obj, _ = run_policy(
            lambda env: full_offload_controller(
                env, photo_backup_app(), weights=WEIGHTS
            ),
            mbps,
        )
        ctl_report, ctl_obj, controller = run_policy(
            lambda env: OffloadController(
                env, photo_backup_app(), weights=WEIGHTS
            ),
            mbps,
        )
        rows = [
            ("local-only", local_report, local_obj, 0),
            ("full-offload", full_report, full_obj,
             len(photo_backup_app().offloadable_names())),
            ("controller", ctl_report, ctl_obj, len(controller.partition.cloud)),
        ]
        for name, report, objective, ncloud in rows:
            table.add_row(
                mbps, name, report.mean_response_s,
                report.total_ue_energy_j / N_JOBS,
                report.total_cloud_cost_usd / N_JOBS, objective, ncloud,
            )
        # The controller tracks the winner (within noise/cold-start slop).
        assert ctl_obj <= min(local_obj, full_obj) * 1.30, mbps
    return table


def figure_f1(table) -> str:
    from repro.metrics import ascii_line

    points = {
        policy: ([], [])
        for policy in ("local-only", "full-offload", "controller")
    }
    for row in table.rows:
        xs, ys = points[row[1]]
        xs.append(row[0])
        ys.append(row[5])
    charts = []
    for policy, (xs, ys) in points.items():
        charts.append(
            ascii_line(
                xs, ys, width=56, height=8, log_x=True,
                title=f"objective vs uplink Mbit/s — {policy}",
            )
        )
    return "\n\n".join(charts)


def bench_f1_bandwidth(benchmark):
    table = benchmark.pedantic(run_f1, rounds=1, iterations=1)
    emit(table)
    print(figure_f1(table))

    by_bw = {}
    for row in table.rows:
        by_bw.setdefault(row[0], {})[row[1]] = row[5]
    lows = by_bw[min(BANDWIDTHS_MBPS)]
    highs = by_bw[max(BANDWIDTHS_MBPS)]
    # Crossover: full-offload loses at the low end, wins at the high end.
    assert lows["full-offload"] > lows["local-only"]
    assert highs["full-offload"] < highs["local-only"]
    # The controller sides with the winner at both extremes.
    assert lows["controller"] <= lows["local-only"] * 1.10
    assert highs["controller"] <= highs["full-offload"] * 1.10


if __name__ == "__main__":
    table = run_f1()
    emit(table)
    print(figure_f1(table))
